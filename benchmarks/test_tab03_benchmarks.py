"""E3 — Table 3: benchmark registry and §6.1 matrix geometry."""

import pytest
from conftest import run_once

from repro.analysis.reporting import render_table
from repro.units import GB, pretty_bytes
from repro.workloads.benchmarks import get_benchmark, list_benchmarks


def test_tab03_benchmarks(benchmark, record_table):
    specs = run_once(benchmark, list_benchmarks)

    rows = [
        [
            s.name,
            s.model,
            s.dataset,
            f"{s.num_labels:,}",
            s.hidden_dim,
            s.shrunk_dim,
            pretty_bytes(s.int4_matrix_bytes),
            pretty_bytes(s.fp32_matrix_bytes),
        ]
        for s in specs
    ]
    table = render_table(
        ["benchmark", "model", "dataset", "categories", "D", "K",
         "4-bit matrix", "32-bit matrix"],
        rows,
        title="Table 3 benchmarks + derived matrix sizes (K = D/4)",
    )
    record_table("tab03_benchmarks", table)

    assert len(specs) == 7
    s100m = get_benchmark("XMLCNN-S100M")
    # §6.1's worked example: 12.8 GB / 400 GB for S100M.
    assert s100m.int4_matrix_bytes == pytest.approx(12.8 * GB, rel=0.01)
    assert s100m.fp32_matrix_bytes == pytest.approx(400 * GB, rel=0.03)
    # Category counts exactly as published.
    assert [s.num_labels for s in specs] == [
        32_317, 33_278, 267_744, 670_091, 10_000_000, 50_000_000, 100_000_000
    ]
