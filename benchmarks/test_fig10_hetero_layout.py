"""E7 — Fig. 10: heterogeneous vs homogeneous layout across candidate ratios."""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import fig10_hetero_layout
from repro.analysis.reporting import format_seconds, render_table


def test_fig10_hetero_layout(benchmark, record_table):
    points = run_once(
        benchmark, lambda: fig10_hetero_layout(queries=32, sample_tiles=10)
    )

    paper = {0.05: "1.73x", 0.10: "-", 0.15: "-", 0.20: "-"}
    rows = [
        [
            f"{p.candidate_ratio:.0%}",
            format_seconds(p.homogeneous_time),
            format_seconds(p.heterogeneous_time),
            f"{p.speedup:.2f}x",
            paper.get(round(p.candidate_ratio, 2), "-"),
        ]
        for p in points
    ]
    avg = float(np.mean([p.speedup for p in points]))
    rows.append(["average", "-", "-", f"{avg:.2f}x", "1.43x"])
    table = render_table(
        ["candidate ratio", "homogeneous", "heterogeneous",
         "speedup (ours)", "speedup (paper)"],
        rows,
        title="Fig. 10: data layout comparison on Transformer-W268K",
    )
    record_table("fig10_hetero_layout", table)

    # Shape: hetero always wins, gains shrink as candidate traffic grows
    # (the fixed 4-bit stream matters less), average in the paper's range.
    assert all(p.speedup > 1.0 for p in points)
    speedups = [p.speedup for p in points]
    assert speedups[0] == max(speedups)
    assert 1.15 <= avg <= 2.0  # paper: 1.43x
