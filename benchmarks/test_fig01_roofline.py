"""E1 — Fig. 1: roofline trajectory of the in-storage design points."""

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.analysis.roofline import RooflineModel


def test_fig01_roofline(benchmark, record_table):
    def experiment():
        # Batch 16 gives operational intensity 8 FLOP/B; the layout can
        # deliver ~72% of peak bandwidth before learned interleaving and
        # ~95% after (measured in Fig. 8's reproduction).
        model = RooflineModel(peak_bandwidth_gbs=8.0, batch=16)
        return model.paper_points(baseline_utilization=0.72, final_utilization=0.95)

    points = run_once(benchmark, experiment)

    rows = [
        [
            p.label,
            f"{p.compute_ceiling_gflops:.1f}",
            f"{p.achieved_bandwidth_gbs:.2f}",
            f"{p.attained_gflops:.1f}",
            "compute" if p.is_compute_bound else "memory",
        ]
        for p in points
    ]
    table = render_table(
        ["point", "compute roof (GFLOPS)", "achieved BW (GB/s)",
         "attained (GFLOPS)", "bound by"],
        rows,
        title="Fig. 1 roofline: A (baseline) -> B (+AF MAC) -> C (+layout)",
    )
    record_table("fig01_roofline", table)

    a, b, c = points
    # The paper's trajectory: A compute-bound, B memory-bound after the MAC
    # ceiling rises, C recovers bandwidth and attains the most.
    assert a.is_compute_bound
    assert not b.is_compute_bound
    assert c.attained_gflops > b.attained_gflops >= a.attained_gflops
