"""§4.5 data-preparation period: weight deployment timing (extension).

The paper describes the deployment workflow but publishes no figure for it;
this bench regenerates the implied numbers (a 400 GB CFP32 ingest is
program-bandwidth-bound) and the break-even query count after which the
one-time deployment stops mattering.
"""

from conftest import run_once

from repro.analysis.experiments import _generator, _run_device
from repro.analysis.reporting import format_seconds, render_table
from repro.core.deployment import DeploymentModel
from repro.core.pipeline import PipelineFeatures
from repro.workloads.benchmarks import get_benchmark


def test_sec45_deployment(benchmark, record_table):
    model = DeploymentModel()
    names = ("GNMT-E32K", "XMLCNN-S10M", "XMLCNN-S100M")

    def experiment():
        return {name: model.deploy(get_benchmark(name)) for name in names}

    timings = run_once(benchmark, experiment)

    rows = []
    for name in names:
        t = timings[name]
        rows.append(
            [
                name,
                format_seconds(t.prealign_time),
                format_seconds(t.fp32_transfer_time),
                format_seconds(t.program_time),
                format_seconds(t.total_time),
                t.bottleneck,
            ]
        )
    table = render_table(
        ["benchmark", "pre-align", "PCIe transfer", "flash program",
         "total", "bottleneck"],
        rows,
        title="Section 4.5: data-preparation (weight deployment) period",
    )
    record_table("sec45_deployment", table)

    s100m = timings["XMLCNN-S100M"]
    assert s100m.bottleneck == "program"
    assert s100m.program_time > s100m.fp32_transfer_time

    # Break-even: after how many queries does deployment cost <1%?
    report = _run_device(
        get_benchmark("XMLCNN-S100M"), PipelineFeatures.full(), "learned",
        queries=8, sample_tiles=6,
    )
    per_query = report.scaled_total_time / 8
    queries = model.amortization_queries(get_benchmark("XMLCNN-S100M"), per_query)
    record_table(
        "sec45_amortization",
        f"S100M deployment amortizes below 1% of serving time after"
        f" {queries:,.0f} queries ({format_seconds(per_query)}/query).",
    )
    assert queries > 0
