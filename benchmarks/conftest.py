"""Shared helpers for the reproduction benches.

Every bench regenerates one paper artifact (table or figure), checks its
shape against the published numbers, and records the rendered comparison
under ``benchmarks/results/`` so the reproduction is inspectable after a
captured pytest run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Write a rendered experiment table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _record


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
