"""E9 — Fig. 12: sequential vs uniform vs learned on four benchmarks."""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import fig12_interleaving
from repro.analysis.reporting import format_seconds, render_table


def test_fig12_interleaving(benchmark, record_table):
    results = run_once(
        benchmark, lambda: fig12_interleaving(queries=32, sample_tiles=10)
    )

    rows = [
        [
            r.benchmark,
            format_seconds(r.times["sequential"]),
            format_seconds(r.times["uniform"]),
            format_seconds(r.times["learned"]),
            f"{r.speedup('uniform', 'learned'):.2f}x",
            f"{r.speedup('sequential', 'learned'):.2f}x",
        ]
        for r in results
    ]
    lu = float(np.mean([r.speedup("uniform", "learned") for r in results]))
    ls = float(np.mean([r.speedup("sequential", "learned") for r in results]))
    rows.append(["average", "-", "-", "-", f"{lu:.2f}x", f"{ls:.2f}x"])
    rows.append(["paper average", "-", "-", "-", "1.43x", "7.57x"])
    table = render_table(
        ["benchmark", "sequential", "uniform", "learned",
         "learned/uniform", "learned/sequential"],
        rows,
        title="Fig. 12: storing strategy comparison",
    )
    record_table("fig12_interleaving", table)

    for r in results:
        assert r.times["learned"] < r.times["uniform"] < r.times["sequential"]
    assert 1.1 <= lu <= 2.0  # paper: 1.43x
    assert 4.5 <= ls <= 11.0  # paper: 7.57x
