"""Microbenchmarks of the library's hot kernels.

Unlike the per-figure benches (which run once and record reproduction
tables), these exercise the computational kernels repeatedly so regressions
in the simulator's own performance show up.
"""

import numpy as np
import pytest

from repro.cfp32.format import prealign
from repro.cfp32.mac import AlignmentFreeMac
from repro.config import FlashConfig
from repro.core.pipeline import PipelineFeatures, TilePipelineModel, TileWorkload
from repro.layout.learned import HotnessPredictor, LearnedInterleaving
from repro.layout.placement import build_placement
from repro.screening.model import ApproximateScreeningModel
from repro.ssd.ftl import FlashTranslationLayer
from repro.workloads.synthetic import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload(num_labels=4096, hidden_dim=256, num_queries=64, seed=0)


@pytest.fixture(scope="module")
def model(workload):
    m = ApproximateScreeningModel(workload.weights, seed=1)
    m.calibrate(workload.features[:32], target_ratio=0.10)
    return m


def test_screening_inference_throughput(benchmark, model, workload):
    """Full screen+classify of an 8-query batch over 4096 labels."""
    batch = workload.features[32:40]
    stats = benchmark(model.infer, batch)
    assert stats.candidate_ratio < 0.2


def test_prealign_throughput(benchmark):
    """Host-side CFP32 pre-alignment of a 1024-dim vector (§4.2)."""
    rng = np.random.default_rng(0)
    vector = rng.normal(size=1024).astype(np.float32)
    encoded = benchmark(prealign, vector)
    assert len(encoded) == 1024


def test_alignment_free_mac_dot(benchmark):
    """Bit-accurate 256-element CFP32 dot product."""
    rng = np.random.default_rng(1)
    x = prealign(rng.normal(size=256).astype(np.float32))
    w = prealign(rng.normal(size=256).astype(np.float32))
    mac = AlignmentFreeMac()
    trace = benchmark(mac.dot, x, w)
    assert trace.products == 256


def test_ftl_write_throughput(benchmark):
    """Sustained page-mapping writes with GC churn on a small device."""
    config = FlashConfig(
        channels=2, packages_per_channel=1, dies_per_package=1,
        planes_per_die=1, blocks_per_plane=32, pages_per_block=32,
    )

    def churn():
        ftl = FlashTranslationLayer(config, gc_threshold=2)
        for i in range(4000):
            ftl.write(i % 97)
        return ftl

    ftl = benchmark(churn)
    assert ftl.mapped_pages == 97


def test_learned_placement_build(benchmark):
    """LPT balancing of 32k vectors into 8 channels, 1k-vector tiles."""
    rng = np.random.default_rng(2)
    predictor = HotnessPredictor(rng.lognormal(0, 1, size=32768))
    strategy = LearnedInterleaving(predictor)
    placement = benchmark(
        build_placement, strategy, 32768, 8, 4096, 4096, 1024
    )
    assert placement.num_vectors == 32768


def test_pipeline_tile_timing(benchmark):
    """Analytic timing of 64 tiles through the full-feature pipeline."""
    model = TilePipelineModel(features=PipelineFeatures.full())
    tiles = [
        TileWorkload(
            tile_vectors=1024,
            shrunk_dim=256,
            hidden_dim=1024,
            batch=8,
            candidates=100,
            fp32_pages_per_channel=np.array([13, 12, 14, 13, 13, 12, 13, 13]),
            int4_bytes=128 * 1024,
        )
        for _ in range(64)
    ]
    result = benchmark(model.simulate, tiles)
    assert result.tiles == 64
