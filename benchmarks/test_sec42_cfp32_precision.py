"""E14 — §4.2: CFP32 value-locality and no-accuracy-drop claims."""

import numpy as np
from conftest import run_once

from repro.analysis.reporting import render_table
from repro.cfp32.format import lossless_fraction
from repro.screening.model import ApproximateScreeningModel
from repro.workloads.synthetic import make_workload


def test_sec42_value_locality(benchmark, record_table):
    """>95% of model values encode losslessly with 7 compensation bits."""

    def experiment():
        workload = make_workload(
            num_labels=2048, hidden_dim=256, num_queries=16, seed=7
        )
        return (
            lossless_fraction(workload.weights),
            lossless_fraction(workload.features),
        )

    weight_frac, feature_frac = run_once(benchmark, experiment)
    table = render_table(
        ["tensor", "lossless fraction (ours)", "paper"],
        [
            ["weight matrix rows", f"{weight_frac:.1%}", ">95%"],
            ["input feature vectors", f"{feature_frac:.1%}", ">95%"],
        ],
        title="Section 4.2: CFP32 lossless encoding under value locality",
    )
    record_table("sec42_value_locality", table)

    assert weight_frac > 0.95
    assert feature_frac > 0.95


def test_sec42_no_accuracy_drop(benchmark, record_table):
    """Screening + CFP32 end-to-end changes no top-1 predictions."""

    def experiment():
        workload = make_workload(
            num_labels=4096, hidden_dim=256, num_queries=128, seed=11
        )
        model = ApproximateScreeningModel(workload.weights, seed=5)
        report = model.calibrate(workload.features[:64], target_ratio=0.10)
        agreement = model.top1_agreement(workload.features[64:])
        return report, agreement

    report, agreement = run_once(benchmark, experiment)
    table = render_table(
        ["metric", "ours", "paper"],
        [
            ["candidate ratio achieved", f"{report.achieved_ratio:.1%}", "~10%"],
            ["top-1 agreement with exact FP32", f"{agreement:.1%}", "100% (no drop)"],
            ["FP32 compute reduction", "~10x", "10x"],
        ],
        title="Section 2.1/4.2: approximate screening accuracy",
    )
    record_table("sec42_accuracy", table)

    assert report.achieved_ratio == np.clip(report.achieved_ratio, 0.05, 0.16)
    assert agreement >= 0.97
