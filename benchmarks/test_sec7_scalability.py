"""E12 — §7.1: DRAM scalability and the 500M-category scale-out plan."""

from conftest import run_once

from repro.analysis.experiments import sec71_scalability, sec71_scale_out
from repro.analysis.reporting import render_table


def test_sec71_scalability(benchmark, record_table):
    points = run_once(benchmark, sec71_scalability)

    rows = [
        [
            f"{p.dram_capacity_gib} GiB",
            f"{p.max_categories_millions:.0f}M",
            "-" if p.paper_max_millions is None else f"{p.paper_max_millions:.0f}M",
        ]
        for p in points
    ]
    table = render_table(
        ["DRAM capacity", "max categories (ours)", "supported scenario (paper)"],
        rows,
        title="Section 7.1: maximum classification scale vs DRAM capacity",
    )
    record_table("sec71_scalability", table)

    by_gib = {p.dram_capacity_gib: p for p in points}
    # Each size holds its named scenario but not the next one up.
    assert 50 <= by_gib[8].max_categories_millions < 100
    assert 100 <= by_gib[16].max_categories_millions < 200
    assert by_gib[32].max_categories_millions >= 200


def test_sec71_scale_out(benchmark, record_table):
    plan = run_once(benchmark, sec71_scale_out)

    table = render_table(
        ["quantity", "ours", "paper"],
        [
            ["categories", f"{plan.categories_millions:.0f}M", "500M"],
            ["4-bit matrix total", f"{plan.int4_total_gib:.0f} GiB", "64 GB"],
            ["32-bit matrix total", f"{plan.fp32_total_tib:.1f} TiB", "2 TB"],
            ["ECSSDs needed", plan.devices_needed, "5"],
        ],
        title="Section 7.1: scale-out partitioning of a 500M-category layer",
    )
    record_table("sec71_scale_out", table)

    assert plan.devices_needed == 5
