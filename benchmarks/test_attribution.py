"""Tail-attribution bench: where does fleet p99/p99.9 latency live?

Runs one faulted fleet serving run (calibrated GNMT-E32K service model,
8 data nodes / 4 service nodes, node crashes + a rack partition + slow
nodes) with the causal collector installed, and records the stage-bucketed
attribution: per-stage p99 contribution, tail shares above the p99
threshold, fault-class populations, and the exemplar count the store
retained.  The numbers are pure sim-clock quantities — byte-identical for
a given seed — so the CI perf gate can diff them like any other bench.

Results land in ``benchmarks/results/BENCH_attribution.json`` and
``benchmarks/results/tail_attribution.txt`` (rendered tables).
"""

import json

from conftest import RESULTS_DIR, run_once

from repro.cluster import ClusterConfig, build_cluster, cluster_saturating_rate
from repro.core.batching import BatchingAnalyzer
from repro.faults import ClusterFaultConfig
from repro.obs.causal import CausalCollector, installed
from repro.serve import AffineServiceModel
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.streams import poisson_arrivals
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel

SLO_S = 0.05
RATE_MULTIPLIER = 1.1  # just past saturation: queues form, tails stretch
NUM_REQUESTS = 20_000
SEED = 7

CONFIG = ClusterConfig(
    data_nodes=8,
    service_nodes=4,
    shards=4,
    replicas=24,
    racks=2,
    slots_per_node=2,
    slo=SLO_S,
)


def _calibrated_service():
    """Affine service model fitted to a real batch sweep (shared knee)."""
    spec = get_benchmark("GNMT-E32K")
    hotness = LabelHotnessModel(num_labels=spec.num_labels, run_length=1, seed=3)
    generator = CandidateTraceGenerator(
        hotness, candidate_ratio=0.10, query_noise=0.05
    )
    analyzer = BatchingAnalyzer(spec, generator, sample_tiles=4)
    points = analyzer.sweep((1, 2, 4, 8, 16, 32))
    return AffineServiceModel.from_batch_points(points)


def _run_attribution():
    service = _calibrated_service()
    capacity = cluster_saturating_rate(service, CONFIG)
    rate = RATE_MULTIPLIER * capacity
    arrivals = poisson_arrivals(rate, NUM_REQUESTS, seed=SEED)
    span = float(arrivals[-1])
    fault_config = ClusterFaultConfig.from_spec(
        "node-crash=2,partition=1,slow-node=2", seed=SEED, horizon=0.8 * span
    )
    simulator = build_cluster(
        service, CONFIG, seed=SEED, fault_config=fault_config
    )
    collector = CausalCollector(slowest_k=8, sample_size=16, seed=SEED)
    with installed(collector):
        report = simulator.run(arrivals)
    return report, collector.report(), rate, capacity


def test_tail_attribution(benchmark, record_table):
    report, attribution, rate, capacity = run_once(benchmark, _run_attribution)

    metrics = attribution.stage_metrics()
    payload = {
        "benchmark": "GNMT-E32K",
        "slo_ms": SLO_S * 1e3,
        "seed": SEED,
        "num_requests": NUM_REQUESTS,
        "rate_multiplier": RATE_MULTIPLIER,
        "rate_qps": rate,
        "saturating_rate_qps": capacity,
        "completed": report.completed,
        "cache_hits": report.cache_hits,
        "shed": report.shed,
        "exemplars": len(attribution.slowest) + len(attribution.sampled),
        "metrics": metrics,
        "attribution": attribution.to_dict(),
    }
    # The exemplar traces themselves carry raw timestamps; the perf gate
    # diffs the aggregate metrics, so keep the JSON to those plus the
    # stage/tail/fault-class blocks.
    payload["attribution"].pop("slowest", None)
    payload["attribution"].pop("sampled", None)

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_attribution.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    record_table("tail_attribution", attribution.render())

    # conservation + sanity gates the bench itself enforces
    assert attribution.completed == report.completed
    assert payload["metrics"]["latency_p999_ms"] > 0.0
    assert attribution.slowest
