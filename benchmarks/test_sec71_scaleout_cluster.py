"""§7.1 scale-out, executable: a 500M-category layer on an ECSSD cluster."""

from conftest import run_once

from repro.analysis.reporting import format_seconds, render_table
from repro.core.scaleout import ScaleOutCluster, partition_labels
from repro.workloads.benchmarks import get_benchmark


def test_sec71_cluster_execution(benchmark, record_table):
    spec = get_benchmark("XMLCNN-S100M").scaled(500_000_000, "S500M")

    def experiment():
        cluster = ScaleOutCluster(spec, devices=5)  # the paper's plan
        return cluster.run_trace(queries=8, sample_tiles=5)

    report = run_once(benchmark, experiment)

    rows = [
        [f"device {i}", f"{shard.scaled_total_time:.3g} s"]
        for i, shard in enumerate(report.shard_reports)
    ]
    rows.append(["host top-k merge", format_seconds(report.merge_time)])
    rows.append(["cluster total (parallel)", f"{report.total_time:.3g} s"])
    serial = sum(r.scaled_total_time for r in report.shard_reports)
    rows.append(["hypothetical serial", f"{serial:.3g} s"])
    table = render_table(
        ["component", "time"],
        rows,
        title="Section 7.1: 500M categories across 5 ECSSDs (batch of 8)",
    )
    record_table("sec71_cluster", table)

    assert report.devices == 5
    # Parallel execution: cluster time ~ one shard, not five.
    assert report.total_time < serial / 3
    # The merge is negligible against shard processing.
    assert report.merge_time < 0.01 * report.total_time

    # The minimum-device partition is also valid and documented.
    auto = partition_labels(spec)
    assert 4 <= len(auto) <= 5
