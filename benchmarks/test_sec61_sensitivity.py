"""§6.1 sensitivity study: projection scale x screener precision.

The paper adopts scale 0.25 / 4-bit "according to the sensitivity study in
[22]"; this bench reproduces the grid and shows that operating point is the
knee: the cheapest configuration that preserves exact top-1 predictions.
"""

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.screening.sensitivity import knee_point, sensitivity_sweep
from repro.workloads.synthetic import make_workload


def test_sec61_sensitivity(benchmark, record_table):
    def experiment():
        workload = make_workload(
            num_labels=2048, hidden_dim=256, num_queries=64, seed=9
        )
        return sensitivity_sweep(
            workload.weights,
            workload.features,
            projection_scales=(0.0625, 0.125, 0.25, 0.5),
            bit_widths=(2, 4, 8),
        )

    points = run_once(benchmark, experiment)

    rows = [
        [
            f"{p.projection_scale:.4g}",
            p.bits,
            f"{p.top1_agreement:.1%}",
            f"{p.topk_recall:.1%}",
            f"{p.int4_footprint_ratio:.3%}",
        ]
        for p in points
    ]
    table = render_table(
        ["projection scale", "bits", "top-1 agreement", "top-5 recall",
         "screener footprint / FP32"],
        rows,
        title="Section 6.1 sensitivity grid (paper operating point: 0.25 / 4-bit)",
    )
    record_table("sec61_sensitivity", table)

    by_key = {(p.projection_scale, p.bits): p for p in points}
    paper_point = by_key[(0.25, 4)]
    # The paper's operating point preserves predictions...
    assert paper_point.top1_agreement >= 0.95
    # ...and quality is monotone-ish along both axes from there.
    assert by_key[(0.0625, 2)].topk_recall <= paper_point.topk_recall
    assert by_key[(0.5, 8)].topk_recall >= paper_point.topk_recall - 0.05
    # The knee lands at or below the paper's footprint.
    knee = knee_point(points, threshold=0.95)
    assert knee is not None
    assert knee.int4_footprint_ratio <= paper_point.int4_footprint_ratio + 1e-9
