"""Serving-layer SLO bench: goodput and tail latency across offered load.

Sweeps offered load (as multiples of the cluster's saturating rate) against
shard count for a calibrated GNMT-E32K service model, and records the
trajectory the serving layer walks as it crosses saturation: goodput rises
to capacity, the degradation ladder engages, explicit shedding absorbs the
excess, and — the design's whole point — the p99 of *admitted* requests
stays inside the SLO even at 2x overload.

Results land in ``benchmarks/results/BENCH_serving.json`` (machine-readable
trajectory) and ``benchmarks/results/serving_slo.txt`` (rendered table).
"""

import json

from conftest import RESULTS_DIR, run_once

from repro.analysis.reporting import render_table
from repro.core.batching import BatchingAnalyzer
from repro.serve import (
    AffineServiceModel,
    ServingConfig,
    build_serving_stack,
    saturating_rate,
    shard_hot_degrees,
)
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.streams import poisson_arrivals
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel

SLO_S = 0.02
SHARD_COUNTS = (2, 4)
RATE_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)
DURATION_S = 0.25
SEED = 0


def _calibrated_service():
    """Affine service model fitted to a real batch sweep (shared knee)."""
    spec = get_benchmark("GNMT-E32K")
    hotness = LabelHotnessModel(num_labels=spec.num_labels, run_length=1, seed=3)
    generator = CandidateTraceGenerator(
        hotness, candidate_ratio=0.10, query_noise=0.05
    )
    analyzer = BatchingAnalyzer(spec, generator, sample_tiles=4)
    points = analyzer.sweep((1, 2, 4, 8, 16, 32))
    return AffineServiceModel.from_batch_points(points), generator


def _run_point(service, generator, shards, multiplier):
    config = ServingConfig(slo=SLO_S, shards=shards, replicas=1)
    degrees = shard_hot_degrees(generator, shards, tile_size=512)
    simulator = build_serving_stack(service, config, hot_degrees=degrees)
    capacity = saturating_rate(service, config)
    rate = multiplier * capacity
    num_queries = max(64, int(round(rate * DURATION_S)))
    arrivals = poisson_arrivals(rate, num_queries, seed=SEED)
    report = simulator.run(arrivals)
    return {
        "shards": shards,
        "rate_multiplier": multiplier,
        "rate_qps": rate,
        "saturating_rate_qps": capacity,
        "arrived": report.arrived,
        "admitted": report.admitted,
        "shed_rate": report.shed_rate,
        "goodput_qps": report.goodput,
        "p50_ms": report.p50 * 1e3,
        "p99_ms": report.p99 * 1e3,
        "slo_attainment": report.slo_attainment,
        "mean_batch_size": report.mean_batch_size,
        "max_degrade_level": report.max_degrade_level,
        "slo_attained": report.p99 <= SLO_S,
    }


def test_serving_slo_sweep(benchmark, record_table):
    def sweep():
        service, generator = _calibrated_service()
        rows = [
            _run_point(service, generator, shards, multiplier)
            for shards in SHARD_COUNTS
            for multiplier in RATE_MULTIPLIERS
        ]
        return service, rows

    service, rows = run_once(benchmark, sweep)

    payload = {
        "benchmark": "GNMT-E32K",
        "slo_ms": SLO_S * 1e3,
        "seed": SEED,
        "duration_s": DURATION_S,
        "service": {
            "base_s": service.base,
            "per_query_s": service.per_query,
            "knee": service.knee,
        },
        "trajectory": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_serving.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    table_rows = [
        [
            r["shards"],
            f"{r['rate_multiplier']:.1f}x",
            f"{r['rate_qps']:,.0f}",
            f"{r['goodput_qps']:,.0f}",
            f"{r['shed_rate']:.1%}",
            f"{r['p99_ms']:.2f} ms",
            f"{r['slo_attainment']:.1%}",
            r["max_degrade_level"],
        ]
        for r in rows
    ]
    record_table(
        "serving_slo",
        render_table(
            ["shards", "load", "offered q/s", "goodput q/s", "shed",
             "p99", "SLO attained", "degrade"],
            table_rows,
            title=f"Serving layer under load (GNMT-E32K, SLO {SLO_S * 1e3:.0f} ms)",
        ),
    )

    for shards in SHARD_COUNTS:
        points = {
            r["rate_multiplier"]: r for r in rows if r["shards"] == shards
        }
        # Admitted tail latency stays inside the SLO at every load, 2x
        # overload included (the acceptance criterion).
        assert all(p["p99_ms"] <= SLO_S * 1e3 for p in points.values())
        assert points[2.0]["slo_attainment"] == 1.0
        # Shedding is monotone in offered load and absent below saturation.
        sheds = [points[m]["shed_rate"] for m in RATE_MULTIPLIERS]
        assert all(a <= b + 1e-12 for a, b in zip(sheds, sheds[1:]))
        assert points[0.5]["shed_rate"] == 0.0
        # Overload degrades gracefully: the ladder engages and goodput holds
        # at least 80% of the saturated level instead of collapsing.
        assert points[2.0]["max_degrade_level"] >= 1
        assert points[2.0]["goodput_qps"] >= 0.8 * points[1.0]["goodput_qps"]
