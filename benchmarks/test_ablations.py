"""Ablation benches: design-choice studies beyond the paper's figures.

DESIGN.md calls out the design choices these quantify: the component
campaign run through ``repro.ablate`` (the Fig. 8 axes, importance-ranked
and perf-diff gated as ``BENCH_ablation.json``), the hot-degree predictor
quality and fine-tuning budget, channel scaling, query-distribution drift,
channel scheduling policy, and per-query energy.
"""

from conftest import RESULTS_DIR, run_once

from repro.ablate import components_campaign, run_campaign
from repro.analysis import ablations as A
from repro.analysis.energy import efficiency_table
from repro.analysis.reporting import format_seconds, render_table


def test_ablation_component_campaign(benchmark, record_table):
    """The paper's component set, one-factor-ablated by the campaign engine.

    Replaces the old hand-rolled interleaving sweep: the campaign runs the
    champion plus every single-component ablation, scores each component's
    importance against the champion, and emits the ranked report both as
    ``BENCH_ablation.json`` (perf-diff gated in CI) and as markdown.
    """
    spec = components_campaign()
    result = run_once(benchmark, lambda: run_campaign(spec, workers=1))
    report = result.report

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_ablation.json"
    out.write_text(report.to_json(), encoding="utf-8")
    record_table("ablation_importance", report.render_markdown().rstrip("\n"))

    # Every ablated component hurts: the co-design earns its keep.
    for entry in report.ranking:
        assert entry.sign == +1, (entry.axis, entry.level)
    # The naive MAC pays Fig. 9's iso-area throughput gap.
    assert report.entry("mac", "naive").harm_score > 0
    # Losing the learned interleaving is the costliest single ablation,
    # and falling all the way to sequential hurts more than to uniform.
    assert report.ranking[0].axis == "interleaving"
    assert (
        report.entry("interleaving", "sequential").harm_score
        > report.entry("interleaving", "uniform").harm_score
    )
    # Raw throughput ordering across the interleaving cells matches.
    by_axis = {
        (cell.ablated_axis, cell.ablated_level): result.results[cell.cell_id]
        for cell in result.matrix.cells
    }
    champion_tp = result.results[result.matrix.champion.cell_id][
        "throughput_qps"
    ]
    assert (
        champion_tp
        > by_axis[("interleaving", "uniform")]["throughput_qps"]
        > by_axis[("interleaving", "sequential")]["throughput_qps"]
    )


def test_ablation_predictor_fidelity(benchmark, record_table):
    points = run_once(
        benchmark, lambda: A.predictor_fidelity_sweep(tiles=6)
    )

    rows = [
        [f"{p.fidelity:.2f}", "yes" if p.fine_tuned else "no", f"{p.balance:.3f}"]
        for p in points
    ]
    table = render_table(
        ["predictor fidelity", "fine-tuned", "channel balance"],
        rows,
        title="Ablation: |INT4|-sum predictor quality vs fine-tuning (§5.3)",
    )
    record_table("ablation_predictor_fidelity", table)

    by_key = {(p.fidelity, p.fine_tuned): p.balance for p in points}
    assert by_key[(0.0, True)] > by_key[(0.0, False)] + 0.1
    assert by_key[(1.0, False)] > 0.85


def test_ablation_training_budget(benchmark, record_table):
    points = run_once(benchmark, lambda: A.training_queries_sweep(tiles=6))

    rows = [[p.train_queries, f"{p.balance:.3f}"] for p in points]
    table = render_table(
        ["fine-tuning queries", "channel balance"],
        rows,
        title="Ablation: training-set size for hot-degree fine-tuning",
    )
    record_table("ablation_training_budget", table)

    balances = [p.balance for p in points]
    assert balances[-1] > balances[0]
    # Saturation: the last doubling gains almost nothing.
    assert balances[-1] - balances[-2] < 0.05


def test_ablation_channel_scaling(benchmark, record_table):
    points = run_once(benchmark, lambda: A.channel_count_sweep(sample_tiles=8))

    rows = [
        [p.channels, format_seconds(p.time), f"{p.utilization:.1%}"]
        for p in points
    ]
    table = render_table(
        ["flash channels", "time (GNMT-E32K)", "fp32 utilization"],
        rows,
        title="Ablation: device scaling with flash channel count",
    )
    record_table("ablation_channel_scaling", table)

    times = [p.time for p in points]
    assert times == sorted(times, reverse=True)
    # Near-linear early scaling: 2 -> 8 channels gains >= 2.5x.
    assert times[0] / times[2] > 2.5


def test_ablation_drift(benchmark, record_table):
    points = run_once(benchmark, A.drift_study)

    rows = [
        [f"{p.drift:.2f}", f"{p.stale_balance:.3f}", f"{p.retuned_balance:.3f}"]
        for p in points
    ]
    table = render_table(
        ["hotness drift", "stale placement balance", "re-tuned balance"],
        rows,
        title="Ablation: why the interleaving must be *adaptive* (§5.3)",
    )
    record_table("ablation_drift", table)

    assert points[0].stale_balance > 0.85
    assert points[-1].stale_balance < points[0].stale_balance - 0.1
    assert all(p.retuned_balance > 0.85 for p in points)


def test_ablation_scheduler_policy(benchmark, record_table):
    results = run_once(benchmark, lambda: A.scheduler_study(pages=32))

    rows = [[r.policy, format_seconds(r.makespan)] for r in results]
    table = render_table(
        ["channel scheduling policy", "32-page skewed batch makespan"],
        rows,
        title="Ablation: FIFO vs die-round-robin command scheduling",
    )
    record_table("ablation_scheduler", table)

    by_policy = {r.policy: r.makespan for r in results}
    assert by_policy["die_round_robin"] <= by_policy["fifo"]


def test_ablation_energy(benchmark, record_table):
    points = run_once(
        benchmark, lambda: A.energy_study(benchmark="XMLCNN-S100M", sample_tiles=8)
    )

    rows = [
        [arch, format_seconds(t), f"{e:.0f} J", f"{ratio:.1f}x"]
        for arch, t, e, ratio in efficiency_table(points)
    ]
    table = render_table(
        ["architecture", "time (8 queries)", "energy", "energy vs ECSSD"],
        rows,
        title="Ablation: per-run energy, S100M (extends §7.2/§7.3)",
    )
    record_table("ablation_energy", table)

    by_arch = {p.architecture: p for p in points}
    ecssd = by_arch["ECSSD"]
    for name, point in by_arch.items():
        if name != "ECSSD":
            assert point.energy_joules > ecssd.energy_joules
    # CPU pays both a time and a power penalty: energy gap >> time gap.
    cpu_ratio = by_arch["CPU-N"].energy_ratio_vs(ecssd)
    assert cpu_ratio > 100


def test_ablation_remap_cost(benchmark, record_table):
    points = run_once(benchmark, A.remap_cost_study)

    rows = [
        [
            f"{p.drift:.2f}",
            f"{p.full_moved_fraction:.1%}",
            format_seconds(p.full_remap_seconds),
            f"{p.incremental_moved_fraction:.1%}",
            format_seconds(p.incremental_remap_seconds),
            f"{p.incremental_balance:.2f}",
        ]
        for p in points
    ]
    table = render_table(
        ["drift", "full re-tune moves", "full cost",
         "incremental moves", "incremental cost", "incremental balance"],
        rows,
        title="Ablation: re-interleaving cost — full LPT re-layout vs"
              " incremental rebalancing",
    )
    record_table("ablation_remap_cost", table)

    for p in points:
        # A full LPT re-layout cascades: most of the tile moves.
        assert p.full_moved_fraction > 0.5
        # Incremental rebalancing moves a tiny fraction at ~25x lower cost...
        assert p.incremental_moved_fraction < 0.1
        assert p.incremental_remap_seconds < p.full_remap_seconds / 5
        # ...and still restores near-full channel balance.
        assert p.incremental_balance > 0.85
