"""Fleet bench: the cluster simulator across load and fault pressure.

Sweeps offered load (as multiples of the fleet's saturating rate) with and
without a fault campaign (node crashes, a rack partition, slow nodes) for a
calibrated GNMT-E32K service model on an 8-data-node / 4-service-node
fleet, and records the trajectory the cluster walks: goodput rises to
capacity, the hot-label cache absorbs repeats, shedding absorbs overload,
and — the placement layer's whole point — rack-spread replicas keep the
analytic shard outage at zero even while crashes force live failovers.

Results land in ``benchmarks/results/BENCH_cluster.json`` (machine-readable
trajectory, diffed against its checked-in baseline by the CI perf gate) and
``benchmarks/results/cluster_fleet.txt`` (rendered table).
"""

import json

from conftest import RESULTS_DIR, run_once

from repro.analysis.reporting import render_table
from repro.cluster import ClusterConfig, build_cluster, cluster_saturating_rate
from repro.core.batching import BatchingAnalyzer
from repro.faults import ClusterFaultConfig
from repro.serve import AffineServiceModel
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.streams import poisson_arrivals
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel

SLO_S = 0.05
RATE_MULTIPLIERS = (0.5, 1.0, 2.0)
FAULT_AXES = ("none", "faulted")
NUM_REQUESTS = 20_000
SEED = 7

CONFIG = ClusterConfig(
    data_nodes=8,
    service_nodes=4,
    shards=4,
    replicas=24,
    racks=2,
    slots_per_node=2,
    slo=SLO_S,
)


def _calibrated_service():
    """Affine service model fitted to a real batch sweep (shared knee)."""
    spec = get_benchmark("GNMT-E32K")
    hotness = LabelHotnessModel(num_labels=spec.num_labels, run_length=1, seed=3)
    generator = CandidateTraceGenerator(
        hotness, candidate_ratio=0.10, query_noise=0.05
    )
    analyzer = BatchingAnalyzer(spec, generator, sample_tiles=4)
    points = analyzer.sweep((1, 2, 4, 8, 16, 32))
    return AffineServiceModel.from_batch_points(points)


def _fault_config(axis, span):
    """Fault campaign sized to the arrival span (or disabled)."""
    if axis == "none":
        return ClusterFaultConfig.disabled()
    return ClusterFaultConfig(
        seed=SEED,
        node_crashes=2,
        crash_duration=0.25 * span,
        partitions=1,
        partition_duration=0.10 * span,
        slow_nodes=2,
        slow_duration=0.30 * span,
        horizon=0.80 * span,
    )


def _run_point(service, capacity, multiplier, axis):
    rate = multiplier * capacity
    arrivals = poisson_arrivals(rate, NUM_REQUESTS, seed=SEED)
    fault_config = _fault_config(axis, float(arrivals[-1]))
    simulator = build_cluster(
        service, CONFIG, seed=SEED, fault_config=fault_config
    )
    report = simulator.run(arrivals)
    return {
        "rate_multiplier": multiplier,
        "faults": axis,
        "rate_qps": rate,
        "saturating_rate_qps": capacity,
        "arrived": report.arrived,
        "completed": report.completed,
        "shed_rate": report.shed_rate,
        "cache_hit_rate": report.cache_hit_rate,
        "goodput_qps": report.goodput,
        "p50_ms": report.p50 * 1e3,
        "p99_ms": report.p99 * 1e3,
        "slo_attainment": report.slo_attainment,
        "steals": report.steals,
        "redispatches": report.redispatches,
        "parked_events": report.parked_events,
        "failover_downtime_s": report.failover_downtime,
        "utilization_skew": report.utilization_skew,
        "peak_active_service_nodes": report.peak_active_service_nodes,
    }


def test_cluster_fleet_sweep(benchmark, record_table):
    def sweep():
        service = _calibrated_service()
        capacity = cluster_saturating_rate(service, CONFIG)
        rows = [
            _run_point(service, capacity, multiplier, axis)
            for axis in FAULT_AXES
            for multiplier in RATE_MULTIPLIERS
        ]
        return service, rows

    service, rows = run_once(benchmark, sweep)

    payload = {
        "benchmark": "GNMT-E32K",
        "slo_ms": SLO_S * 1e3,
        "seed": SEED,
        "num_requests": NUM_REQUESTS,
        "cluster": {
            "data_nodes": CONFIG.data_nodes,
            "service_nodes": CONFIG.service_nodes,
            "shards": CONFIG.shards,
            "replicas": CONFIG.replicas,
            "racks": CONFIG.racks,
            "slots_per_node": CONFIG.slots_per_node,
        },
        "service": {
            "base_s": service.base,
            "per_query_s": service.per_query,
            "knee": service.knee,
        },
        "trajectory": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_cluster.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    table_rows = [
        [
            f"{r['rate_multiplier']:.1f}x",
            r["faults"],
            f"{r['rate_qps']:,.0f}",
            f"{r['goodput_qps']:,.0f}",
            f"{r['shed_rate']:.1%}",
            f"{r['cache_hit_rate']:.1%}",
            f"{r['p99_ms']:.2f} ms",
            f"{r['slo_attainment']:.1%}",
            r["steals"],
            r["redispatches"] + r["parked_events"],
        ]
        for r in rows
    ]
    record_table(
        "cluster_fleet",
        render_table(
            ["load", "faults", "offered q/s", "goodput q/s", "shed",
             "cache", "p99", "SLO attained", "steals", "failovers"],
            table_rows,
            title=(
                f"Fleet under load (GNMT-E32K, {CONFIG.data_nodes} data / "
                f"{CONFIG.service_nodes} service nodes, SLO "
                f"{SLO_S * 1e3:.0f} ms)"
            ),
        ),
    )

    for axis in FAULT_AXES:
        points = {
            r["rate_multiplier"]: r for r in rows if r["faults"] == axis
        }
        # Shedding is monotone in offered load and absent below saturation.
        sheds = [points[m]["shed_rate"] for m in RATE_MULTIPLIERS]
        assert all(a <= b + 1e-12 for a, b in zip(sheds, sheds[1:]))
        assert points[0.5]["shed_rate"] == 0.0
        # Rack-spread placement holds: no crash schedule takes every replica
        # of any shard down at once.
        assert all(
            p["failover_downtime_s"] == 0.0 for p in points.values()
        )
        # Work stealing is live at every point.
        assert all(p["steals"] > 0 for p in points.values())
    clean = [r for r in rows if r["faults"] == "none"]
    faulted = [r for r in rows if r["faults"] == "faulted"]
    # Without faults the admitted tail stays inside the SLO at every load,
    # 2x overload included.
    assert all(r["p99_ms"] <= SLO_S * 1e3 for r in clean)
    # Under crashes, a partition, and 3x slow-node brownouts, requests
    # already in flight can overrun the SLO — but attainment stays high
    # and the failover machinery is demonstrably exercised.
    assert all(r["slo_attainment"] >= 0.95 for r in faulted)
    assert sum(r["redispatches"] + r["parked_events"] for r in faulted) > 0
