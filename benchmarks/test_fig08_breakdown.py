"""E5 — Fig. 8: step-wise breakdown of every proposed technique."""

from conftest import run_once

from repro.analysis.experiments import fig8_breakdown
from repro.analysis.reporting import render_table


def test_fig08_breakdown(benchmark, record_table):
    steps = run_once(
        benchmark, lambda: fig8_breakdown(queries=32, sample_tiles=10)
    )

    rows = [
        [
            s.label,
            f"{s.speedup_vs_baseline:.2f}x",
            "-" if s.paper_speedup is None else f"{s.paper_speedup:.2f}x",
            f"{s.fp32_utilization:.1%}",
            "-" if s.paper_utilization is None else f"{s.paper_utilization:.1%}",
        ]
        for s in steps
    ]
    table = render_table(
        ["technique (cumulative)", "speedup (ours)", "speedup (paper)",
         "fp32 util (ours)", "fp32 util (paper)"],
        rows,
        title="Fig. 8: breakdown analysis, averaged over 4 benchmarks",
    )
    record_table("fig08_breakdown", table)

    speedups = [s.speedup_vs_baseline for s in steps]
    utils = [s.fp32_utilization for s in steps]
    # Paper shape: monotone improvements, <10% baseline utilization,
    # ~4x after uniform interleaving, ~10.5x and ~95% utilization at the end.
    assert speedups == sorted(speedups)
    assert utils == sorted(utils)
    assert utils[0] < 0.12
    assert 2.5 <= speedups[1] <= 6.0  # paper: 4.06x
    assert 7.0 <= speedups[-1] <= 15.0  # paper: 10.5x
    assert utils[-1] >= 0.85  # paper: 94.7%
