"""Batch-size sweep: the operational-intensity knob behind Fig. 1.

Batch size sets FLOP-per-fetched-byte; this ablation locates the roofline
corner empirically — where the pipeline flips from memory- to compute-bound
— and quantifies the throughput/latency trade an operator faces.
"""

from conftest import run_once

from repro.analysis.reporting import format_seconds, render_table
from repro.core.batching import BatchingAnalyzer, optimal_batch
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel


def test_batch_size_sweep(benchmark, record_table):
    spec = get_benchmark("GNMT-E32K")
    hotness = LabelHotnessModel(num_labels=spec.num_labels, run_length=1, seed=3)
    generator = CandidateTraceGenerator(
        hotness, candidate_ratio=0.10, query_noise=0.05
    )
    analyzer = BatchingAnalyzer(spec, generator, sample_tiles=6)
    batches = (1, 2, 4, 8, 16, 32, 64)

    points = run_once(
        benchmark, lambda: analyzer.sweep(batches, arrival_rate=2000.0)
    )

    rows = [
        [
            p.batch,
            format_seconds(p.batch_time),
            f"{p.queries_per_second:,.0f}",
            f"{p.compute_bound_fraction:.0%}",
            format_seconds(p.mean_latency),
        ]
        for p in points
    ]
    best = optimal_batch(points)
    rows.append(["optimal", "-", f"{best.queries_per_second:,.0f}",
                 "-", f"batch {best.batch}"])
    table = render_table(
        ["batch", "batch time", "queries/s", "compute-bound tiles",
         "mean latency @2k q/s"],
        rows,
        title="Ablation: batch size vs throughput (GNMT-E32K)",
    )
    record_table("ablation_batch_sweep", table)

    qps = [p.queries_per_second for p in points]
    # Memory-bound region: throughput scales ~linearly with batch.
    assert qps[2] > 3.0 * qps[0]
    # Past the corner: the last doubling gains little.
    assert qps[-1] < 1.3 * qps[-2]
    # The corner exists: small batches memory-bound, large compute-bound.
    assert points[0].compute_bound_fraction == 0.0
    assert points[-1].compute_bound_fraction == 1.0
