"""E13 — §7.2/§7.3: GPU fleet and ENMC efficiency comparisons."""

import pytest
from conftest import run_once

from repro.analysis.reporting import render_table
from repro.baselines.gpu_enmc import EnmcComparison, GpuComparison
from repro.workloads.benchmarks import get_benchmark


def test_sec72_gpu_comparison(benchmark, record_table):
    spec = get_benchmark("XMLCNN-S100M")

    def experiment():
        gpu = GpuComparison()
        return (
            gpu.gpus_needed(spec),
            gpu.single_gpu_power_ratio(),
            gpu.power_ratio_vs_ecssd(spec),
        )

    gpus, single_ratio, fleet_ratio = run_once(benchmark, experiment)
    table = render_table(
        ["quantity", "ours", "paper"],
        [
            ["RTX 3090s to hold S100M", gpus, ">= 18"],
            ["single-GPU power vs ECSSD", f"{single_ratio:.0f}x", "32x"],
            ["fleet power vs ECSSD", f"{fleet_ratio:.0f}x", ">= 573x"],
        ],
        title="Section 7.2: GPU comparison",
    )
    record_table("sec72_gpu", table)

    assert gpus >= 18
    assert single_ratio == pytest.approx(32, rel=0.05)
    assert fleet_ratio >= 573


def test_sec73_enmc_comparison(benchmark, record_table):
    enmc = run_once(benchmark, EnmcComparison)

    table = render_table(
        ["quantity", "ours", "paper"],
        [
            ["ECSSD energy efficiency vs ENMC",
             f"{enmc.energy_efficiency_ratio():.2f}x", "1.19x"],
            ["ECSSD cost efficiency vs ENMC",
             f"{enmc.cost_efficiency_ratio():.2f}x", "8.87x"],
            ["ENMC GFLOPS/W", f"{enmc.enmc_gflops_per_watt}", "3.805"],
            ["ENMC GFLOPS/$", f"{enmc.enmc_gflops_per_dollar}", "0.002"],
        ],
        title="Section 7.3: ENMC near-DRAM comparison",
    )
    record_table("sec73_enmc", table)

    assert enmc.energy_efficiency_ratio() == pytest.approx(1.19, rel=0.02)
    assert enmc.cost_efficiency_ratio() == pytest.approx(8.87, rel=0.05)
