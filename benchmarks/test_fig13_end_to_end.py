"""E10 — Fig. 13: end-to-end comparison with eight baseline architectures."""

from conftest import run_once

from repro.analysis.experiments import fig13_end_to_end
from repro.analysis.reporting import format_seconds, render_table
from repro.workloads.benchmarks import LARGE_SCALE


def test_fig13_end_to_end(benchmark, record_table):
    results = run_once(
        benchmark, lambda: fig13_end_to_end(queries=8, sample_tiles=10)
    )

    rows = [
        [
            r.architecture,
            *(format_seconds(r.per_benchmark_time[b]) for b in LARGE_SCALE),
            f"{r.mean_slowdown_vs_ecssd:.2f}x",
            "-" if r.paper_slowdown is None else f"{r.paper_slowdown:.2f}x",
        ]
        for r in results
    ]
    table = render_table(
        ["architecture", *LARGE_SCALE, "slowdown (ours)", "slowdown (paper)"],
        rows,
        title="Fig. 13: end-to-end performance, batch of 8 queries",
    )
    record_table("fig13_end_to_end", table)

    ecssd, baselines = results[0], results[1:]
    assert ecssd.architecture == "ECSSD"
    # Exact paper ordering: CPU-N slowest down to SmartSSD-H-AP fastest.
    slowdowns = [r.mean_slowdown_vs_ecssd for r in baselines]
    assert slowdowns == sorted(slowdowns, reverse=True)
    assert [r.architecture for r in baselines] == [
        "CPU-N", "SmartSSD-N", "GenStore-N", "SmartSSD-H-N",
        "CPU-AP", "SmartSSD-AP", "GenStore-AP", "SmartSSD-H-AP",
    ]
    # Every factor within 2x of the published one (paper: 49.87x .. 3.24x).
    for r in baselines:
        ratio = r.mean_slowdown_vs_ecssd / r.paper_slowdown
        assert 0.5 <= ratio <= 2.0, (r.architecture, r.mean_slowdown_vs_ecssd)
    # Headline range.
    assert slowdowns[0] > 30
    assert slowdowns[-1] > 2
