"""Reliability bench: accuracy and latency cost of injected NAND faults.

Walks the fault matrix along a 10x RBER ladder for the pure-wear class and
the everything-at-once storm class, and records the trajectory the
co-design pays as the device ages: read latency climbs the ECC ladder
monotonically while top-k retention degrades gracefully (dropped weight
pages cost candidates, not crashes).  The chaos suite pins the invariants;
this bench records the magnitudes.

Results land in ``benchmarks/results/BENCH_reliability.json``
(machine-readable matrix) and ``benchmarks/results/reliability.txt``
(rendered table).
"""

import json

from conftest import RESULTS_DIR, run_once

from repro.analysis.reporting import render_table
from repro.faults.harness import run_fault_matrix

NUM_LABELS = 1024
NUM_QUERIES = 8
RBER_SCALES = (1.0, 2.0, 5.0, 10.0)
FAULT_CLASSES = ("rber", "storm")
SEED = 0


def test_reliability_matrix(benchmark, record_table):
    report = run_once(
        benchmark,
        lambda: run_fault_matrix(
            num_labels=NUM_LABELS,
            num_queries=NUM_QUERIES,
            seed=SEED,
            rber_scales=RBER_SCALES,
            fault_classes=FAULT_CLASSES,
        ),
    )

    # The acceptance invariants: more RBER never means faster reads or
    # better accuracy, and every cell completed without a hang.
    for fault_class in FAULT_CLASSES:
        cells = [report.cell(fault_class, s) for s in RBER_SCALES]
        latencies = [c["latency_s"] for c in cells]
        retentions = [c["retention"] for c in cells]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))
        assert all(b <= a for a, b in zip(retentions, retentions[1:]))
        assert all(c["storm"]["pages"] > 0 for c in cells)

    payload = report.to_dict()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_reliability.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    table_rows = [
        [
            fault_class,
            f"{scale:g}x",
            f"{cell['retention']:.1%}",
            f"{cell['latency_vs_clean']:.2f}x",
            f"{cell['storm']['mean_read_latency_s'] * 1e6:.2f} us",
            int(cell["storm"]["failed_reads"]),
        ]
        for fault_class in FAULT_CLASSES
        for scale in RBER_SCALES
        for cell in [report.cell(fault_class, scale)]
    ]
    record_table(
        "reliability",
        render_table(
            ["fault class", "rber", "top-k retention",
             "latency vs clean", "ssd read latency", "failed reads"],
            table_rows,
        ),
    )
