"""E2 — Table 2: the ECSSD configuration self-check."""

from conftest import run_once

from repro.analysis.reporting import render_table
from repro.config import default_config, validate_table2
from repro.units import GiB, KiB, MiB, pretty_bytes


def test_tab02_configuration(benchmark, record_table):
    config = run_once(benchmark, default_config)
    validate_table2(config)

    flash, acc = config.flash, config.accelerator
    rows = [
        ["Flash capacity", pretty_bytes(config.capacity_bytes), "4 TB"],
        ["Flash channels", flash.channels, "8"],
        ["DRAM capacity", pretty_bytes(config.dram_capacity), "16 GB"],
        ["Page size", pretty_bytes(flash.page_size), "4 KB"],
        ["Data buffer", pretty_bytes(config.data_buffer), "4 MB"],
        ["Interface", f"{config.host_bandwidth / 1e9:.1f} GB/s", "PCIe 3.0 x4"],
        ["Frequency", f"{acc.frequency_hz / 1e6:.0f} MHz", "400 MHz"],
        ["Technology", f"{acc.technology_nm} nm", "28 nm"],
        ["FP32 MACs", acc.fp32_macs, "64"],
        ["INT4 MACs", acc.int4_macs, "256"],
        ["INT4 weight buffer", pretty_bytes(acc.int4_weight_buffer), "128 KB"],
        ["FP32 weight buffer", pretty_bytes(acc.fp32_weight_buffer), "400 KB"],
        ["FP32 input buffer", pretty_bytes(acc.fp32_input_buffer), "100 KB"],
    ]
    table = render_table(
        ["parameter", "configured", "Table 2"], rows, title="Table 2: ECSSD configuration"
    )
    record_table("tab02_config", table)

    assert config.dram_capacity == 16 * GiB
    assert config.data_buffer == 4 * MiB
    assert acc.int4_weight_buffer == 128 * KiB
    assert flash.internal_bandwidth == 8e9
