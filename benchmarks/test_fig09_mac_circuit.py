"""E6/E11 — Fig. 9 and §4.2: MAC circuit comparison and GFLOPS claims."""

import pytest
from conftest import run_once

from repro.analysis.experiments import fig9_mac_comparison
from repro.analysis.reporting import render_table
from repro.cfp32.circuits import MacCircuitModel, MacDesign, required_fp32_gflops


def test_fig09_mac_comparison(benchmark, record_table):
    rows_data = run_once(benchmark, fig9_mac_comparison)

    rows = [
        [
            r.design,
            f"{r.area_ratio:.2f}x",
            f"{r.paper_area_ratio:.2f}x",
            f"{r.power_ratio:.2f}x",
            f"{r.paper_power_ratio:.2f}x",
        ]
        for r in rows_data
    ]
    table = render_table(
        ["design", "area (ours)", "area (paper)", "power (ours)", "power (paper)"],
        rows,
        title="Fig. 9: iso-throughput FP32 MAC comparison (normalized to alignment-free)",
    )
    record_table("fig09_mac_circuit", table)

    for r in rows_data:
        assert r.area_ratio == pytest.approx(r.paper_area_ratio, rel=0.02)
        assert r.power_ratio == pytest.approx(r.paper_power_ratio, rel=0.02)


def test_sec42_gflops_claims(benchmark, record_table):
    """§4.2's LSTM-W33K numbers: 34.8 needed, 29.2 naive, 50 alignment-free."""

    def experiment():
        needed = required_fp32_gflops(8e9, batch_size=8.7)
        naive = MacCircuitModel(MacDesign.NAIVE).gflops_under_area(0.139)
        ours = MacCircuitModel(MacDesign.ALIGNMENT_FREE).gflops_under_area(0.139)
        return needed, naive, ours

    needed, naive, ours = run_once(benchmark, experiment)
    table = render_table(
        ["quantity", "ours", "paper"],
        [
            ["GFLOPS needed to consume the flash stream", f"{needed:.1f}", "34.8"],
            ["naive FP32 MAC under the area budget", f"{naive:.1f}", "29.2"],
            ["alignment-free FP32 MAC under the budget", f"{ours:.1f}", "50"],
        ],
        title="Section 4.2 GFLOPS claims (LSTM-W33K)",
    )
    record_table("sec42_gflops", table)

    assert needed == pytest.approx(34.8, rel=0.01)
    assert naive == pytest.approx(29.2, rel=0.05)
    assert ours == pytest.approx(50.0, rel=0.05)
    assert naive < needed <= ours  # the compute-bound -> hidden transition
