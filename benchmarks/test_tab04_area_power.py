"""E4 — Table 4: accelerator area/power breakdown."""

import pytest
from conftest import run_once

from repro.analysis.reporting import render_table
from repro.cfp32.circuits import AcceleratorAreaModel, MacDesign


def test_tab04_area_power(benchmark, record_table):
    model = run_once(benchmark, AcceleratorAreaModel)
    breakdown = model.breakdown()

    paper = {
        "FP32 MAC": (0.139, 33.87),
        "INT4 MAC": (0.044, 19.04),
        "Comparator": (0.0004, 0.016),
        "Scheduler": (0.0002, 0.004),
    }
    rows = []
    for block, values in breakdown.items():
        rows.append(
            [
                block,
                f"{values['area_mm2']:.4f}",
                f"{paper[block][0]:.4f}",
                f"{values['power_mw']:.3f}",
                f"{paper[block][1]:.3f}",
            ]
        )
    rows.append(
        ["Total", f"{model.total_area_mm2:.4f}", "0.1836",
         f"{model.total_power_mw:.2f}", "52.93"]
    )
    table = render_table(
        ["block", "area mm2 (ours)", "area mm2 (paper)",
         "power mW (ours)", "power mW (paper)"],
        rows,
        title="Table 4: ECSSD accelerator area and power @ 28 nm",
    )
    record_table("tab04_area_power", table)

    assert model.total_area_mm2 == pytest.approx(0.1836, abs=0.002)
    assert model.total_power_mw == pytest.approx(52.93, abs=0.5)
    assert model.fits_budget(0.21)
    # The same accelerator with naive FP32 MACs busts the R5-class budget.
    assert not AcceleratorAreaModel(fp32_design=MacDesign.NAIVE).fits_budget(0.21)
