"""E8 — Fig. 11: flash channel access patterns, uniform vs learned."""

from conftest import run_once

from repro.analysis.experiments import fig11_access_pattern
from repro.analysis.reporting import render_table


def test_fig11_access_pattern(benchmark, record_table):
    uniform, learned = run_once(benchmark, fig11_access_pattern)

    rows = [
        [f"channel {c}",
         int(uniform.pages_per_channel[c]),
         int(learned.pages_per_channel[c])]
        for c in range(len(uniform.pages_per_channel))
    ]
    rows.append(["max", int(uniform.pages_per_channel.max()),
                 int(learned.pages_per_channel.max())])
    rows.append(["balance (mean/max)", f"{uniform.balance:.2f}", f"{learned.balance:.2f}"])
    table = render_table(
        ["", "uniform interleaving", "learned interleaving"],
        rows,
        title="Fig. 11: per-channel page loads, one GNMT-E32K tile @ 10% ratio",
    )
    record_table("fig11_access_pattern", table)

    # The paper's qualitative claim: learned is visibly more balanced.
    assert learned.balance > uniform.balance
    assert learned.balance > 0.8
    assert learned.pages_per_channel.max() < uniform.pages_per_channel.max()
    # Same data moved either way.
    assert learned.pages_per_channel.sum() == uniform.pages_per_channel.sum()
