"""Core-loop microbenchmarks: event backend and serving-layer throughput.

The figure/serving benches gate *simulated* outcomes; nothing gated how fast
the simulators themselves run, so an accidental O(n^2) in the event heap or
the FTL lookup path would land silently (ROADMAP: perf gate for simulator
throughput).  This bench times the two hot loops directly:

* **event backend** — a fixed batch of flash READ commands through
  :meth:`repro.ssd.device.SSDDevice.fetch_pages` (die sense, bus occupancy,
  queueing), reported as ``events_per_second``;
* **serving layer** — a fixed Poisson arrival stream through the
  :class:`~repro.serve.driver.ServingSimulator` event loop, reported as
  ``requests_per_second``.

Results land in ``benchmarks/results/BENCH_microbench.json`` and are diffed
by CI's perf job.  Wall-clock throughput is noisy across hosts, so the gate
band is wide (``*per_second*`` defaults to -50%, and CI widens it further);
the *simulated* outcomes recorded alongside (makespans, goodput, shed rate)
are deterministic and stay tightly banded — a correctness canary riding in
the same file.
"""

import json
import time

from conftest import RESULTS_DIR, run_once

from repro.config import ECSSDConfig
from repro.serve import (
    AffineServiceModel,
    ServingConfig,
    build_serving_stack,
    saturating_rate,
)
from repro.ssd.device import SSDDevice
from repro.workloads.streams import poisson_arrivals

SEED = 0
FETCH_ROUNDS = 8
PAGES_PER_CHANNEL = 64
SERVE_REQUESTS = 20_000

#: Direct service-model constants (skips the calibration sweep — this bench
#: times the event loop, not the analytic pipeline).
SERVICE = dict(base=2.0e-4, per_query=2.0e-5, knee=32, candidate_fraction=0.7)


def _bench_event_backend():
    """Time FETCH_ROUNDS batches of flash commands; count simulated events."""
    device = SSDDevice(ECSSDConfig())
    channels = device.config.flash.channels
    lpas = []
    for channel in range(channels):
        base = device.ftl.channel_logical_range(channel).start
        lpas.extend(base + i for i in range(PAGES_PER_CHANNEL))
    for lpa in lpas:
        device.ftl.write(lpa)
    addresses = [device.ftl.lookup(lpa) for lpa in lpas]

    start = time.perf_counter()
    makespans = []
    for _ in range(FETCH_ROUNDS):
        for channel in device.channels:
            channel.reset()
        makespans.append(device.fetch_pages(addresses, start=0.0).makespan)
    wall = time.perf_counter() - start

    commands = len(addresses) * FETCH_ROUNDS
    return {
        "commands": commands,
        "rounds": FETCH_ROUNDS,
        "sim_makespan_s": makespans[0],
        "run_wall_s": wall,
        "events_per_second": commands / wall if wall > 0 else 0.0,
    }


def _bench_serving():
    """Time one long serving run; record its deterministic outcomes too."""
    service = AffineServiceModel(**SERVICE)
    config = ServingConfig(slo=0.02, shards=2, replicas=1)
    simulator = build_serving_stack(service, config)
    capacity = saturating_rate(service, config)
    rate = 1.5 * capacity  # past saturation: shedding + ladder both exercised
    arrivals = poisson_arrivals(rate, SERVE_REQUESTS, seed=SEED)

    start = time.perf_counter()
    report = simulator.run(arrivals)
    wall = time.perf_counter() - start

    return {
        "requests": SERVE_REQUESTS,
        "seed": SEED,
        "goodput_qps": report.goodput,
        "shed_rate": report.shed_rate,
        "p99_ms": (report.p99 or 0.0) * 1e3,
        "batches": len(report.batches),
        "run_wall_s": wall,
        "requests_per_second": SERVE_REQUESTS / wall if wall > 0 else 0.0,
    }


def test_microbench(benchmark):
    def sweep():
        return {
            "event_backend": _bench_event_backend(),
            "serving": _bench_serving(),
        }

    payload = run_once(benchmark, sweep)

    # Sanity floor, not the gate: perf-diff against the checked-in baseline
    # is the real enforcement.
    assert payload["event_backend"]["events_per_second"] > 0
    assert payload["serving"]["requests_per_second"] > 0
    # The simulated outcomes are pure functions of the seed; pin invariants.
    assert payload["serving"]["shed_rate"] > 0  # 1.5x saturation must shed
    assert payload["event_backend"]["sim_makespan_s"] > 0

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_microbench.json"
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
