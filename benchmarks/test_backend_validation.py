"""Cross-backend validation bench: analytic pipeline vs event simulator."""

from conftest import run_once

from repro.analysis.reporting import format_seconds, render_table
from repro.analysis.validation import cross_validate


def test_backend_cross_validation(benchmark, record_table):
    report = run_once(benchmark, lambda: cross_validate(tiles=3))

    rows = [
        [
            row.strategy,
            format_seconds(row.analytic_flash),
            format_seconds(row.event_flash),
            f"{row.ratio:.2f}x",
        ]
        for row in report.rows
    ]
    rows.append(["ordering agrees", "-", "-", str(report.ordering_agrees())])
    table = render_table(
        ["strategy", "analytic flash", "event-simulated flash", "event/analytic"],
        rows,
        title="Timing-backend cross-validation (DESIGN.md §5 envelope: 0.8-2.2x)",
    )
    record_table("backend_validation", table)

    assert report.ordering_agrees()
    assert report.within_envelope()
    # Event model is the richer one: it never under-prices the analytic rule
    # by more than the envelope floor.
    for row in report.rows:
        assert row.ratio >= 0.8
