"""Tests for the critical-path profiler (repro.obs.profile)."""

import json

import pytest

from repro import ECSSD, obs
from repro.errors import WorkloadError
from repro.obs import FP32_TRACK, INT4_TRACK, PIPELINE_TRACK, Tracer
from repro.obs.profile import (
    ChannelBalance,
    merge_intervals,
    overlap_length,
    profile_trace,
    span_resource,
    total_length,
    transfer_interference,
)
from repro.obs.tracing import SpanRecord
from repro.workloads.synthetic import make_workload


@pytest.fixture(autouse=True)
def _restore_globals():
    registry, tracer = obs.get_registry(), obs.get_tracer()
    yield
    obs.set_registry(registry)
    obs.set_tracer(tracer)


def _run_instrumented(num_labels=1024, seed=7):
    """One instrumented inference; returns (session, device report)."""
    workload = make_workload(
        num_labels=num_labels, hidden_dim=128, num_queries=24, seed=seed
    )
    session = obs.configure(None)
    try:
        device = ECSSD()
        device.ecssd_enable()
        device.weight_deploy(
            workload.weights, train_features=workload.features[:16]
        )
        device.int4_input_send(workload.features[16:20])
        device.cfp32_input_send(device.pre_align(workload.features[16:20]))
        device.int4_screen()
    finally:
        session.uninstall()
    return session, device.last_report


# --- interval helpers --------------------------------------------------------------
class TestIntervals:
    def test_merge_unions_overlaps(self):
        merged = merge_intervals([(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)])
        assert merged == [(0.0, 3.0), (5.0, 6.0)]
        assert total_length(merged) == 4.0

    def test_merge_drops_empty_intervals(self):
        assert merge_intervals([(1.0, 1.0), (2.0, 1.0)]) == []

    def test_overlap_length(self):
        a = [(0.0, 2.0), (4.0, 6.0)]
        b = [(1.0, 5.0)]
        assert overlap_length(a, b) == pytest.approx(2.0)
        assert overlap_length(a, []) == 0.0


# --- resource mapping --------------------------------------------------------------
class TestSpanResource:
    def test_explicit_attr_wins(self):
        span = SpanRecord(
            name="tile0/int4_fetch", sim_start=0.0, sim_end=1.0,
            attrs={"resource": "flash"},
        )
        assert span_resource(span) == "flash"

    def test_name_suffix_fallback(self):
        span = SpanRecord(name="tile0/fp32_compute", sim_start=0.0, sim_end=1.0)
        assert span_resource(span) == "fp32-acc"

    def test_flash_track_fallback(self):
        span = SpanRecord(name="read p0d1", track="flash/ch2",
                          sim_start=0.0, sim_end=1.0)
        assert span_resource(span) == "flash"

    def test_unknown_is_none(self):
        assert span_resource(SpanRecord(name="mystery")) is None


# --- synthetic-trace attribution ---------------------------------------------------
class TestAttribution:
    def _tracer_with_tile(self):
        """One overlap-mode tile: fp32_fetch binds the whole 10s window."""
        tracer = Tracer()
        tracer.add_span("tile0", 0.0, 10.0, track=PIPELINE_TRACK,
                        attrs={"index": 0})
        tracer.add_span("tile0/int4_fetch", 0.0, 2.0, track=INT4_TRACK,
                        attrs={"resource": "dram"})
        tracer.add_span("tile0/int4_compute", 0.0, 4.0, track=INT4_TRACK,
                        attrs={"resource": "int4-acc"})
        tracer.add_span("tile0/fp32_fetch", 0.0, 10.0, track=FP32_TRACK,
                        attrs={"resource": "flash"})
        tracer.add_span("tile0/fp32_compute", 0.0, 6.0, track=FP32_TRACK,
                        attrs={"resource": "fp32-acc"})
        return tracer

    def test_binding_span_takes_whole_window(self):
        report = profile_trace(self._tracer_with_tile().spans)
        tile = report.tiles[0]
        # fp32_fetch ends last everywhere, so it binds the full window.
        assert tile.seconds == {"flash": 10.0}
        assert [seg.span for seg in tile.critical_path] == ["tile0/fp32_fetch"]
        assert report.attribution_error == 0.0

    def test_serial_phases_chain_on_critical_path(self):
        tracer = Tracer()
        tracer.add_span("tile0", 0.0, 6.0, track=PIPELINE_TRACK)
        tracer.add_span("tile0/int4_fetch", 0.0, 2.0, track=INT4_TRACK,
                        attrs={"resource": "dram"})
        tracer.add_span("tile0/fp32_compute", 2.0, 6.0, track=FP32_TRACK,
                        attrs={"resource": "fp32-acc"})
        report = profile_trace(tracer.spans)
        tile = report.tiles[0]
        assert tile.seconds == {"dram": 2.0, "fp32-acc": 4.0}
        assert [seg.resource for seg in tile.critical_path] == [
            "dram", "fp32-acc"
        ]

    def test_uncovered_time_becomes_stall(self):
        tracer = Tracer()
        tracer.add_span("tile0", 0.0, 10.0, track=PIPELINE_TRACK)
        tracer.add_span("tile0/fp32_fetch", 0.0, 4.0, track=FP32_TRACK,
                        attrs={"resource": "flash"})
        report = profile_trace(tracer.spans)
        tile = report.tiles[0]
        assert tile.seconds["stall"] == pytest.approx(6.0)
        assert sum(tile.seconds.values()) == pytest.approx(tile.duration)

    def test_overhead_span_components_attributed(self):
        tracer = self._tracer_with_tile()
        tracer.add_span(
            "run_overhead", 10.0, 13.0, track=PIPELINE_TRACK,
            attrs={"sense_fill": 1.0, "pipeline_fill": 1.5,
                   "fill_resource": "dram", "host_time": 0.5},
        )
        report = profile_trace(tracer.spans)
        assert report.overhead == {
            "flash": 1.0, "dram": 1.5, "host": 0.5
        }
        # Whole run still sums to the window exactly.
        assert report.attribution_error < 1e-12

    def test_no_tile_spans_raises(self):
        tracer = Tracer()
        tracer.add_span("something_else", 0.0, 1.0, track="host")
        with pytest.raises(WorkloadError):
            profile_trace(tracer.spans)
        with pytest.raises(WorkloadError):
            profile_trace([])


# --- channel balance and interference ----------------------------------------------
class TestChannelAnalyses:
    def test_channel_balance_from_flash_tracks(self):
        tracer = Tracer()
        tracer.add_span("read p0d0", 0.0, 2.0, track="flash/ch0")
        tracer.add_span("read p0d1", 1.0, 3.0, track="flash/ch0")  # overlaps
        tracer.add_span("read p0d0", 0.0, 1.0, track="flash/ch1")
        balance = profile_trace(
            tracer.spans + [
                SpanRecord(name="tile0", track=PIPELINE_TRACK,
                           sim_start=0.0, sim_end=3.0)
            ]
        ).channel_balance
        assert balance.busy_s == {0: 3.0, 1: 1.0}
        assert balance.imbalance == pytest.approx(1.5)  # 3.0 / 2.0

    def test_imbalance_of_empty_balance_is_zero(self):
        assert ChannelBalance(busy_s={}, pages={}).imbalance == 0.0

    def test_interference_overlap_and_penalty(self):
        tracer = Tracer()
        tracer.add_span("tile0", 0.0, 10.0, track=PIPELINE_TRACK,
                        attrs={"interference_penalty_s": 0.75})
        tracer.add_span("tile0/int4_fetch", 0.0, 4.0, track=INT4_TRACK)
        tracer.add_span("tile0/fp32_fetch", 2.0, 10.0, track=FP32_TRACK)
        stats = transfer_interference(tracer.spans)
        assert stats.int4_stream_s == 4.0
        assert stats.fp32_fetch_s == 8.0
        assert stats.overlap_s == pytest.approx(2.0)
        assert stats.overlap_fraction == pytest.approx(0.25)
        assert stats.penalty_s == pytest.approx(0.75)


# --- real instrumented runs --------------------------------------------------------
class TestEndToEnd:
    def test_attribution_sums_to_end_to_end_within_1pct(self):
        session, _report = _run_instrumented()
        profile = profile_trace(session.tracer.spans, session.registry)
        assert profile.end_to_end_s > 0
        assert profile.attribution_error <= 0.01
        # The window is the device's model-level total time.
        assert profile.tiles, "expected at least one tile attribution"

    def test_report_carries_balance_and_interference(self):
        session, _report = _run_instrumented()
        profile = profile_trace(session.tracer.spans, session.registry)
        # Heterogeneous layout: INT4 stream is DRAM traffic and the tile
        # windows overlap it with flash fetches.
        assert profile.interference.int4_stream_s > 0
        assert profile.interference.fp32_fetch_s > 0
        assert "dram" in profile.resources
        balance = profile.channel_balance
        assert balance.pages, "registry page counts should populate balance"

    def test_report_json_is_deterministic(self):
        dumps = []
        for _ in range(2):
            session, _report = _run_instrumented()
            profile = profile_trace(session.tracer.spans, session.registry)
            dumps.append(json.dumps(profile.to_dict(), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_render_mentions_headline_stats(self):
        session, _report = _run_instrumented()
        text = profile_trace(session.tracer.spans, session.registry).render()
        assert "Attribution" in text
        assert "transfer interference" in text

    def test_timings_with_profiling_disabled_are_bit_identical(self):
        """Profiling is pure post-processing: it cannot perturb the run."""
        workload = make_workload(
            num_labels=512, hidden_dim=128, num_queries=24, seed=3
        )

        def run():
            device = ECSSD()
            device.ecssd_enable()
            device.weight_deploy(
                workload.weights, train_features=workload.features[:16]
            )
            device.int4_input_send(workload.features[16:20])
            device.cfp32_input_send(device.pre_align(workload.features[16:20]))
            device.int4_screen()
            return device.last_report

        baseline = run()  # recorders disabled: NULL singletons
        session = obs.configure(None)
        try:
            observed = run()
            profile_trace(session.tracer.spans, session.registry)
        finally:
            session.uninstall()
        again = run()  # disabled again after uninstall
        assert observed.run.total_time == baseline.run.total_time
        assert again.run.total_time == baseline.run.total_time
        assert observed.run.overhead_time == baseline.run.overhead_time
        assert observed.run.fp32_busy == baseline.run.fp32_busy


# --- CLI ---------------------------------------------------------------------------
class TestProfileCli:
    def test_profile_cli_byte_identical_json(self, tmp_path, capsys):
        from repro.cli import main

        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code = main([
                "profile", "--labels", "512", "--seed", "42",
                "--out", str(path),
            ])
            assert code == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()
        report = json.loads(paths[0].read_text())
        assert report["attribution_error"] <= 0.01
        assert report["channel_balance"]["imbalance"] >= 1.0
        assert "overlap_fraction" in report["interference"]
        out = capsys.readouterr().out
        assert "channel balance" in out
