"""Tests for the Table 1 host API (repro.core.api)."""

import numpy as np
import pytest

from repro.core.api import ECSSD
from repro.errors import ProtocolError
from repro.workloads.synthetic import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload(num_labels=1024, hidden_dim=128, num_queries=48, seed=1)


@pytest.fixture()
def device():
    dev = ECSSD()
    dev.ecssd_enable()
    return dev


def full_session(dev, workload, batch=slice(32, 40)):
    dev.weight_deploy(workload.weights, train_features=workload.features[:32])
    features = workload.features[batch]
    dev.int4_input_send(features)
    dev.cfp32_input_send(dev.pre_align(features))
    dev.int4_screen()
    dev.cfp32_classify()
    return dev.get_results()


class TestModes:
    def test_starts_in_ssd_mode(self):
        assert ECSSD().mode == "ssd"

    def test_enable_disable(self):
        dev = ECSSD()
        dev.ecssd_enable()
        assert dev.mode == "accelerator"
        dev.ecssd_disable()
        assert dev.mode == "ssd"

    def test_deploy_requires_accelerator_mode(self, workload):
        dev = ECSSD()
        with pytest.raises(ProtocolError):
            dev.weight_deploy(workload.weights)

    def test_disable_drops_session_state(self, device, workload):
        full_session(device, workload)
        device.ecssd_disable()
        with pytest.raises(ProtocolError):
            device.get_results()


class TestWorkflowOrder:
    def test_full_session_returns_labels(self, device, workload):
        labels = full_session(device, workload)
        assert labels.shape == (8, 5)
        assert (labels >= 0).all()

    def test_screen_before_send_rejected(self, device, workload):
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        with pytest.raises(ProtocolError):
            device.int4_screen()

    def test_classify_before_screen_rejected(self, device, workload):
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        device.int4_input_send(workload.features[32:34])
        with pytest.raises(ProtocolError):
            device.cfp32_classify()

    def test_classify_requires_cfp32_inputs(self, device, workload):
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        device.int4_input_send(workload.features[32:34])
        device.int4_screen()
        with pytest.raises(ProtocolError):
            device.cfp32_classify()

    def test_results_before_compute_rejected(self, device, workload):
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        with pytest.raises(ProtocolError):
            device.get_results()

    def test_send_before_deploy_rejected(self, device, workload):
        with pytest.raises(ProtocolError):
            device.int4_input_send(workload.features[:2])

    def test_empty_cfp32_send_rejected(self, device, workload):
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        with pytest.raises(ProtocolError):
            device.cfp32_input_send([])


class TestSemantics:
    def test_results_match_direct_model(self, device, workload):
        labels = full_session(device, workload)
        direct = device.device.model.infer(workload.features[32:40], top_k=5)
        np.testing.assert_array_equal(labels, direct.result.top_labels)

    def test_prealign_roundtrip(self, device, workload):
        aligned = device.pre_align(workload.features[:3])
        assert len(aligned) == 3
        assert all(len(v) == 128 for v in aligned)

    def test_filter_threshold_overrides(self, device, workload):
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        device.filter_threshold(-1e9)  # keep everything
        features = workload.features[32:34]
        device.int4_input_send(features)
        device.cfp32_input_send(device.pre_align(features))
        screen = device.int4_screen()
        assert screen.candidate_ratio() == pytest.approx(1.0)

    def test_filter_threshold_before_deploy_rejected(self, device):
        with pytest.raises(ProtocolError):
            device.filter_threshold(1.0)

    def test_last_report_populated(self, device, workload):
        full_session(device, workload)
        report = device.last_report
        assert report is not None
        assert report.scaled_total_time > 0

    def test_set_top_k(self, device, workload):
        device.set_top_k(3)
        labels = full_session(device, workload)
        assert labels.shape == (8, 3)
        with pytest.raises(ProtocolError):
            device.set_top_k(0)
