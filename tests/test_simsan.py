"""Tests for the runtime sim-sanitizer (repro.lint.simsan).

The contract under test: (1) a disabled sanitizer is a no-op and an enabled
one only *observes* — a sanitized run is bit-identical to a plain run at the
same seed; (2) each check catches its planted violation — non-monotone pops,
ambiguous tie-breaking keys, non-finite times, and RNG calls outside
registered seeded streams — with a span-contextualized report.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main as repro_main
from repro.errors import SimulationError
from repro.lint.simsan import (
    NULL_SANITIZER,
    SimSanitizer,
    env_enabled,
    get_sanitizer,
    installed,
    set_sanitizer,
)
from repro.obs.tracing import Tracer
from repro.ssd.events import Simulator


@pytest.fixture(autouse=True)
def _restore_global_sanitizer():
    yield
    set_sanitizer(None)


class TestGuardPattern:
    def test_disabled_by_default(self):
        sanitizer = get_sanitizer()
        assert sanitizer is NULL_SANITIZER
        assert sanitizer.enabled is False
        # The null object's observers are no-ops, never raising.
        sanitizer.observe_pop("events", float("nan"))
        sanitizer.check_time("x", float("inf"))
        assert sanitizer.report() == "simsan: disabled"
        assert sanitizer.summary() == {"enabled": False}

    def test_installed_restores_previous(self):
        live = SimSanitizer()
        with installed(live, hook_rng=False) as active:
            assert active is live
            assert get_sanitizer() is live
        assert get_sanitizer() is NULL_SANITIZER

    def test_env_enabled(self):
        assert env_enabled({"REPRO_SIMSAN": "1"})
        assert env_enabled({"REPRO_SIMSAN": "true"})
        assert not env_enabled({"REPRO_SIMSAN": "0"})
        assert not env_enabled({})


class TestChecks:
    def test_monotone_pop_violation(self):
        sanitizer = SimSanitizer()
        sanitizer.observe_pop("events", 1.0)
        sanitizer.observe_pop("events", 0.5)
        assert [v.check for v in sanitizer.violations] == ["monotone-pop"]
        assert "backwards" in sanitizer.violations[0].message

    def test_tracks_are_independent(self):
        sanitizer = SimSanitizer()
        sanitizer.observe_pop("events", 1.0)
        sanitizer.observe_pop("serve", 0.5)  # different clock, fine
        assert sanitizer.violations == []

    def test_duplicate_tiebreak_key_violation(self):
        sanitizer = SimSanitizer()
        sanitizer.observe_pop("serve", 1.0, key=(1.0, 0, 7))
        sanitizer.observe_pop("serve", 1.0, key=(1.0, 0, 7))
        assert [v.check for v in sanitizer.violations] == [
            "deterministic-tiebreak"
        ]

    def test_strictly_increasing_keys_are_clean(self):
        sanitizer = SimSanitizer()
        sanitizer.observe_pop("serve", 1.0, key=(1.0, 0, 1))
        sanitizer.observe_pop("serve", 1.0, key=(1.0, 0, 2))
        sanitizer.observe_pop("serve", 1.0, key=(1.0, 1, 0))
        assert sanitizer.violations == []

    def test_nan_and_inf_timestamps(self):
        sanitizer = SimSanitizer()
        sanitizer.observe_pop("events", float("nan"))
        sanitizer.observe_pop("events", float("inf"))
        assert [v.check for v in sanitizer.violations] == [
            "finite-timestamp",
            "finite-timestamp",
        ]

    def test_check_time_catches_nan_and_negative(self):
        sanitizer = SimSanitizer()
        sanitizer.check_time("makespan", float("nan"))
        sanitizer.check_time("makespan", -1.0)
        sanitizer.check_time("makespan", 0.0)
        assert [v.check for v in sanitizer.violations] == [
            "finite-time",
            "negative-time",
        ]

    def test_strict_mode_raises(self):
        sanitizer = SimSanitizer(strict=True)
        sanitizer.observe_pop("events", 1.0)
        with pytest.raises(SimulationError, match="monotone-pop"):
            sanitizer.observe_pop("events", 0.5)

    def test_violations_are_capped(self):
        sanitizer = SimSanitizer(max_violations=3)
        for _ in range(10):
            sanitizer.check_time("x", float("nan"))
        assert len(sanitizer.violations) == 3
        assert sanitizer.checks_performed == 10


class TestRngDiscipline:
    def test_unseeded_default_rng_detected(self):
        with installed(SimSanitizer()) as sanitizer:
            np.random.default_rng()
        assert [v.check for v in sanitizer.violations] == ["unseeded-rng"]
        assert "unseeded-rng" in sanitizer.report()

    def test_seeded_default_rng_registers_a_stream(self):
        with installed(SimSanitizer()) as sanitizer:
            rng = np.random.default_rng((42, 0xEC55D, 3))
        assert sanitizer.violations == []
        assert len(sanitizer.streams) == 1
        # and the wrapped constructor still returns a working generator
        assert rng.random() == np.random.default_rng((42, 0xEC55D, 3)).random()

    def test_global_state_rng_detected_and_delegates(self):
        with installed(SimSanitizer()) as sanitizer:
            values = np.random.rand(3)
        assert values.shape == (3,)
        assert [v.check for v in sanitizer.violations] == ["global-rng-state"]
        assert "np.random.rand" in sanitizer.violations[0].message

    def test_hooks_are_restored_on_exit(self):
        before = np.random.default_rng
        with installed(SimSanitizer()):
            assert np.random.default_rng is not before
        assert np.random.default_rng is before

    def test_planted_violation_in_sim_helper(self):
        """The acceptance scenario: an unseeded RNG call buried in helper
        code is caught while the sanitizer is installed."""

        def sloppy_helper(n):
            return np.random.default_rng().random(n)  # reprolint: disable=seeded-rng-only

        with installed(SimSanitizer()) as sanitizer:
            sloppy_helper(4)
        assert [v.check for v in sanitizer.violations] == ["unseeded-rng"]


class TestSpanContext:
    def test_report_contextualizes_violations_with_spans(self):
        tracer = Tracer()
        tracer.add_span("tile0/flash", 0.5, 1.5, track="pipeline")
        previous = obs.get_tracer()
        obs.set_tracer(tracer)
        try:
            sanitizer = SimSanitizer()
            sanitizer.observe_pop("events", 1.0)
            sanitizer.observe_pop("events", 0.9)  # planted violation at t=0.9
            report = sanitizer.report()
        finally:
            obs.set_tracer(previous)
        assert "monotone-pop" in report
        assert "t=0.9" in report
        assert "in span pipeline/tile0/flash" in report


class TestDeterminism:
    def _run_sim(self):
        simulator = Simulator()
        order = []

        def make(tag):
            def cb():
                order.append((tag, simulator.now))

            return cb

        for i in range(50):
            simulator.schedule(0.001 * (50 - i), make(i))
        final = simulator.run()
        return order, final

    def test_event_sim_identical_with_sanitizer(self):
        plain_order, plain_final = self._run_sim()
        with installed(SimSanitizer(strict=True)) as sanitizer:
            sane_order, sane_final = self._run_sim()
        assert sane_order == plain_order
        assert sane_final == plain_final
        assert sanitizer.pops_observed == 50
        assert sanitizer.violations == []

    def test_sanitizer_observes_event_loop_pops(self):
        with installed(SimSanitizer()) as sanitizer:
            self._run_sim()
        assert sanitizer.pops_observed == 50
        assert sanitizer._last_time["events"] == pytest.approx(0.05)


class TestCliIntegration:
    def test_serve_simsan_run_is_byte_identical(self, tmp_path):
        """A --simsan serve run must produce the same run id and digests as
        a plain run at the same seed (the determinism smoke CI also runs)."""
        run_dir = tmp_path / "runs"
        common = [
            "serve", "--benchmark", "GNMT-E32K", "--duration", "0.05",
            "--seed", "7", "--tiles", "2", "--run-dir", str(run_dir),
        ]
        assert repro_main(
            common + ["--out", str(tmp_path / "plain.json")]
        ) == 0
        assert repro_main(
            common + ["--out", str(tmp_path / "simsan.json"), "--simsan"]
        ) == 0
        manifests = sorted(run_dir.glob("*.json"))
        assert len(manifests) == 1, [m.name for m in manifests]
        plain = json.loads((tmp_path / "plain.json").read_text())
        sane = json.loads((tmp_path / "simsan.json").read_text())
        assert plain == sane
