"""Tests for the comparison-architecture models (repro.baselines)."""

import pytest

from repro.baselines import (
    CPU_AP,
    CPU_N,
    GENSTORE_AP,
    GENSTORE_N,
    SMARTSSD_AP,
    SMARTSSD_H_AP,
    SMARTSSD_H_N,
    SMARTSSD_N,
)
from repro.baselines.common import BaselineResult
from repro.baselines.gpu_enmc import ECSSD_POWER_W, EnmcComparison, GpuComparison
from repro.errors import ConfigurationError
from repro.workloads.benchmarks import get_benchmark

SPEC = get_benchmark("XMLCNN-S100M")
SMALL = get_benchmark("GNMT-E32K")


class TestBaselineResult:
    def test_serial_sums(self):
        r = BaselineResult("x", "b", 8, stages={"a": 1.0, "b": 2.0}, overlapped=False)
        assert r.batch_time == 3.0

    def test_overlapped_takes_max(self):
        r = BaselineResult("x", "b", 8, stages={"a": 1.0, "b": 2.0}, overlapped=True)
        assert r.batch_time == 2.0

    def test_time_for_queries_rounds_up_batches(self):
        r = BaselineResult("x", "b", 8, stages={"a": 1.0})
        assert r.time_for_queries(8) == 1.0
        assert r.time_for_queries(9) == 2.0
        with pytest.raises(ConfigurationError):
            r.time_for_queries(0)

    def test_bottleneck(self):
        r = BaselineResult("x", "b", 8, stages={"io": 5.0, "compute": 1.0})
        assert r.bottleneck == "io"
        assert BaselineResult("x", "b", 8).bottleneck == "none"


class TestCpuBaselines:
    def test_cpu_n_is_io_bound(self):
        result = CPU_N.estimate(SPEC, batch=8)
        assert result.bottleneck == "weight_io"

    def test_cpu_ap_beats_cpu_n(self):
        t_n = CPU_N.time_for_queries(SPEC, 8, 8)
        t_ap = CPU_AP.time_for_queries(SPEC, 8, 8)
        assert t_n / t_ap > 3

    def test_cpu_ap_bound_by_random_reads(self):
        result = CPU_AP.estimate(SPEC, batch=8)
        assert result.bottleneck == "candidate_io"

    def test_names(self):
        assert CPU_N.name == "CPU-N"
        assert CPU_AP.name == "CPU-AP"
        assert CPU_AP.uses_screening and not CPU_N.uses_screening


class TestGenStoreBaselines:
    def test_genstore_n_is_compute_bound(self):
        """Fig. 1 point A: the naive in-storage design is compute-bound."""
        result = GENSTORE_N.estimate(SPEC, batch=8)
        assert result.bottleneck == "classify_compute"

    def test_genstore_beats_cpu(self):
        t_cpu = CPU_N.time_for_queries(SPEC, 8, 8)
        t_gen = GENSTORE_N.time_for_queries(SPEC, 8, 8)
        assert t_cpu > t_gen

    def test_screening_helps_genstore(self):
        t_n = GENSTORE_N.time_for_queries(SPEC, 8, 8)
        t_ap = GENSTORE_AP.time_for_queries(SPEC, 8, 8)
        assert t_n / t_ap > 3

    def test_effective_gflops_fragmented(self):
        assert GENSTORE_N.effective_gflops < GENSTORE_N.naive_total_gflops


class TestSmartSSDBaselines:
    def test_switch_is_the_bottleneck(self):
        result = SMARTSSD_N.estimate(SPEC, batch=8)
        assert result.bottleneck == "weight_switch"

    def test_h_variant_doubles_switch(self):
        assert SMARTSSD_H_N.switch_bandwidth == pytest.approx(6e9)
        t = SMARTSSD_N.time_for_queries(SPEC, 8, 8)
        t_h = SMARTSSD_H_N.time_for_queries(SPEC, 8, 8)
        assert t / t_h == pytest.approx(2.0, rel=0.05)

    def test_ap_faster_than_n(self):
        assert SMARTSSD_N.time_for_queries(SPEC, 8, 8) > SMARTSSD_AP.time_for_queries(
            SPEC, 8, 8
        )

    def test_names(self):
        assert SMARTSSD_AP.name == "SmartSSD-AP"
        assert SMARTSSD_H_AP.name == "SmartSSD-H-AP"


class TestFig13Ordering:
    def test_paper_ordering_holds(self):
        """§6.7: CPU-N slowest ... SmartSSD-H-AP fastest baseline."""
        times = [
            model.time_for_queries(SPEC, 8, 8)
            for model in (
                CPU_N,
                SMARTSSD_N,
                GENSTORE_N,
                SMARTSSD_H_N,
                CPU_AP,
                SMARTSSD_AP,
                GENSTORE_AP,
                SMARTSSD_H_AP,
            )
        ]
        assert times == sorted(times, reverse=True)

    def test_ordering_holds_on_small_benchmark_too(self):
        times = [
            model.time_for_queries(SMALL, 8, 8)
            for model in (CPU_N, SMARTSSD_N, GENSTORE_N, SMARTSSD_H_N)
        ]
        assert times == sorted(times, reverse=True)


class TestGpuComparison:
    def test_single_3090_cannot_hold_s100m(self):
        gpu = GpuComparison()
        assert SPEC.fp32_matrix_bytes > gpu.gpu_memory_bytes

    def test_fleet_size_matches_paper(self):
        """§7.2: >= 18 RTX 3090s for the 100M-category problem."""
        assert GpuComparison().gpus_needed(SPEC) >= 18

    def test_power_ratios(self):
        gpu = GpuComparison()
        assert gpu.single_gpu_power_ratio() == pytest.approx(32, rel=0.05)
        assert gpu.power_ratio_vs_ecssd(SPEC) >= 573

    def test_small_model_needs_one_gpu(self):
        assert GpuComparison().gpus_needed(SMALL) == 1


class TestEnmcComparison:
    def test_efficiency_ratios_match_paper(self):
        enmc = EnmcComparison()
        assert enmc.energy_efficiency_ratio() == pytest.approx(1.19, rel=0.02)
        assert enmc.cost_efficiency_ratio() == pytest.approx(8.87, rel=0.05)

    def test_enmc_cannot_hold_s100m_fp32(self):
        """§7.3: the 400 GB matrix does not fit ENMC's 512 GB... it does,
        barely — but S50M x 4 or larger scale-ups do not."""
        enmc = EnmcComparison()
        assert enmc.fits(SPEC)  # 400 GB < 512 GiB
        bigger = SPEC.scaled(200_000_000, "S200M")
        assert not enmc.fits(bigger)

    def test_ecssd_reference_power(self):
        assert ECSSD_POWER_W == pytest.approx(50 / 4.55)
