"""Tests for the MAC circuit area/power models against the paper's anchors."""

import pytest

from repro.cfp32.circuits import (
    AcceleratorAreaModel,
    MacCircuitModel,
    MacDesign,
    required_fp32_gflops,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def naive():
    return MacCircuitModel(MacDesign.NAIVE)


@pytest.fixture(scope="module")
def skh():
    return MacCircuitModel(MacDesign.SK_HYNIX)


@pytest.fixture(scope="module")
def af():
    return MacCircuitModel(MacDesign.ALIGNMENT_FREE)


class TestFig9Anchors:
    def test_area_ratios(self, naive, skh, af):
        assert naive.area_units / af.area_units == pytest.approx(1.73, rel=0.02)
        assert skh.area_units / af.area_units == pytest.approx(1.38, rel=0.02)

    def test_power_ratios(self, naive, skh, af):
        assert naive.power_units / af.power_units == pytest.approx(1.53, rel=0.02)
        assert skh.power_units / af.power_units == pytest.approx(1.19, rel=0.02)

    def test_ordering(self, naive, skh, af):
        assert naive.area_units > skh.area_units > af.area_units
        assert naive.power_units > skh.power_units > af.power_units


class TestSection42Anchors:
    def test_alignment_share_is_37_7pct(self, naive):
        assert naive.alignment_area_fraction() == pytest.approx(0.377, abs=0.01)

    def test_alignment_free_has_no_alignment_components(self, af):
        assert af.alignment_area_fraction() == 0.0

    def test_naive_gflops_under_budget(self, naive):
        """§4.2: naive circuit reaches ~29.2 GFLOPS in the FP32 budget."""
        assert naive.gflops_under_area(0.139) == pytest.approx(29.2, rel=0.05)

    def test_af_gflops_under_budget(self, af):
        assert af.gflops_under_area(0.139) == pytest.approx(50.0, rel=0.05)

    def test_whole_mac_rounding(self, naive):
        frac = naive.gflops_under_area(0.139, whole_macs=False)
        whole = naive.gflops_under_area(0.139, whole_macs=True)
        assert whole <= frac

    def test_iso_throughput_area(self, naive, af):
        """§6.2: the naive circuit matching the 64-MAC array's 51.2 GFLOPS
        needs ~0.24 mm² where the alignment-free one needs 0.139 mm²."""
        assert naive.area_for_gflops(51.2) == pytest.approx(0.24, rel=0.02)
        assert af.area_for_gflops(51.2) == pytest.approx(0.139, rel=0.02)

    def test_iso_throughput_power(self, naive):
        """§6.2: the naive equivalent burns ~51.8 mW."""
        assert naive.power_for_gflops(51.2) == pytest.approx(51.8, rel=0.02)

    def test_input_validation(self, naive):
        with pytest.raises(ConfigurationError):
            naive.area_for_gflops(-1)
        with pytest.raises(ConfigurationError):
            naive.gflops_under_area(-1)


class TestTable4:
    def test_totals(self):
        acc = AcceleratorAreaModel()
        assert acc.total_area_mm2 == pytest.approx(0.1836, abs=0.002)
        assert acc.total_power_mw == pytest.approx(52.93, abs=0.5)

    def test_fits_cortex_r5_budget(self):
        assert AcceleratorAreaModel().fits_budget(0.21)

    def test_naive_version_busts_budget(self):
        naive_acc = AcceleratorAreaModel(fp32_design=MacDesign.NAIVE)
        assert not naive_acc.fits_budget(0.21)

    def test_breakdown_rows(self):
        rows = AcceleratorAreaModel().breakdown()
        assert set(rows) == {"FP32 MAC", "INT4 MAC", "Comparator", "Scheduler"}
        assert rows["FP32 MAC"]["area_mm2"] == pytest.approx(0.139, rel=0.01)
        assert rows["FP32 MAC"]["power_mw"] == pytest.approx(33.87, rel=0.01)
        assert rows["INT4 MAC"]["area_mm2"] == pytest.approx(0.044)
        assert rows["Comparator"]["power_mw"] == pytest.approx(0.016)

    def test_fp32_share_roughly_75pct(self):
        """Table 4 narration: FP32 MAC is ~75.7% of area, ~63.9% of power."""
        acc = AcceleratorAreaModel()
        assert acc.fp32_area_mm2 / acc.total_area_mm2 == pytest.approx(0.757, abs=0.01)
        assert acc.fp32_power_mw / acc.total_power_mw == pytest.approx(0.639, abs=0.01)


class TestRequiredGflops:
    def test_paper_figure(self):
        """§4.2: LSTM-W33K needs 34.8 GFLOPS to keep up with 8 GB/s."""
        assert required_fp32_gflops(8e9, batch_size=8.7) == pytest.approx(34.8)

    def test_af_keeps_up_where_naive_cannot(self):
        needed = required_fp32_gflops(8e9, batch_size=8.7)
        assert 29.2 < needed <= 50.0

    def test_scales_linearly_with_batch(self):
        assert required_fp32_gflops(8e9, 16) == pytest.approx(
            2 * required_fp32_gflops(8e9, 8)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_fp32_gflops(0, 8)
        with pytest.raises(ConfigurationError):
            required_fp32_gflops(8e9, 0)
