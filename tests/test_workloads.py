"""Tests for the workload layer: Table 3 registry, synthetic data, traces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.units import GB
from repro.workloads.benchmarks import (
    BENCHMARKS,
    INTERLEAVING_SET,
    LARGE_SCALE,
    BenchmarkSpec,
    get_benchmark,
    list_benchmarks,
)
from repro.workloads.synthetic import generate_features, generate_weights, make_workload
from repro.workloads.traces import (
    CandidateTraceGenerator,
    LabelHotnessModel,
)


class TestBenchmarkRegistry:
    def test_all_seven_table3_rows(self):
        assert len(list_benchmarks()) == 7
        assert set(LARGE_SCALE) <= set(BENCHMARKS)
        assert set(INTERLEAVING_SET) <= set(BENCHMARKS)

    @pytest.mark.parametrize(
        "name,labels,hidden",
        [
            ("GNMT-E32K", 32_317, 1024),
            ("LSTM-W33K", 33_278, 1500),
            ("Transformer-W268K", 267_744, 512),
            ("XMLCNN-A670K", 670_091, 512),
            ("XMLCNN-S10M", 10_000_000, 1024),
            ("XMLCNN-S50M", 50_000_000, 1024),
            ("XMLCNN-S100M", 100_000_000, 1024),
        ],
    )
    def test_table3_dimensions(self, name, labels, hidden):
        spec = get_benchmark(name)
        assert spec.num_labels == labels
        assert spec.hidden_dim == hidden

    def test_s100m_matrix_sizes_match_section_6_1(self):
        """§6.1: S100M 4/32-bit matrices are 12.8 GB / 400 GB."""
        spec = get_benchmark("XMLCNN-S100M")
        assert spec.shrunk_dim == 256
        assert spec.int4_matrix_bytes == pytest.approx(12.8 * GB, rel=0.01)
        assert spec.fp32_matrix_bytes == pytest.approx(400 * GB, rel=0.03)

    def test_projection_scale(self):
        assert get_benchmark("LSTM-W33K").shrunk_dim == 375

    def test_flop_accounting(self):
        spec = get_benchmark("GNMT-E32K")
        assert spec.fp32_flops_full(2) == 2 * 2 * 32_317 * 1024
        assert spec.fp32_flops_screened(2) < spec.fp32_flops_full(2)
        assert spec.int4_ops(1) == 2 * 32_317 * 256

    def test_expected_candidates(self):
        spec = get_benchmark("GNMT-E32K")
        assert spec.expected_candidates == round(32_317 * 0.10)

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_benchmark("nope")

    def test_scaled_copy(self):
        spec = get_benchmark("XMLCNN-S100M").scaled(5, "tiny")
        assert spec.num_labels == 5
        assert spec.name.endswith("tiny")

    def test_invalid_spec(self):
        with pytest.raises(WorkloadError):
            BenchmarkSpec("x", "m", "d", 0, 10)
        with pytest.raises(WorkloadError):
            BenchmarkSpec("x", "m", "d", 10, 10, candidate_ratio=0)


class TestSyntheticWeights:
    def test_shapes_and_determinism(self):
        w1, c1 = generate_weights(256, 64, seed=3)
        w2, c2 = generate_weights(256, 64, seed=3)
        assert w1.shape == (256, 64)
        np.testing.assert_array_equal(w1, w2)
        np.testing.assert_array_equal(c1, c2)

    def test_cluster_runs_are_contiguous(self):
        _, clusters = generate_weights(256, 32, cluster_run=16, seed=0)
        for start in range(0, 256, 16):
            run = clusters[start : start + 16]
            assert len(set(run.tolist())) == 1

    def test_custom_cluster_map(self):
        custom = np.zeros(64, dtype=np.int64)
        w, c = generate_weights(64, 32, cluster_of_label=custom)
        np.testing.assert_array_equal(c, custom)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_weights(0, 8)
        with pytest.raises(WorkloadError):
            generate_weights(8, 8, cluster_of_label=np.zeros(3, dtype=np.int64))

    def test_weights_have_value_locality(self):
        from repro.cfp32.format import lossless_fraction

        weights, _ = generate_weights(128, 64, seed=1)
        assert lossless_fraction(weights) > 0.95


class TestSyntheticFeatures:
    def test_queries_align_with_targets(self):
        wl = make_workload(num_labels=512, hidden_dim=128, num_queries=32, seed=4)
        exact = wl.features @ wl.weights.T
        top1 = exact.argmax(axis=1)
        # The top-1 label's cluster matches the query's cluster mostly.
        agree = (wl.cluster_of_label[top1] == wl.cluster_of_query).mean()
        assert agree > 0.8

    def test_cluster_skew(self):
        wl = make_workload(num_labels=512, hidden_dim=64, num_queries=400, seed=0)
        counts = np.bincount(wl.cluster_of_query, minlength=16)
        assert counts.max() > 3 * max(1, counts[counts > 0].min())

    def test_validation(self):
        weights, clusters = generate_weights(64, 32)
        with pytest.raises(WorkloadError):
            generate_features(0, 32, weights, clusters)


class TestHotnessModel:
    def test_deterministic_per_tile(self):
        model = LabelHotnessModel(num_labels=4096, seed=1)
        a = model.tile_weights(3, 512)
        b = model.tile_weights(3, 512)
        np.testing.assert_array_equal(a, b)

    def test_different_tiles_differ(self):
        model = LabelHotnessModel(num_labels=4096, seed=1)
        assert not np.array_equal(model.tile_weights(0, 512), model.tile_weights(1, 512))

    def test_run_structure(self):
        model = LabelHotnessModel(num_labels=4096, run_length=8, seed=1)
        w = model.tile_weights(0, 64)
        assert w.shape == (64,)
        assert (w > 0).all()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LabelHotnessModel(num_labels=0)
        model = LabelHotnessModel(num_labels=16)
        with pytest.raises(WorkloadError):
            model.tile_weights(0, 0)


class TestTraceGenerator:
    def make(self, ratio=0.1, noise=0.3):
        model = LabelHotnessModel(num_labels=8192, seed=2)
        return CandidateTraceGenerator(model, candidate_ratio=ratio, query_noise=noise)

    def test_candidate_count_matches_ratio(self):
        gen = self.make(ratio=0.1)
        trace = gen.tile_trace(0, 1000, num_queries=5)
        assert all(len(c) == 100 for c in trace.candidates)

    def test_candidates_sorted_in_range(self):
        gen = self.make()
        trace = gen.tile_trace(2, 512, num_queries=4)
        for c in trace.candidates:
            assert (np.diff(c) > 0).all()
            assert 0 <= c.min() and c.max() < 512

    def test_global_candidates_offset(self):
        gen = self.make()
        trace = gen.tile_trace(2, 512, num_queries=1)
        np.testing.assert_array_equal(
            trace.global_candidates()[0], trace.candidates[0] + 1024
        )

    def test_low_noise_queries_agree(self):
        quiet = self.make(noise=0.01).tile_trace(0, 512, num_queries=4)
        loud = self.make(noise=5.0).tile_trace(0, 512, num_queries=4)

        def overlap(trace):
            a, b = trace.candidates[0], trace.candidates[1]
            return len(np.intersect1d(a, b)) / len(a)

        assert overlap(quiet) > 0.9
        assert overlap(loud) < overlap(quiet)

    def test_selection_frequency(self):
        gen = self.make(noise=0.01)
        trace = gen.tile_trace(0, 512, num_queries=10)
        freq = trace.selection_frequency()
        assert freq.shape == (512,)
        assert freq.max() == 1.0  # hottest labels always selected

    def test_predictor_abs_sums_fidelity(self):
        gen = self.make()
        perfect = gen.predictor_abs_sums(0, 512, fidelity=1.0)
        useless = gen.predictor_abs_sums(0, 512, fidelity=0.0)
        truth = np.log(gen.hotness.tile_weights(0, 512))
        assert np.corrcoef(perfect, truth)[0, 1] > 0.95
        assert abs(np.corrcoef(useless, truth)[0, 1]) < 0.35

    def test_validation(self):
        model = LabelHotnessModel(num_labels=16)
        with pytest.raises(WorkloadError):
            CandidateTraceGenerator(model, candidate_ratio=0.0)
        gen = CandidateTraceGenerator(model)
        with pytest.raises(WorkloadError):
            gen.tile_trace(0, 16, num_queries=0)
        with pytest.raises(WorkloadError):
            gen.predictor_abs_sums(0, 16, fidelity=2.0)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_tiles_reproducible_property(self, tile_index):
        gen = self.make()
        a = gen.tile_trace(tile_index, 256, num_queries=3, seed=9)
        b = gen.tile_trace(tile_index, 256, num_queries=3, seed=9)
        for x, y in zip(a.candidates, b.candidates):
            np.testing.assert_array_equal(x, y)
