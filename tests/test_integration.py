"""Cross-level integration tests.

The repository has two timing levels: the event-driven SSD simulator
(`repro.ssd`) and the analytic tile pipeline (`repro.core.pipeline`).  These
tests drive the same fetch pattern through both and require agreement, and
run the full functional stack end to end.
"""

import numpy as np
import pytest

from repro.config import ECSSDConfig
from repro.core.ecssd import ECSSDevice
from repro.core.pipeline import PipelineFeatures, TilePipelineModel, TileWorkload
from repro.layout.placement import build_placement
from repro.layout.uniform import UniformInterleaving
from repro.ssd.device import SSDDevice
from repro.workloads.synthetic import make_workload


class TestEventVsAnalytic:
    def test_fetch_makespan_agrees(self):
        """Event-simulated channel makespan matches the analytic model's
        pages x effective-page-time rule within the sense-fill constant."""
        config = ECSSDConfig()
        device = SSDDevice(config)
        placement = build_placement(
            UniformInterleaving(), 512, config.flash.channels, 4096, 4096
        )
        candidates = np.random.default_rng(0).choice(512, size=160, replace=False)
        lists = placement.fetch_page_lists(candidates)

        # Write those pages through the FTL so physical addresses exist.
        logical = []
        for channel, pages in lists.items():
            base = device.ftl.channel_logical_range(channel).start
            logical.extend(base + int(p) for p in pages)
        for lpa in logical:
            device.ftl.write(lpa)
        addresses = [device.ftl.lookup(lpa) for lpa in logical]
        result = device.fetch_pages(addresses, start=0.0)

        pipeline = TilePipelineModel(config=config, features=PipelineFeatures.full())
        counts = placement.pages_per_channel(candidates)
        analytic = counts.max() * pipeline.effective_page_time

        # The event model resolves effects the steady-state analytic rule
        # folds away: one initial sense, per-command firmware overhead, and
        # die-sense serialization when a random batch lands unevenly across
        # a channel's dies.  Agreement must hold within that envelope.
        overhead = config.flash.read_latency + config.ftl_command_overhead * (
            counts.max() + 2
        )
        assert result.makespan <= 2.2 * analytic + overhead
        assert result.makespan >= analytic * 0.8

    def test_event_utilization_tracks_balance(self):
        config = ECSSDConfig()
        device = SSDDevice(config)
        placement = build_placement(
            UniformInterleaving(), 256, config.flash.channels, 4096, 4096
        )
        balanced = np.arange(128)
        counts = placement.pages_per_channel(balanced)
        assert counts.max() - counts.min() <= 1
        lists = placement.fetch_page_lists(balanced)
        logical = []
        for channel, pages in lists.items():
            base = device.ftl.channel_logical_range(channel).start
            logical.extend(base + int(p) for p in pages)
        for lpa in logical:
            device.ftl.write(lpa)
        result = device.fetch_pages(
            [device.ftl.lookup(lpa) for lpa in logical], start=0.0
        )
        # Small random batches pay sense serialization the steady-state
        # model hides; utilization still clearly beats the skewed regime.
        assert result.utilization(device.page_transfer_time) > 0.45


class TestFullStack:
    def test_quickstart_flow(self):
        """The README quickstart, as a test."""
        wl = make_workload(num_labels=2048, hidden_dim=256, num_queries=48, seed=0)
        dev = ECSSDevice(interleaving="learned")
        dev.deploy_model(wl.weights, train_features=wl.features[:32])
        stats, report = dev.run_inference(wl.features[32:40], top_k=5)
        assert stats.result.top_labels.shape == (8, 5)
        assert report.scaled_total_time > 0
        # Predictions match a plain numpy reference.
        exact = wl.features[32:40] @ wl.weights.T
        np.testing.assert_array_equal(
            stats.result.top_labels[:, 0], exact.argmax(axis=1)
        )

    def test_feature_flags_never_change_predictions(self):
        wl = make_workload(num_labels=1024, hidden_dim=128, num_queries=40, seed=1)
        outputs = []
        for features in (PipelineFeatures.full(), PipelineFeatures.baseline()):
            strategy = "learned" if features.overlap else "sequential"
            dev = ECSSDevice(features=features, interleaving=strategy)
            dev.deploy_model(wl.weights, train_features=wl.features[:24])
            stats, _ = dev.run_inference(wl.features[24:32])
            outputs.append(stats.result.top_labels.copy())
        np.testing.assert_array_equal(outputs[0], outputs[1])

    def test_baseline_features_slower_than_full(self):
        wl = make_workload(num_labels=1024, hidden_dim=128, num_queries=40, seed=1)
        times = {}
        for features in (PipelineFeatures.full(), PipelineFeatures.baseline()):
            strategy = "learned" if features.overlap else "sequential"
            dev = ECSSDevice(features=features, interleaving=strategy)
            dev.deploy_model(wl.weights, train_features=wl.features[:24])
            _, report = dev.run_inference(wl.features[24:32])
            times[features.label] = report.scaled_total_time
        assert times["baseline"] > times["ecssd"]
