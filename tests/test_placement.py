"""Tests for the placement framework (repro.layout.placement)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.layout.placement import WeightPlacement, build_placement
from repro.layout.sequential import SequentialStoring
from repro.layout.uniform import UniformInterleaving


def uniform_placement(num_vectors=64, channels=4, vector_bytes=4096, page=4096):
    return build_placement(
        UniformInterleaving(), num_vectors, channels, vector_bytes, page
    )


class TestBuildPlacement:
    def test_slots_are_dense_per_channel(self):
        pl = uniform_placement(num_vectors=16, channels=4)
        for channel in range(4):
            slots = np.sort(pl.slot_of[pl.channel_of == channel])
            np.testing.assert_array_equal(slots, np.arange(len(slots)))

    def test_strategy_name_recorded(self):
        assert uniform_placement().strategy_name == "uniform"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_placement(UniformInterleaving(), 0, 4, 4096, 4096)
        with pytest.raises(ConfigurationError):
            build_placement(UniformInterleaving(), 8, 0, 4096, 4096)
        with pytest.raises(ConfigurationError):
            build_placement(UniformInterleaving(), 8, 4, 0, 4096)


class TestPackingArithmetic:
    def test_page_sized_vectors(self):
        pl = uniform_placement(vector_bytes=4096, page=4096)
        assert pl.vectors_per_page == 1
        assert pl.pages_per_vector == 1

    def test_half_page_vectors_share(self):
        pl = uniform_placement(vector_bytes=2048, page=4096)
        assert pl.vectors_per_page == 2

    def test_multi_page_vectors(self):
        pl = uniform_placement(vector_bytes=6000, page=4096)
        assert pl.vectors_per_page == 0
        assert pl.pages_per_vector == 2

    def test_channel_pages_page_sized(self):
        pl = uniform_placement(num_vectors=64, channels=4, vector_bytes=4096)
        assert pl.channel_pages(0) == 16

    def test_channel_pages_shared(self):
        pl = uniform_placement(num_vectors=64, channels=4, vector_bytes=2048)
        assert pl.channel_pages(0) == 8

    def test_page_index_of(self):
        pl = uniform_placement(num_vectors=8, channels=4, vector_bytes=2048)
        # Vectors 0 and 4 share channel 0 slots 0 and 1 -> same page.
        assert pl.page_index_of(0) == 0
        assert pl.page_index_of(4) == 0


class TestPagesPerChannel:
    def test_empty_candidates(self):
        pl = uniform_placement()
        np.testing.assert_array_equal(pl.pages_per_channel(np.array([])), [0, 0, 0, 0])

    def test_counts_match_assignment(self):
        pl = uniform_placement(num_vectors=16, channels=4)
        counts = pl.pages_per_channel(np.arange(16))
        np.testing.assert_array_equal(counts, [4, 4, 4, 4])

    def test_shared_pages_counted_once(self):
        pl = uniform_placement(num_vectors=16, channels=4, vector_bytes=2048)
        # Vectors 0 and 4 share channel 0's first page.
        counts = pl.pages_per_channel(np.array([0, 4]))
        np.testing.assert_array_equal(counts, [1, 0, 0, 0])

    def test_multi_page_vectors_count_fully(self):
        pl = uniform_placement(num_vectors=8, channels=4, vector_bytes=6000)
        counts = pl.pages_per_channel(np.array([0, 1]))
        np.testing.assert_array_equal(counts, [2, 2, 0, 0])

    def test_out_of_range_candidates_rejected(self):
        pl = uniform_placement(num_vectors=8)
        with pytest.raises(WorkloadError):
            pl.pages_per_channel(np.array([99]))
        with pytest.raises(WorkloadError):
            pl.pages_per_channel(np.array([-1]))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_total_pages_bounded_property(self, seed):
        """Page counts never exceed candidate count (sharing only merges)
        and cover every candidate's channel."""
        rng = np.random.default_rng(seed)
        num_vectors = int(rng.integers(8, 200))
        channels = int(rng.integers(1, 9))
        vector_bytes = int(rng.choice([1024, 2048, 4096, 6000]))
        pl = build_placement(
            UniformInterleaving(), num_vectors, channels, vector_bytes, 4096
        )
        k = int(rng.integers(1, num_vectors + 1))
        candidates = rng.choice(num_vectors, size=k, replace=False)
        counts = pl.pages_per_channel(candidates)
        assert counts.sum() <= k * max(1, pl.pages_per_vector)
        assert counts.sum() >= -(-k // max(1, pl.vectors_per_page or 1))
        touched = set(pl.channel_of[candidates].tolist())
        assert set(np.flatnonzero(counts).tolist()) <= touched


class TestFetchPageLists:
    def test_lists_match_counts(self):
        pl = uniform_placement(num_vectors=32, channels=4)
        candidates = np.array([0, 1, 2, 5, 9, 13])
        counts = pl.pages_per_channel(candidates)
        lists = pl.fetch_page_lists(candidates)
        for channel, pages in lists.items():
            assert len(pages) == counts[channel]
            assert (np.diff(pages) > 0).all()

    def test_empty(self):
        pl = uniform_placement()
        assert pl.fetch_page_lists(np.array([])) == {}

    def test_multi_page_lists(self):
        pl = uniform_placement(num_vectors=8, channels=2, vector_bytes=8192)
        lists = pl.fetch_page_lists(np.array([0]))
        np.testing.assert_array_equal(lists[0], [0, 1])


class TestBalanceMetric:
    def test_perfect_balance(self):
        pl = uniform_placement(num_vectors=16, channels=4)
        assert pl.balance_metric(np.arange(16)) == 1.0

    def test_single_channel_imbalance(self):
        pl = build_placement(SequentialStoring(), 64, 4, 4096, 4096)
        # All candidates in one slab -> 1/4 balance.
        assert pl.balance_metric(np.arange(8)) == pytest.approx(0.25)

    def test_empty_is_balanced(self):
        pl = uniform_placement()
        assert pl.balance_metric(np.array([])) == 1.0
