"""Tests for the unified telemetry subsystem (repro.obs)."""

import json
import logging

import numpy as np
import pytest

from repro import ECSSD, ObservabilityConfig, obs
from repro.analysis.metrics import utilization_timeline
from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    Tracer,
)
from repro.ssd.controller import CommandKind
from repro.ssd.trace import CommandTrace, TraceEvent
from repro.workloads.synthetic import make_workload


@pytest.fixture(autouse=True)
def _restore_globals():
    registry, tracer = obs.get_registry(), obs.get_tracer()
    yield
    obs.set_registry(registry)
    obs.set_tracer(tracer)


def _make_event(sequence, channel, submit, finish, kind=CommandKind.READ):
    return TraceEvent(
        sequence=sequence,
        channel=channel,
        package=0,
        die=sequence % 2,
        kind=kind,
        submit_time=submit,
        finish_time=finish,
    )


# --- metrics -----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("pages_total", "pages")
        counter.inc(3, channel=0)
        counter.inc(2, channel=0)
        counter.inc(7, channel=1)
        assert counter.value(channel=0) == 5
        assert counter.value(channel=1) == 7
        assert counter.total() == 12

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value() == 1

    def test_registry_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_histogram_percentiles_interpolate(self):
        hist = MetricsRegistry().histogram("lat", buckets=tuple(range(1, 11)))
        for value in range(1, 11):  # one observation per bucket
            hist.observe(value)
        assert hist.count() == 10
        assert 4.0 <= hist.percentile(50.0) <= 6.0
        assert hist.percentile(100.0) == 10.0
        p = hist.quantiles()
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_histogram_single_value_is_exact(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        hist.observe(2.5)
        for p in (0.0, 50.0, 99.0):
            assert hist.percentile(p) == 2.5

    def test_histogram_empty_raises(self):
        hist = MetricsRegistry().histogram("lat")
        with pytest.raises(ConfigurationError):
            hist.percentile(50.0)

    def test_quantiles_or_none_on_empty_histogram(self):
        hist = MetricsRegistry().histogram("lat")
        assert hist.quantiles_or_none() is None
        hist.observe(2.0, level=1)
        assert hist.quantiles_or_none() is None  # unlabeled set still empty
        assert hist.quantiles_or_none(level=1) == hist.quantiles(level=1)

    def test_quantiles_or_none_matches_quantiles(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 8.0):
            hist.observe(value)
        assert hist.quantiles_or_none() == hist.quantiles()


# --- tracing -----------------------------------------------------------------------
class TestTracing:
    def test_span_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # inner finishes first
        assert inner.name == "inner" and inner.parent == "outer"
        assert inner.depth == 1 and outer.depth == 0
        assert outer.parent is None

    def test_sim_and_wall_clocks_are_independent(self):
        tracer = Tracer()
        with tracer.span("run") as span:
            span.set_sim_window(0.0, 2.5)
        record = tracer.spans[0]
        assert record.sim_duration == 2.5
        assert record.wall_duration is not None and record.wall_duration >= 0.0
        pre_timed = tracer.add_span("tile0", 1.0, 3.0)
        assert pre_timed.sim_duration == 2.0 and pre_timed.wall_duration is None

    def test_instant_events(self):
        tracer = Tracer()
        tracer.instant("gc", sim_time=1.5, attrs={"plane": [0, 0, 0, 0]})
        record = tracer.spans[0]
        assert record.kind == "instant" and record.sim_start == 1.5

    def test_invalid_sim_window_raises(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.add_span("bad", 2.0, 1.0)

    def test_add_command_trace_shares_schema(self):
        tracer = Tracer()
        trace = CommandTrace(events=[_make_event(0, 3, 0.0, 1e-3)])
        assert tracer.add_command_trace(trace) == 1
        span = tracer.spans[0]
        assert span.track == "flash/ch3"
        assert span.sim_start == 0.0 and span.sim_end == 1e-3

    def test_find_filters_by_prefix_and_track(self):
        tracer = Tracer()
        tracer.add_span("tile0/int4_fetch", 0.0, 1.0, track="int4-module")
        tracer.add_span("tile0/fp32_fetch", 0.0, 2.0, track="fp32-module")
        tracer.add_span("tile1/fp32_fetch", 2.0, 3.0, track="fp32-module")
        assert len(tracer.find("tile0/")) == 2
        fp32_only = tracer.find("tile0/", track="fp32-module")
        assert [s.name for s in fp32_only] == ["tile0/fp32_fetch"]
        assert tracer.find("tile0/", track="nope") == []
        # The disabled tracer accepts the same signature and finds nothing.
        assert NullTracer().find("tile0/", track="fp32-module") == []


# --- no-op mode --------------------------------------------------------------------
class TestNoOpMode:
    def test_defaults_are_null_singletons(self):
        assert isinstance(obs.get_registry(), NullMetricsRegistry)
        assert isinstance(obs.get_tracer(), NullTracer)
        assert not obs.get_registry().enabled
        assert not obs.get_tracer().enabled

    def test_null_instruments_record_nothing(self):
        registry = obs.get_registry()
        counter = registry.counter("anything")
        counter.inc(5, channel=1)
        assert counter.value(channel=1) == 0.0
        assert registry.counter("other") is counter  # one shared no-op
        tracer = obs.get_tracer()
        with tracer.span("nope") as span:
            span.set_sim_window(0.0, 1.0)
        assert len(tracer) == 0

    def test_instrumented_run_matches_uninstrumented_bit_for_bit(self):
        workload = make_workload(
            num_labels=1024, hidden_dim=128, num_queries=24, seed=7
        )

        def run():
            device = ECSSD()
            device.ecssd_enable()
            device.weight_deploy(
                workload.weights, train_features=workload.features[:16]
            )
            device.int4_input_send(workload.features[16:20])
            device.cfp32_input_send(device.pre_align(workload.features[16:20]))
            device.int4_screen()
            return device.get_results(), device.last_report

        baseline_labels, baseline_report = run()
        session = obs.configure(ObservabilityConfig())
        try:
            observed_labels, observed_report = run()
        finally:
            session.uninstall()
        assert len(session.tracer.spans) > 0  # telemetry actually recorded
        np.testing.assert_array_equal(baseline_labels, observed_labels)
        assert observed_report.scaled_total_time == baseline_report.scaled_total_time
        assert observed_report.run.total_time == baseline_report.run.total_time
        assert observed_report.run.fp32_busy == baseline_report.run.fp32_busy


# --- exporters ---------------------------------------------------------------------
class TestExporters:
    def _session(self):
        session = obs.Observability()
        registry, tracer = session.registry, session.tracer
        registry.counter("ecssd_pages_fetched_total").inc(10, channel=0)
        registry.histogram("ecssd_tile_latency_seconds").observe(2e-3)
        tracer.add_span("tile0", 0.0, 2e-3, attrs={"index": 0})
        tracer.instant("gc", sim_time=1e-3)
        tracer.add_command_trace(
            CommandTrace(events=[_make_event(0, 1, 0.0, 5e-4)])
        )
        return session

    def test_prometheus_text_format(self):
        session = self._session()
        text = obs.to_prometheus_text(session.registry)
        assert "# HELP ecssd_pages_fetched_total" in text
        assert "# TYPE ecssd_pages_fetched_total counter" in text
        assert 'ecssd_pages_fetched_total{channel="0"} 10' in text
        assert "ftl_gc_total 0" in text  # pre-registered, never hit
        assert 'ecssd_tile_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "ecssd_tile_latency_seconds_count 1" in text
        # bucket counts are cumulative, hence non-decreasing
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("ecssd_tile_latency_seconds_bucket")
        ]
        assert counts == sorted(counts)

    def test_labeled_histogram_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "flash_command_latency_seconds", buckets=(1e-4, 1e-3, 1e-2)
        )
        hist.observe(5e-4, channel=0, kind="read")
        hist.observe(2e-3, channel=0, kind="read")
        hist.observe(5e-4, channel=1, kind="program")
        text = obs.to_prometheus_text(registry)
        lines = [
            line for line in text.splitlines()
            if line.startswith("flash_command_latency_seconds_bucket")
            and 'channel="0"' in line
        ]
        # One bucket line per bound plus +Inf, cumulative and le-ordered.
        assert len(lines) == 4
        les = [line.split('le="')[1].split('"')[0] for line in lines]
        assert les == ["0.0001", "0.001", "0.01", "+Inf"]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts) and counts[-1] == 2
        # Per-label-set _sum and _count rows exist.
        assert 'flash_command_latency_seconds_count{channel="0",kind="read"} 2' in text
        assert 'flash_command_latency_seconds_count{channel="1",kind="program"} 1' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_labels_total").inc(
            1, note='quote " backslash \\ newline \n done'
        )
        text = obs.to_prometheus_text(registry)
        line = next(
            l for l in text.splitlines() if l.startswith("odd_labels_total{")
        )
        assert '\\"' in line and "\\\\" in line and "\\n" in line
        assert "\n" not in line  # the raw newline must not split the sample

    def test_jsonl_round_trip(self):
        session = self._session()
        lines = obs.to_jsonl(session.tracer, session.registry).splitlines()
        rows = [json.loads(line) for line in lines]
        types = {row["type"] for row in rows}
        assert {"span", "instant", "metric"} <= types
        spans = [r for r in rows if r["type"] == "span"]
        assert any(r["name"] == "tile0" and r["sim_end"] == 2e-3 for r in spans)

    def test_chrome_trace_field_contract(self):
        session = self._session()
        doc = json.loads(obs.to_chrome_trace(session.tracer))
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert isinstance(event["ts"], float)
                assert isinstance(event["dur"], float) and event["dur"] >= 0
            elif event["ph"] == "i":
                assert "dur" not in event and event["s"] == "t"
        # sim seconds are exported as microseconds
        tile = next(e for e in events if e["name"] == "tile0")
        assert tile["ts"] == 0.0 and abs(tile["dur"] - 2000.0) < 1e-9
        tracks = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "flash/ch1" in tracks

    def test_flush_writes_configured_outputs(self, tmp_path):
        config = ObservabilityConfig(
            trace_out=str(tmp_path / "t.json"),
            metrics_out=str(tmp_path / "m.prom"),
            jsonl_out=str(tmp_path / "o.jsonl"),
        )
        with obs.configure(config) as session:
            session.tracer.add_span("tile0", 0.0, 1e-3)
        assert obs.get_tracer() is not session.tracer  # restored on exit
        trace = json.loads((tmp_path / "t.json").read_text())
        assert any(e["name"] == "tile0" for e in trace["traceEvents"])
        assert "# TYPE" in (tmp_path / "m.prom").read_text()
        assert (tmp_path / "o.jsonl").read_text().strip()


# --- flash command trace helpers ---------------------------------------------------
class TestCommandTraceHelpers:
    def _trace(self):
        return CommandTrace(
            events=[
                _make_event(0, 0, 0.0, 4.0),
                _make_event(1, 0, 1.0, 2.0),
                _make_event(2, 1, 1.0, 3.0),
            ]
        )

    def test_queue_depth_percentiles_are_time_weighted(self):
        trace = self._trace()
        # depth: 1 on [0,1), 3 on [1,2), 2 on [2,3), 1 on [3,4)
        assert trace.queue_depth_percentile(50.0) == 1.0
        assert trace.queue_depth_percentile(99.0) == 3.0
        summary = trace.queue_depth_summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_queue_depth_empty_trace_raises(self):
        with pytest.raises(SimulationError):
            CommandTrace().queue_depth_percentile(50.0)

    def test_queue_depth_single_sample_timeline(self):
        trace = CommandTrace(events=[_make_event(0, 0, 0.0, 2.0)])
        # One command in flight the whole window: every percentile is 1.
        assert trace.queue_depth_percentile(0.0) == 1.0
        assert trace.queue_depth_percentile(50.0) == 1.0
        assert trace.queue_depth_percentile(100.0) == 1.0

    def test_queue_depth_p0_and_p100_bound_the_depths(self):
        trace = self._trace()
        assert trace.queue_depth_percentile(0.0) == 1.0
        assert trace.queue_depth_percentile(100.0) == 3.0
        with pytest.raises(SimulationError):
            trace.queue_depth_percentile(101.0)
        with pytest.raises(SimulationError):
            trace.queue_depth_percentile(-1.0)

    def test_queue_depth_instantaneous_events_fall_back_to_peak(self):
        trace = CommandTrace(events=[_make_event(0, 0, 1.0, 1.0)])
        # Zero-duration timeline: no time weight exists, use the peak.
        assert trace.queue_depth_percentile(50.0) == float(
            trace.max_queue_depth()
        )

    def test_to_chrome_events_uses_shared_schema(self):
        events = self._trace().to_chrome_events()
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3
        first = slices[0]
        assert first["ts"] == 0.0 and first["dur"] == 4.0 * 1e6
        assert first["args"]["kind"] == "read"


# --- satellites --------------------------------------------------------------------
class TestSatellites:
    def test_utilization_timeline_empty_raises(self):
        with pytest.raises(WorkloadError):
            utilization_timeline([])

    def test_utilization_timeline_still_works(self):
        out = utilization_timeline([np.array([2, 2, 2, 2]), np.array([0, 4, 0, 0])])
        assert out[0] == 1.0 and out[1] == 0.25

    def test_observability_config_validates(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(verbosity=-1)
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(trace_out="")

    def test_package_root_logger_has_null_handler(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_configure_logging_is_idempotent(self):
        root = obs.configure_logging(1)
        before = len(root.handlers)
        obs.configure_logging(2)
        assert len(root.handlers) == before
        assert root.level == logging.DEBUG

    def test_default_buckets_cover_device_timescales(self):
        assert DEFAULT_BUCKETS[0] <= 1e-6 and DEFAULT_BUCKETS[-1] >= 10.0


# --- CLI ---------------------------------------------------------------------------
class TestCli:
    def test_quickstart_emits_valid_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "quickstart",
                "--labels", "512",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
                "-v",
            ]
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        assert any(name.startswith("tile") for name in names)
        tracks = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert any(track.startswith("flash/ch") for track in tracks)
        metrics = metrics_path.read_text()
        assert "ecssd_pages_fetched_total{" in metrics
        assert "ftl_gc_total" in metrics
        assert "ecssd_tile_latency_seconds_bucket" in metrics
        # globals restored: later runs are uninstrumented again
        assert not obs.get_tracer().enabled
