"""Tests for online re-interleaving (repro.layout.remapper)."""

import numpy as np
import pytest

from repro.config import ECSSDConfig
from repro.errors import WorkloadError
from repro.layout.learned import HotnessPredictor, LearnedInterleaving
from repro.layout.placement import build_placement
from repro.layout.remapper import (
    RemapPlan,
    VectorMove,
    diff_placements,
    maintenance_summary,
    remap_time,
)
from repro.layout.uniform import UniformInterleaving
from repro.workloads.drift import drifted_generator
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel

TILE = 512


def learned_placement(generator, tile_index=0):
    abs_sums = generator.predictor_abs_sums(tile_index, TILE, fidelity=0.9)
    predictor = HotnessPredictor(abs_sums)
    train = generator.tile_trace(tile_index, TILE, num_queries=200, seed=1)
    predictor.fine_tune(train.selection_frequency(), observations=200)
    return build_placement(
        LearnedInterleaving(predictor), TILE, 8, 4096, 4096, tile_vectors=TILE
    )


class TestDiff:
    def test_identical_placements_need_no_moves(self):
        pl = build_placement(UniformInterleaving(), TILE, 8, 4096, 4096)
        plan = diff_placements(pl, pl)
        assert plan.moves == []
        assert plan.moved_fraction == 0.0

    def test_diff_counts_changed_channels_only(self):
        old = build_placement(UniformInterleaving(), 16, 4, 4096, 4096)
        new_channels = old.channel_of.copy()
        new_channels[3] = (new_channels[3] + 1) % 4
        new = build_placement(UniformInterleaving(), 16, 4, 4096, 4096)
        new.channel_of = new_channels
        plan = diff_placements(old, new)
        assert len(plan.moves) == 1
        assert plan.moves[0].vector == 3

    def test_mismatched_placements_rejected(self):
        a = build_placement(UniformInterleaving(), 16, 4, 4096, 4096)
        b = build_placement(UniformInterleaving(), 32, 4, 4096, 4096)
        with pytest.raises(WorkloadError):
            diff_placements(a, b)
        c = build_placement(UniformInterleaving(), 16, 8, 4096, 4096)
        with pytest.raises(WorkloadError):
            diff_placements(a, c)

    def test_drift_retune_moves_a_minority(self):
        """Re-tuning after drift relocates part of the tile, not all of it."""
        base = LabelHotnessModel(num_labels=TILE, run_length=1, seed=3)
        old_gen = CandidateTraceGenerator(base, candidate_ratio=0.1, query_noise=0.05)
        new_gen = drifted_generator(base, drift=0.5)
        old = learned_placement(old_gen)
        new = learned_placement(new_gen)
        plan = diff_placements(old, new)
        assert 0.0 < plan.moved_fraction < 1.0


class TestRemapTime:
    def make_plan(self, moves):
        return RemapPlan(
            moves=[VectorMove(i, src, dst) for i, (src, dst) in enumerate(moves)],
            total_vectors=max(16, len(moves)),
        )

    def test_empty_plan_free(self):
        assert remap_time(RemapPlan(), vector_bytes=4096) == 0.0

    def test_program_dominates_reads(self):
        # One move: program (660 us / 8 dies) >> read (4 us).
        plan = self.make_plan([(0, 1)])
        time = remap_time(plan, vector_bytes=4096)
        config = ECSSDConfig()
        expected_program = config.flash.program_latency / config.flash.dies_per_channel
        assert time == pytest.approx(expected_program, rel=0.1)

    def test_busiest_channel_sets_makespan(self):
        concentrated = self.make_plan([(0, 1)] * 8)
        spread = self.make_plan([(i % 4, 4 + i % 4) for i in range(8)])
        assert remap_time(concentrated, 4096) > remap_time(spread, 4096)

    def test_scales_with_vector_size(self):
        plan = self.make_plan([(0, 1)] * 4)
        small = remap_time(plan, vector_bytes=4096)
        large = remap_time(plan, vector_bytes=16384)
        assert large == pytest.approx(4 * small, rel=0.01)

    def test_invalid_vector_bytes(self):
        with pytest.raises(WorkloadError):
            remap_time(RemapPlan(), vector_bytes=0)

    def test_per_channel_counters(self):
        plan = self.make_plan([(0, 1), (0, 2), (3, 1)])
        reads = plan.reads_per_channel(4)
        programs = plan.programs_per_channel(4)
        np.testing.assert_array_equal(reads, [2, 0, 0, 1])
        np.testing.assert_array_equal(programs, [0, 2, 1, 0])


class TestMaintenanceSummary:
    def test_summary_fields(self):
        base = LabelHotnessModel(num_labels=TILE, run_length=1, seed=3)
        old_gen = CandidateTraceGenerator(base, candidate_ratio=0.1, query_noise=0.05)
        new_gen = drifted_generator(base, drift=1.0)
        plan = diff_placements(
            learned_placement(old_gen), learned_placement(new_gen)
        )
        summary = maintenance_summary(plan, vector_bytes=4096)
        assert summary["moves"] == len(plan.moves)
        assert summary["bytes_moved"] == len(plan.moves) * 4096
        assert summary["makespan_seconds"] > 0
        assert len(summary["reads_per_channel"]) == 8


class TestIncrementalRebalance:
    def setup_scores(self, seed=0, n=256):
        rng = np.random.default_rng(seed)
        return rng.lognormal(0, 1.0, size=n)

    def test_balances_a_skewed_placement(self):
        from repro.layout.remapper import incremental_rebalance

        scores = self.setup_scores()
        # Deliberately bad placement: everything on channel 0's half.
        pl = build_placement(UniformInterleaving(), 256, 8, 4096, 4096)
        # Perturb: put the 32 hottest vectors all on channel 0.
        hot = np.argsort(scores)[-32:]
        pl.channel_of[hot] = 0
        new_channels, plan = incremental_rebalance(pl, scores, tolerance=0.05)
        loads = np.array([scores[new_channels == c].sum() for c in range(8)])
        assert loads.max() <= loads.mean() * 1.10
        assert 0 < len(plan.moves) < 256

    def test_balanced_placement_needs_no_moves(self):
        from repro.layout.remapper import incremental_rebalance

        scores = np.ones(256)
        pl = build_placement(UniformInterleaving(), 256, 8, 4096, 4096)
        _, plan = incremental_rebalance(pl, scores, tolerance=0.05)
        assert plan.moves == []

    def test_max_moves_budget_respected(self):
        from repro.layout.remapper import incremental_rebalance

        scores = self.setup_scores(seed=1)
        pl = build_placement(UniformInterleaving(), 256, 8, 4096, 4096)
        pl.channel_of[np.argsort(scores)[-64:]] = 0
        _, plan = incremental_rebalance(pl, scores, max_moves=3)
        assert len(plan.moves) <= 3

    def test_validation(self):
        from repro.layout.remapper import incremental_rebalance

        pl = build_placement(UniformInterleaving(), 16, 4, 4096, 4096)
        with pytest.raises(WorkloadError):
            incremental_rebalance(pl, np.ones(8))
        with pytest.raises(WorkloadError):
            incremental_rebalance(pl, np.ones(16), tolerance=0)
