"""Tests for repro.config: Table 2 geometry and validation."""

import pytest

from repro.config import (
    AcceleratorConfig,
    ECSSDConfig,
    FlashConfig,
    default_config,
    validate_table2,
)
from repro.errors import ConfigurationError
from repro.units import GiB, KiB, MiB, TiB, gbps


class TestFlashConfig:
    def test_default_is_4tb_class(self):
        flash = FlashConfig()
        assert flash.capacity_bytes == 4 * TiB

    def test_default_channels_and_page(self):
        flash = FlashConfig()
        assert flash.channels == 8
        assert flash.page_size == 4 * KiB

    def test_hierarchy_multiplies_out(self):
        flash = FlashConfig()
        assert flash.total_pages == flash.channels * flash.pages_per_channel
        assert (
            flash.pages_per_channel
            == flash.dies_per_channel * flash.pages_per_die
        )
        assert flash.pages_per_die == flash.planes_per_die * flash.pages_per_plane
        assert flash.pages_per_plane == flash.blocks_per_plane * flash.pages_per_block

    def test_internal_bandwidth_is_8x_channel(self):
        flash = FlashConfig()
        assert flash.internal_bandwidth == pytest.approx(8 * gbps(1.0))

    def test_page_transfer_time(self):
        flash = FlashConfig()
        assert flash.page_transfer_time == pytest.approx(4096 / 1e9)

    def test_streaming_is_bus_limited(self):
        # tR spread over the channel's dies must not exceed page bus time,
        # or Table 2's 1 GB/s per-channel streaming figure would not hold.
        flash = FlashConfig()
        assert flash.read_latency / flash.dies_per_channel <= flash.page_transfer_time

    @pytest.mark.parametrize(
        "field",
        ["channels", "packages_per_channel", "dies_per_package", "page_size"],
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ConfigurationError):
            FlashConfig(**{field: 0})

    def test_rejects_non_positive_timing(self):
        with pytest.raises(ConfigurationError):
            FlashConfig(read_latency=0)


class TestAcceleratorConfig:
    def test_table2_defaults(self):
        acc = AcceleratorConfig()
        assert acc.fp32_macs == 64
        assert acc.int4_macs == 256
        assert acc.frequency_hz == 400e6
        assert acc.technology_nm == 28

    def test_throughputs_match_section_6_1(self):
        acc = AcceleratorConfig()
        assert acc.int4_throughput == pytest.approx(200e9)
        assert acc.fp32_throughput == pytest.approx(50e9)
        assert acc.naive_fp32_throughput == pytest.approx(29.2e9)

    def test_peak_matches_mac_count(self):
        # 256 INT4 MACs x 2 ops x 400 MHz = 204.8 GOPS ~ the 200 GOPS quoted.
        acc = AcceleratorConfig()
        implied = acc.int4_macs * 2 * acc.frequency_hz
        assert implied == pytest.approx(acc.int4_throughput, rel=0.05)
        implied_fp = acc.fp32_macs * 2 * acc.frequency_hz
        assert implied_fp == pytest.approx(acc.fp32_throughput, rel=0.05)

    def test_buffer_total_sums_table2(self):
        acc = AcceleratorConfig()
        expected = (4 + 128 + 4 + 2 + 100 + 400 + 1) * KiB
        assert acc.buffer_total == expected

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(fp32_macs=0)
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(frequency_hz=-1)


class TestECSSDConfig:
    def test_table2_top_half(self):
        cfg = ECSSDConfig()
        assert cfg.dram_capacity == 16 * GiB
        assert cfg.data_buffer == 4 * MiB
        assert cfg.dram_bandwidth == pytest.approx(gbps(12.8))

    def test_area_budget_is_cortex_r5(self):
        assert ECSSDConfig().area_budget_mm2 == pytest.approx(0.21)

    def test_validate_table2_accepts_default(self):
        validate_table2(default_config())

    def test_validate_table2_rejects_wrong_channels(self):
        with pytest.raises(ConfigurationError):
            validate_table2(default_config().with_channels(4))

    def test_with_channels_copies(self):
        base = default_config()
        wide = base.with_channels(16)
        assert wide.flash.channels == 16
        assert base.flash.channels == 8

    def test_with_dram_capacity(self):
        small = default_config().with_dram_capacity(8 * GiB)
        assert small.dram_capacity == 8 * GiB

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ECSSDConfig(dram_capacity=0)
        with pytest.raises(ConfigurationError):
            ECSSDConfig(host_bandwidth=0)
        with pytest.raises(ConfigurationError):
            ECSSDConfig(ftl_command_overhead=-1)
