"""Tests for the three §5 interleaving strategies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.layout.learned import (
    HotGrade,
    HotnessPredictor,
    LearnedInterleaving,
    empirical_frequencies,
)
from repro.layout.sequential import SequentialStoring
from repro.layout.uniform import UniformInterleaving
from repro.screening.quantization import Int4Quantizer


class TestSequential:
    def test_contiguous_slabs(self):
        channels = SequentialStoring().assign_channels(16, 4, 16)
        np.testing.assert_array_equal(channels, [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4)

    def test_uneven_division_clamps(self):
        channels = SequentialStoring().assign_channels(10, 4, 10)
        assert channels.max() == 3
        assert (np.diff(channels) >= 0).all()

    def test_fewer_vectors_than_channels(self):
        channels = SequentialStoring().assign_channels(2, 8, 2)
        assert set(channels.tolist()) <= set(range(8))


class TestUniform:
    def test_round_robin(self):
        channels = UniformInterleaving().assign_channels(10, 4, 10)
        np.testing.assert_array_equal(channels, [0, 1, 2, 3, 0, 1, 2, 3, 0, 1])

    def test_counts_nearly_equal(self):
        channels = UniformInterleaving().assign_channels(103, 8, 103)
        counts = np.bincount(channels, minlength=8)
        assert counts.max() - counts.min() <= 1


class TestHotnessPredictor:
    def test_scores_normalized(self):
        pred = HotnessPredictor(np.array([1.0, 3.0, 6.0]))
        assert pred.scores.sum() == pytest.approx(1.0)
        assert pred.scores[2] > pred.scores[0]

    def test_from_quantized(self):
        rng = np.random.default_rng(0)
        q = Int4Quantizer().quantize(rng.normal(size=(10, 8)).astype(np.float32))
        pred = HotnessPredictor.from_quantized(q)
        assert len(pred) == 10

    def test_all_zero_abs_sums(self):
        pred = HotnessPredictor(np.zeros(4))
        np.testing.assert_allclose(pred.scores, 0.25)

    def test_grades_partition(self):
        rng = np.random.default_rng(1)
        pred = HotnessPredictor(rng.random(100))
        grades = pred.grades()
        assert (grades == HotGrade.VERY_HOT).sum() == 10
        assert (grades == HotGrade.MEDIUM_HOT).sum() == 30
        assert (grades == HotGrade.NOT_HOT).sum() == 60

    def test_grades_follow_scores(self):
        pred = HotnessPredictor(np.array([1.0, 100.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]))
        grades = pred.grades()
        assert grades[1] == HotGrade.VERY_HOT

    def test_fine_tune_moves_toward_frequencies(self):
        pred = HotnessPredictor(np.ones(4))
        freq = np.array([1.0, 0.0, 0.0, 0.0])
        pred.fine_tune(freq, observations=10_000)
        assert pred.is_fine_tuned
        assert pred.scores[0] > 0.9

    def test_fine_tune_with_few_observations_stays_near_prior(self):
        pred = HotnessPredictor(np.ones(4))
        before = pred.scores.copy()
        pred.fine_tune(np.array([1.0, 0.0, 0.0, 0.0]), observations=1)
        assert abs(pred.scores[0] - before[0]) < 0.1

    def test_fine_tune_validation(self):
        pred = HotnessPredictor(np.ones(4))
        with pytest.raises(WorkloadError):
            pred.fine_tune(np.ones(3), observations=10)
        with pytest.raises(WorkloadError):
            pred.fine_tune(np.full(4, 2.0), observations=10)
        with pytest.raises(WorkloadError):
            pred.fine_tune(np.ones(4), observations=-1)

    def test_construction_validation(self):
        with pytest.raises(WorkloadError):
            HotnessPredictor(np.ones((2, 2)))
        with pytest.raises(WorkloadError):
            HotnessPredictor(np.ones(4), very_hot_fraction=0.0)


class TestLearnedInterleaving:
    def test_balances_hot_mass_within_tile(self):
        scores = np.zeros(64)
        scores[:8] = 100.0  # eight very hot vectors
        pred = HotnessPredictor(scores + 1e-9)
        channels = LearnedInterleaving(pred).assign_channels(64, 8, 64)
        hot_channels = channels[:8]
        assert len(set(hot_channels.tolist())) == 8  # one hot vector per channel

    def test_tile_windows_balanced_independently(self):
        rng = np.random.default_rng(0)
        scores = rng.random(64)
        pred = HotnessPredictor(scores)
        channels = LearnedInterleaving(pred).assign_channels(64, 4, 16)
        for start in range(0, 64, 16):
            window = slice(start, start + 16)
            counts = np.bincount(channels[window], minlength=4)
            assert counts.min() >= 1  # every channel participates per tile
            # Predicted mass is what LPT balances: near-equal per channel.
            mass = np.array(
                [pred.scores[window][channels[window] == c].sum() for c in range(4)]
            )
            assert mass.max() <= mass.mean() * 1.5

    def test_length_mismatch_rejected(self):
        pred = HotnessPredictor(np.ones(8))
        with pytest.raises(WorkloadError):
            LearnedInterleaving(pred).assign_channels(16, 4, 16)

    def test_invalid_tile_rejected(self):
        pred = HotnessPredictor(np.ones(8))
        with pytest.raises(WorkloadError):
            LearnedInterleaving(pred).assign_channels(8, 4, 0)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_lpt_beats_uniform_on_predicted_mass(self, seed):
        """Property: for any score vector, LPT's max per-channel predicted
        mass never exceeds round-robin's."""
        rng = np.random.default_rng(seed)
        n, c = 64, 8
        scores = rng.lognormal(0, 1.5, size=n)
        pred = HotnessPredictor(scores)
        learned = LearnedInterleaving(pred).assign_channels(n, c, n)
        uniform = UniformInterleaving().assign_channels(n, c, n)
        mass = pred.scores

        def max_load(assign):
            return max(mass[assign == ch].sum() for ch in range(c))

        assert max_load(learned) <= max_load(uniform) + 1e-12


class TestEmpiricalFrequencies:
    def test_counts(self):
        queries = [np.array([0, 1]), np.array([1, 2])]
        freq = empirical_frequencies(queries, num_vectors=4)
        np.testing.assert_allclose(freq, [0.5, 1.0, 0.5, 0.0])

    def test_empty(self):
        np.testing.assert_array_equal(empirical_frequencies([], 3), [0, 0, 0])
