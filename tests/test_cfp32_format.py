"""Tests for the CFP32 format and pre-alignment (repro.cfp32.format)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfp32.format import (
    BIAS,
    COMPENSATION_BITS,
    STORED_MANTISSA_BITS,
    CFP32Vector,
    decode,
    lossless_fraction,
    max_relative_error,
    prealign,
)
from repro.errors import FormatError


class TestPrealign:
    def test_single_value_roundtrips_exactly(self):
        v = prealign(np.array([1.5], dtype=np.float32))
        np.testing.assert_allclose(decode(v), [1.5])

    def test_uniform_exponent_vector_is_lossless(self):
        data = np.array([1.0, 1.5, -1.25, 1.75], dtype=np.float32)
        v = prealign(data)
        assert v.is_lossless().all()
        np.testing.assert_allclose(decode(v), data.astype(np.float64))

    def test_shared_exponent_is_the_max(self):
        data = np.array([0.5, 4.0, 1.0], dtype=np.float32)
        v = prealign(data)
        assert v.shared_exponent == 129  # exponent of 4.0

    def test_within_7_shifts_is_lossless(self):
        # Values spanning 2^7 still align without dropping bits.
        data = np.array([1.0, 1.0 / 128.0], dtype=np.float32)
        v = prealign(data)
        assert v.is_lossless().all()
        np.testing.assert_allclose(decode(v), data.astype(np.float64))

    def test_beyond_7_shifts_truncates(self):
        data = np.array([1.0, np.float32(1.0) / 2**10 * np.float32(1.3)], dtype=np.float32)
        v = prealign(data)
        assert not v.is_lossless().all()
        err = max_relative_error(data[None, :])
        assert err < 2 ** -(STORED_MANTISSA_BITS - 10 - 1)

    def test_zero_vector(self):
        v = prealign(np.zeros(4, dtype=np.float32))
        assert v.shared_exponent == 0
        assert (v.mantissas == 0).all()
        np.testing.assert_array_equal(decode(v), np.zeros(4))

    def test_negative_values(self):
        data = np.array([-2.0, 3.0], dtype=np.float32)
        v = prealign(data)
        assert v.mantissas[0] < 0
        np.testing.assert_allclose(decode(v), data.astype(np.float64))

    def test_subnormals_flush_to_zero(self):
        tiny = np.float32(1e-44)  # subnormal
        v = prealign(np.array([1.0, tiny], dtype=np.float32))
        assert decode(v)[1] == 0.0

    def test_rejects_non_finite(self):
        with pytest.raises(FormatError):
            prealign(np.array([np.inf], dtype=np.float32))
        with pytest.raises(FormatError):
            prealign(np.array([np.nan], dtype=np.float32))

    def test_rejects_matrix(self):
        with pytest.raises(FormatError):
            prealign(np.zeros((2, 2), dtype=np.float32))

    def test_mantissas_fit_31_bits(self):
        rng = np.random.default_rng(0)
        v = prealign(rng.normal(size=256).astype(np.float32))
        assert np.abs(v.mantissas).max() < 2**STORED_MANTISSA_BITS

    def test_storage_is_4_bytes_per_element_plus_shared_exponent(self):
        v = prealign(np.ones(100, dtype=np.float32))
        assert v.storage_bytes == 401


class TestCFP32Vector:
    def test_validation(self):
        with pytest.raises(FormatError):
            CFP32Vector(
                shared_exponent=300,
                mantissas=np.zeros(1, dtype=np.int64),
                dropped_bits=np.zeros(1, dtype=np.int64),
            )
        with pytest.raises(FormatError):
            CFP32Vector(
                shared_exponent=10,
                mantissas=np.array([2**31], dtype=np.int64),
                dropped_bits=np.zeros(1, dtype=np.int64),
            )

    def test_len(self):
        v = prealign(np.ones(7, dtype=np.float32))
        assert len(v) == 7


class TestValueLocality:
    def test_local_vectors_are_95pct_lossless(self):
        """§4.2: with deep-learning value locality, >95% of elements lose
        no bits under 7-bit compensation."""
        rng = np.random.default_rng(0)
        rows = rng.normal(0, 1, size=(64, 256)) * np.exp(
            rng.normal(0, 0.35, size=(64, 256))
        )
        frac = lossless_fraction(rows.astype(np.float32))
        assert frac > 0.95

    def test_wild_exponent_spread_loses_bits(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(8, 64)) * np.exp(rng.normal(0, 8, size=(8, 64)))
        assert lossless_fraction(rows.astype(np.float32)) < 0.95

    def test_empty_input(self):
        assert lossless_fraction(np.zeros((0, 4), dtype=np.float32)) == 1.0


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_reconstruction_error_bounded(self, seed):
        """Truncation drops at most (offset - 7) low bits: relative error is
        bounded by 2^-(24 + 7 - offset) per element, and is zero within the
        compensation window."""
        rng = np.random.default_rng(seed)
        spread = rng.uniform(0.1, 4.0)
        data = (rng.normal(size=64) * np.exp(rng.normal(0, spread, size=64))).astype(
            np.float32
        )
        v = prealign(data)
        decoded = decode(v)
        reference = data.astype(np.float64)
        for got, want, dropped in zip(decoded, reference, v.dropped_bits):
            if want == 0.0:
                assert got == 0.0
                continue
            if dropped == 0:
                assert got == want
            else:
                assert abs(got - want) <= abs(want) * 2.0 ** (dropped - 23.5)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_lossless_window_roundtrips(self, seed):
        rng = np.random.default_rng(seed)
        exponents = rng.integers(0, COMPENSATION_BITS + 1, size=32)
        data = (rng.choice([-1.0, 1.0], 32) * (1.0 + rng.random(32)) * 2.0 ** -exponents).astype(np.float32)
        v = prealign(data)
        assert v.is_lossless().all()
        np.testing.assert_array_equal(decode(v), data.astype(np.float64))
