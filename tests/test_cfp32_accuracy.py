"""E14: end-to-end check that CFP32 arithmetic changes no predictions.

§4.2 claims that running the candidate-only classification through the
pre-aligned CFP32 datapath (instead of IEEE FP32) causes no classification
accuracy drop.  Here the full screening pipeline runs twice — once ranking
candidates with IEEE float32 GEMV, once with the bit-accurate alignment-free
MAC — and the predictions must agree.
"""

import numpy as np
import pytest

from repro.cfp32.format import lossless_fraction, prealign
from repro.cfp32.mac import AlignmentFreeMac
from repro.screening.model import ApproximateScreeningModel
from repro.workloads.synthetic import make_workload


@pytest.fixture(scope="module")
def setup():
    wl = make_workload(num_labels=512, hidden_dim=64, num_queries=24, seed=2)
    model = ApproximateScreeningModel(wl.weights, seed=3)
    model.calibrate(wl.features[:12], target_ratio=0.10)
    return wl, model


class TestCfp32EndToEnd:
    def test_workload_has_value_locality(self, setup):
        wl, _ = setup
        assert lossless_fraction(wl.weights[:64]) > 0.95

    def test_predictions_identical_under_cfp32(self, setup):
        wl, model = setup
        mac = AlignmentFreeMac()
        features = wl.features[12:20]
        stats = model.infer(features, top_k=1)
        aligned_weights = [prealign(row) for row in model.classifier.weights]
        for q, feature in enumerate(features):
            candidates = stats.screen.candidates[q]
            aligned_feature = prealign(feature)
            cfp32_scores = np.array(
                [mac.dot(aligned_feature, aligned_weights[c]).result for c in candidates]
            )
            cfp32_top = candidates[int(np.argmax(cfp32_scores))]
            assert cfp32_top == stats.result.top_labels[q, 0]

    def test_cfp32_scores_match_fp32_scores(self, setup):
        wl, model = setup
        mac = AlignmentFreeMac()
        feature = wl.features[20]
        exact = model.classifier.exact_scores(feature[None])[0]
        aligned_feature = prealign(feature)
        sample = np.arange(0, 512, 37)
        for label in sample:
            got = mac.dot(aligned_feature, prealign(model.classifier.weights[label])).result
            assert got == pytest.approx(float(exact[label]), rel=1e-4, abs=1e-6)
