"""Tests for the accelerator latency model and the tile pipeline."""

import numpy as np
import pytest

from repro.cfp32.circuits import MacDesign
from repro.config import ECSSDConfig
from repro.core.accelerator import AcceleratorModel
from repro.core.pipeline import (
    PipelineFeatures,
    TilePipelineModel,
    TileWorkload,
)
from repro.errors import ConfigurationError, SimulationError


def tile(fp32_pages, int4_pages=None, **overrides):
    params = dict(
        tile_vectors=1024,
        shrunk_dim=256,
        hidden_dim=1024,
        batch=8,
        candidates=100,
        fp32_pages_per_channel=np.asarray(fp32_pages),
        int4_pages_per_channel=None if int4_pages is None else np.asarray(int4_pages),
        int4_bytes=1024 * 128,
    )
    params.update(overrides)
    return TileWorkload(**params)


class TestAcceleratorModel:
    def test_designs_set_throughput(self):
        assert AcceleratorModel(fp32_design=MacDesign.ALIGNMENT_FREE).fp32_throughput == 50e9
        assert AcceleratorModel(fp32_design=MacDesign.NAIVE).fp32_throughput == 29.2e9
        skh = AcceleratorModel(fp32_design=MacDesign.SK_HYNIX).fp32_throughput
        assert 29.2e9 < skh < 50e9

    def test_int4_screen_time_scales(self):
        acc = AcceleratorModel()
        t1 = acc.int4_screen_time(1024, 256, batch=8)
        t2 = acc.int4_screen_time(1024, 256, batch=16)
        assert t2 == pytest.approx(2 * t1, rel=0.05)

    def test_fp32_classify_time_design_dependent(self):
        af = AcceleratorModel(fp32_design=MacDesign.ALIGNMENT_FREE)
        naive = AcceleratorModel(fp32_design=MacDesign.NAIVE)
        assert naive.fp32_classify_time(100, 1024, 8) > af.fp32_classify_time(100, 1024, 8)

    def test_zero_candidates_is_free(self):
        assert AcceleratorModel().fp32_classify_time(0, 1024, 8) == 0.0

    def test_negative_rejected(self):
        acc = AcceleratorModel()
        with pytest.raises(ConfigurationError):
            acc.fp32_classify_time(-1, 1024, 8)
        with pytest.raises(ConfigurationError):
            acc.int4_screen_time(0, 256, 8)

    def test_tile_vectors_for(self):
        acc = AcceleratorModel()
        # 128 KiB buffer / 128 B per packed K=256 vector = 1024 vectors.
        assert acc.tile_vectors_for(256) == 1024
        assert acc.tile_vectors_for(128) == 2048

    def test_table4_area(self):
        acc = AcceleratorModel()
        assert acc.total_area_mm2 == pytest.approx(0.1836, abs=0.002)
        assert acc.total_power_mw == pytest.approx(52.93, abs=0.5)


class TestPipelineFeatures:
    def test_baseline_flags(self):
        base = PipelineFeatures.baseline()
        assert base.mac_design is MacDesign.NAIVE
        assert not base.heterogeneous
        assert not base.overlap

    def test_full_flags(self):
        full = PipelineFeatures.full()
        assert full.mac_design is MacDesign.ALIGNMENT_FREE
        assert full.heterogeneous and full.overlap

    def test_design_mismatch_rejected(self):
        acc = AcceleratorModel(fp32_design=MacDesign.NAIVE)
        with pytest.raises(ConfigurationError):
            TilePipelineModel(accelerator=acc, features=PipelineFeatures.full())


class TestTileTiming:
    def test_balanced_faster_than_skewed(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        balanced = model.tile_timing(tile([13, 13, 13, 13, 13, 13, 13, 13]))
        skewed = model.tile_timing(tile([104, 0, 0, 0, 0, 0, 0, 0]))
        assert skewed.cost > 4 * balanced.cost

    def test_fetch_time_is_max_channel(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        timing = model.tile_timing(tile([5, 9, 2, 0, 0, 0, 0, 0]))
        assert timing.fp32_fetch == pytest.approx(9 * model.effective_page_time)
        assert timing.fp32_max_pages == 9
        assert timing.fp32_total_pages == 16

    def test_homogeneous_interference_slows_fetch(self):
        hetero = TilePipelineModel(features=PipelineFeatures.full())
        homo = TilePipelineModel(
            features=PipelineFeatures(
                mac_design=MacDesign.ALIGNMENT_FREE, heterogeneous=False, overlap=True
            )
        )
        pages = [13] * 8
        t_het = hetero.tile_timing(tile(pages)).fp32_fetch
        t_hom = homo.tile_timing(tile(pages, int4_pages=[4] * 8)).fp32_fetch
        # Extra INT4 pages plus the stream-mixing die-conflict penalty.
        expected = t_het * 17 / 13 * homo.interference_penalty
        assert t_hom == pytest.approx(expected)

    def test_homogeneous_requires_int4_pages(self):
        homo = TilePipelineModel(
            features=PipelineFeatures(
                mac_design=MacDesign.ALIGNMENT_FREE, heterogeneous=False, overlap=True
            )
        )
        with pytest.raises(ConfigurationError):
            homo.tile_timing(tile([1] * 8))

    def test_overlap_hides_compute_under_fetch(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        timing = model.tile_timing(tile([13] * 8))
        assert timing.fp32_compute < timing.fp32_fetch
        assert timing.cost == pytest.approx(timing.fp32_fetch)

    def test_serial_phases_add_up(self):
        model = TilePipelineModel(features=PipelineFeatures.baseline())
        timing = model.tile_timing(tile([13] * 8, int4_pages=[4] * 8))
        expected = (
            timing.int4_fetch
            + timing.int4_compute
            + timing.fp32_fetch
            + timing.fp32_compute
        )
        assert timing.cost == pytest.approx(expected)

    def test_naive_mac_can_be_compute_bound(self):
        naive = TilePipelineModel(
            features=PipelineFeatures(
                mac_design=MacDesign.NAIVE, heterogeneous=True, overlap=True
            ),
            accelerator=AcceleratorModel(fp32_design=MacDesign.NAIVE),
        )
        heavy = tile([13] * 8, candidates=104, batch=16)
        timing = naive.tile_timing(heavy)
        assert timing.fp32_compute > timing.fp32_fetch
        assert timing.cost == pytest.approx(timing.fp32_compute)

    def test_channel_count_checked(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        with pytest.raises(ConfigurationError):
            model.tile_timing(tile([1, 2, 3]))  # 3 channels vs 8


class TestSimulate:
    def test_aggregates_tiles(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        tiles = [tile([13] * 8) for _ in range(4)]
        result = model.simulate(tiles, keep_timings=True)
        assert result.tiles == 4
        assert len(result.tile_timings) == 4
        assert result.tile_time_total == pytest.approx(
            sum(t.cost for t in result.tile_timings)
        )
        assert result.total_time == pytest.approx(
            result.tile_time_total + result.overhead_time
        )

    def test_empty_rejected(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        with pytest.raises(SimulationError):
            model.simulate([])

    def test_host_bytes_add_overhead(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        quiet = model.simulate([tile([13] * 8)])
        chatty = model.simulate([tile([13] * 8)], host_bytes_in=3_200_000)
        assert chatty.total_time == pytest.approx(quiet.total_time + 1e-3)
        assert chatty.host_time == pytest.approx(1e-3)

    def test_utilization_in_bounds(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        result = model.simulate([tile([13] * 8) for _ in range(3)])
        assert 0 < result.fp32_channel_utilization <= 1.0

    def test_perfectly_balanced_utilization_near_one(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        result = model.simulate([tile([50] * 8, candidates=400)])
        assert result.fp32_channel_utilization > 0.95

    def test_speedup_over(self):
        model = TilePipelineModel(features=PipelineFeatures.full())
        fast = model.simulate([tile([13] * 8)])
        slow = model.simulate([tile([104, 0, 0, 0, 0, 0, 0, 0])])
        assert fast.speedup_over(slow) > 1.0
