"""Tests for the host-device wire protocol (repro.core.protocol)."""

import struct

import numpy as np
import pytest

from repro.core.protocol import (
    Command,
    DeviceFirmware,
    HostLink,
    Opcode,
    Response,
    Status,
)
from repro.errors import ProtocolError
from repro.workloads.synthetic import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload(num_labels=512, hidden_dim=64, num_queries=24, seed=4)


class TestFraming:
    def test_command_roundtrip(self):
        cmd = Command(Opcode.SCREEN, tag=42, payload=b"hello")
        out = Command.decode(cmd.encode())
        assert out == cmd

    def test_response_roundtrip(self):
        resp = Response(tag=7, status=Status.OK, payload=b"data")
        out = Response.decode(resp.encode())
        assert out == resp

    def test_bad_magic_rejected(self):
        blob = bytearray(Command(Opcode.ENABLE, 1).encode())
        blob[0] ^= 0xFF
        with pytest.raises(ProtocolError):
            Command.decode(bytes(blob))

    def test_corrupt_payload_rejected(self):
        blob = bytearray(Command(Opcode.SCREEN, 1, b"payload").encode())
        blob[-1] ^= 0xFF
        with pytest.raises(ProtocolError):
            Command.decode(bytes(blob))

    def test_truncated_rejected(self):
        blob = Command(Opcode.SCREEN, 1, b"payload").encode()
        with pytest.raises(ProtocolError):
            Command.decode(blob[:10])
        with pytest.raises(ProtocolError):
            Command.decode(blob[:-2])

    def test_unknown_opcode_rejected(self):
        blob = bytearray(Command(Opcode.ENABLE, 1).encode())
        struct.pack_into("<H", blob, 2, 0xEE)
        with pytest.raises(ProtocolError):
            Command.decode(bytes(blob))

    def test_tag_range_checked(self):
        with pytest.raises(ProtocolError):
            Command(Opcode.ENABLE, tag=2**32).encode()


class TestFirmware:
    def test_full_session(self, workload):
        link = HostLink()
        assert link.call(Opcode.ENABLE).status is Status.OK
        assert link.deploy(workload.weights).status is Status.OK
        assert link.send_inputs(workload.features[:4]).status is Status.OK
        screen = link.call(Opcode.SCREEN)
        assert screen.status is Status.OK
        (ratio,) = struct.unpack("<f", screen.payload)
        assert 0 < ratio <= 1
        assert link.call(Opcode.CLASSIFY).status is Status.OK
        labels = link.get_results()
        assert labels.shape == (4, 5)

    def test_results_match_direct_device(self, workload):
        link = HostLink()
        link.call(Opcode.ENABLE)
        link.deploy(workload.weights)
        link.call(
            Opcode.FILTER_THRESHOLD, struct.pack("<f", float("-inf"))
        )
        link.send_inputs(workload.features[:4])
        link.call(Opcode.SCREEN)
        labels = link.get_results()
        exact = workload.features[:4] @ workload.weights.T
        np.testing.assert_array_equal(labels[:, 0], exact.argmax(axis=1))

    def test_ssd_mode_rejects_accelerator_commands(self, workload):
        link = HostLink()
        response = link.deploy(workload.weights)
        assert response.status is Status.BAD_STATE

    def test_out_of_order_rejected(self):
        link = HostLink()
        link.call(Opcode.ENABLE)
        assert link.call(Opcode.SCREEN).status is Status.BAD_STATE
        assert link.call(Opcode.GET_RESULTS).status is Status.BAD_STATE

    def test_classify_requires_cfp32_inputs(self, workload):
        link = HostLink()
        link.call(Opcode.ENABLE)
        link.deploy(workload.weights)
        firmware = link.firmware
        # Bypass the helper: send only INT4 inputs.
        from repro.core.protocol import _pack_array

        link.call(Opcode.INT4_INPUT, _pack_array(workload.features[:2]))
        link.call(Opcode.SCREEN)
        firmware._cfp32_received = False
        assert link.call(Opcode.CLASSIFY).status is Status.BAD_STATE

    def test_disable_clears_state(self, workload):
        link = HostLink()
        link.call(Opcode.ENABLE)
        link.deploy(workload.weights)
        link.send_inputs(workload.features[:2])
        link.call(Opcode.SCREEN)
        link.call(Opcode.DISABLE)
        link.call(Opcode.ENABLE)
        assert link.call(Opcode.GET_RESULTS).status is Status.BAD_STATE

    def test_corrupt_command_gets_error_response(self):
        firmware = DeviceFirmware()
        blob = bytearray(Command(Opcode.ENABLE, 1).encode())
        blob[0] ^= 0xFF
        response = Response.decode(firmware.handle(bytes(blob)))
        assert response.status in (Status.BAD_MAGIC, Status.BAD_CRC)

    def test_malformed_array_payload(self):
        link = HostLink()
        link.call(Opcode.ENABLE)
        response = link.call(Opcode.DEPLOY, b"\x01\x02\x03")
        assert response.status is Status.BAD_PAYLOAD

    def test_history_tracks_statuses(self, workload):
        link = HostLink()
        link.call(Opcode.ENABLE)
        link.call(Opcode.SCREEN)  # bad state
        statuses = list(link.history.values())
        assert Status.OK in statuses
        assert Status.BAD_STATE in statuses
