"""Tests for the DRAM model, ping-pong buffer, and host interface."""

import pytest

from repro.errors import CapacityError, SimulationError
from repro.ssd.buffer import BufferOverflow, PingPongBuffer
from repro.ssd.dram import DramModel
from repro.ssd.host import HostInterface
from repro.units import GiB, MiB, gbps


class TestDram:
    def test_allocate_and_free(self):
        dram = DramModel(capacity=1 * GiB, bandwidth=gbps(12.8))
        dram.allocate("int4", 512 * MiB)
        assert dram.used == 512 * MiB
        dram.free("int4")
        assert dram.used == 0

    def test_reallocating_resizes(self):
        dram = DramModel(capacity=1 * GiB, bandwidth=gbps(12.8))
        dram.allocate("x", 100)
        dram.allocate("x", 200)
        assert dram.allocation("x") == 200
        assert dram.used == 200

    def test_overflow_rejected(self):
        dram = DramModel(capacity=1000, bandwidth=gbps(1))
        dram.allocate("a", 900)
        with pytest.raises(CapacityError):
            dram.allocate("b", 200)
        # Resizing an existing allocation accounts for its current share.
        dram.allocate("a", 1000)

    def test_negative_allocation_rejected(self):
        dram = DramModel(capacity=1000, bandwidth=gbps(1))
        with pytest.raises(CapacityError):
            dram.allocate("a", -1)

    def test_transfer_time(self):
        dram = DramModel(capacity=1 * GiB, bandwidth=gbps(12.8))
        assert dram.access_time(12_800_000) == pytest.approx(1e-3)

    def test_port_serializes(self):
        dram = DramModel(capacity=1 * GiB, bandwidth=gbps(1))
        end1 = dram.read(0.0, 1_000_000)
        end2 = dram.write(0.0, 1_000_000)
        assert end2 == pytest.approx(end1 + 1e-3)
        assert dram.bytes_read == 1_000_000
        assert dram.bytes_written == 1_000_000

    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            DramModel(capacity=0, bandwidth=gbps(1))
        with pytest.raises(SimulationError):
            DramModel(capacity=100, bandwidth=0)

    def test_reset_timing_keeps_allocations(self):
        dram = DramModel(capacity=1000, bandwidth=gbps(1))
        dram.allocate("a", 100)
        dram.read(0.0, 10)
        dram.reset_timing()
        assert dram.bytes_read == 0
        assert dram.allocation("a") == 100


class TestPingPongBuffer:
    def test_halves_alternate(self):
        buf = PingPongBuffer(capacity=8192)
        a = buf.begin_fill(100)
        b = buf.begin_fill(100)
        c = buf.begin_fill(100)
        assert a.index != b.index
        assert a.index == c.index

    def test_half_capacity(self):
        buf = PingPongBuffer(capacity=4 * MiB)
        assert buf.half_capacity == 2 * MiB
        assert buf.fits_tile(2 * MiB)
        assert not buf.fits_tile(2 * MiB + 1)

    def test_overflow_raises(self):
        buf = PingPongBuffer(capacity=8192)
        with pytest.raises(BufferOverflow):
            buf.begin_fill(5000)

    def test_handshake_ordering_enforced(self):
        buf = PingPongBuffer(capacity=8192)
        half = buf.begin_fill(100)
        buf.complete_fill(half, 1.0)
        with pytest.raises(SimulationError):
            buf.release(half, 0.5)  # consumed before fill done
        buf.release(half, 2.0)
        # Refill of the same half cannot complete before the release.
        buf.begin_fill(100)  # other half
        same = buf.begin_fill(100)
        assert same.index == half.index
        with pytest.raises(SimulationError):
            buf.complete_fill(same, 1.5)

    def test_earliest_fill_start_tracks_release(self):
        buf = PingPongBuffer(capacity=8192)
        a = buf.begin_fill(10)
        buf.complete_fill(a, 1.0)
        buf.release(a, 3.0)
        buf.begin_fill(10)  # half b
        assert buf.earliest_fill_start() == 3.0  # next is half a again

    def test_statistics(self):
        buf = PingPongBuffer(capacity=8192)
        buf.begin_fill(10)
        buf.begin_fill(500)
        assert buf.fills == 2
        assert buf.max_fill_bytes == 500

    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            PingPongBuffer(capacity=0)
        with pytest.raises(SimulationError):
            PingPongBuffer(capacity=4097)

    def test_negative_fill_rejected(self):
        buf = PingPongBuffer(capacity=8192)
        with pytest.raises(CapacityError):
            buf.begin_fill(-1)

    def test_reset(self):
        buf = PingPongBuffer(capacity=8192)
        buf.begin_fill(10)
        buf.reset()
        assert buf.fills == 0


class TestHostInterface:
    def test_directions_are_independent(self):
        host = HostInterface(bandwidth=gbps(1))
        down = host.send_to_device(0.0, 1_000_000)
        up = host.receive_from_device(0.0, 1_000_000)
        assert down == pytest.approx(1e-3)
        assert up == pytest.approx(1e-3)  # full duplex: no queueing across dirs

    def test_same_direction_serializes(self):
        host = HostInterface(bandwidth=gbps(1))
        host.send_to_device(0.0, 1_000_000)
        second = host.send_to_device(0.0, 1_000_000)
        assert second == pytest.approx(2e-3)

    def test_byte_counters(self):
        host = HostInterface(bandwidth=gbps(1))
        host.send_to_device(0.0, 10)
        host.receive_from_device(0.0, 20)
        assert host.bytes_down == 10
        assert host.bytes_up == 20

    def test_transfer_time_pure(self):
        host = HostInterface(bandwidth=gbps(3.2))
        assert host.transfer_time(3_200_000) == pytest.approx(1e-3)

    def test_invalid_bandwidth(self):
        with pytest.raises(SimulationError):
            HostInterface(bandwidth=0)

    def test_reset(self):
        host = HostInterface(bandwidth=gbps(1))
        host.send_to_device(0.0, 10)
        host.reset_timing()
        assert host.bytes_down == 0
