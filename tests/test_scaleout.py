"""Tests for multi-device scale-out (repro.core.scaleout)."""

import numpy as np
import pytest

from repro.config import ECSSDConfig
from repro.core.scaleout import (
    LabelShard,
    ScaleOutCluster,
    max_labels_per_device,
    merge_topk,
    partition_labels,
)
from repro.errors import CapacityError, ConfigurationError
from repro.units import GiB
from repro.workloads.benchmarks import get_benchmark

S100M = get_benchmark("XMLCNN-S100M")
S500M = S100M.scaled(500_000_000, "S500M")


class TestShards:
    def test_shard_validation(self):
        with pytest.raises(ConfigurationError):
            LabelShard(0, 10, 10)
        with pytest.raises(ConfigurationError):
            LabelShard(0, -1, 5)

    def test_max_labels_per_device(self):
        limit = max_labels_per_device(S100M)
        # 16 GiB minus reserve over 128 B/label: ~132M.
        assert 120e6 < limit < 140e6

    def test_small_dram_lowers_limit(self):
        small = ECSSDConfig().with_dram_capacity(8 * GiB)
        assert max_labels_per_device(S100M, small) < max_labels_per_device(S100M)


class TestPartition:
    def test_covers_label_space_exactly(self):
        shards = partition_labels(S500M)
        assert shards[0].start == 0
        assert shards[-1].stop == S500M.num_labels
        for a, b in zip(shards, shards[1:]):
            assert a.stop == b.start

    def test_shards_nearly_equal(self):
        shards = partition_labels(S500M)
        sizes = [s.num_labels for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_minimum_feasible_count(self):
        shards = partition_labels(S500M)
        limit = max_labels_per_device(S500M)
        assert len(shards) == -(-S500M.num_labels // limit)
        assert all(s.num_labels <= limit for s in shards)

    def test_explicit_count_honored(self):
        shards = partition_labels(S500M, devices=5)  # paper's plan
        assert len(shards) == 5

    def test_insufficient_count_rejected(self):
        with pytest.raises(CapacityError):
            partition_labels(S500M, devices=2)

    def test_single_device_for_small_models(self):
        shards = partition_labels(get_benchmark("GNMT-E32K"))
        assert len(shards) == 1


class TestCluster:
    def test_cluster_runs_and_reports(self):
        cluster = ScaleOutCluster(S500M, devices=5)
        report = cluster.run_trace(queries=8, sample_tiles=3)
        assert report.devices == 5
        assert report.total_time > 0
        assert report.merge_time < 1e-3
        assert 0 <= report.slowest_shard < 5

    def test_total_is_parallel_max_plus_merge(self):
        cluster = ScaleOutCluster(S500M, devices=5)
        report = cluster.run_trace(queries=8, sample_tiles=3)
        slowest = max(r.scaled_total_time for r in report.shard_reports)
        assert report.total_time == pytest.approx(slowest + report.merge_time)

    def test_scale_out_faster_than_hypothetical_serial(self):
        cluster = ScaleOutCluster(S500M, devices=5)
        report = cluster.run_trace(queries=8, sample_tiles=3)
        serial = sum(r.scaled_total_time for r in report.shard_reports)
        assert report.total_time < serial / 2


class TestMergeTopk:
    def test_exact_global_topk(self):
        rng = np.random.default_rng(0)
        # Two shards of 100 labels each; per-shard local top-3.
        full_scores = rng.normal(size=(4, 200)).astype(np.float32)
        shard_scores, shard_labels, offsets = [], [], [0, 100]
        for start in (0, 100):
            local = full_scores[:, start : start + 100]
            top = np.argsort(local, axis=1)[:, ::-1][:, :3]
            shard_labels.append(top)
            shard_scores.append(np.take_along_axis(local, top, axis=1))
        labels, scores = merge_topk(shard_labels, shard_scores, offsets, top_k=3)
        expected = np.argsort(full_scores, axis=1)[:, ::-1][:, :3]
        np.testing.assert_array_equal(labels, expected)

    def test_scores_descending(self):
        labels = [np.array([[0, 1]]), np.array([[0, 1]])]
        scores = [np.array([[5.0, 1.0]]), np.array([[3.0, 2.0]])]
        merged_labels, merged_scores = merge_topk(labels, scores, [0, 10], top_k=3)
        assert list(merged_scores[0]) == sorted(merged_scores[0], reverse=True)
        np.testing.assert_array_equal(merged_labels[0], [0, 10, 11])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            merge_topk([], [], [], top_k=1)
        with pytest.raises(ConfigurationError):
            merge_topk([np.zeros((1, 1))], [], [0], top_k=1)

    def test_ties_break_on_label_id(self):
        # Equal scores across shards: the lower *global* label id must win,
        # regardless of which shard contributed it.
        labels = [np.array([[4, 2]]), np.array([[1, 3]])]
        scores = [np.array([[7.0, 7.0]]), np.array([[7.0, 7.0]])]
        merged_labels, merged_scores = merge_topk(labels, scores, [0, 10], top_k=3)
        np.testing.assert_array_equal(merged_labels[0], [2, 4, 11])
        np.testing.assert_array_equal(merged_scores[0], [7.0, 7.0, 7.0])

    def test_merge_is_shard_order_independent(self):
        rng = np.random.default_rng(1)
        # Quantized scores force plenty of exact ties across shards.
        a_scores = np.round(rng.normal(size=(3, 5)) * 2) / 2
        b_scores = np.round(rng.normal(size=(3, 5)) * 2) / 2
        a_labels = np.tile(np.arange(5), (3, 1))
        b_labels = np.tile(np.arange(5), (3, 1))
        fwd = merge_topk([a_labels, b_labels], [a_scores, b_scores], [0, 5], top_k=4)
        rev = merge_topk([b_labels, a_labels], [b_scores, a_scores], [5, 0], top_k=4)
        np.testing.assert_array_equal(fwd[0], rev[0])
        np.testing.assert_array_equal(fwd[1], rev[1])
