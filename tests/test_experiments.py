"""Smoke + shape tests for the per-figure experiment drivers.

Full-scale reproductions run in ``benchmarks/``; here each driver runs on a
reduced workload and its *qualitative* paper properties are asserted: who
wins, monotonicity, and rough factors.
"""

import numpy as np
import pytest

from repro.analysis import experiments as exp


@pytest.fixture(scope="module")
def fig8():
    return exp.fig8_breakdown(
        benchmarks=("GNMT-E32K",), queries=16, sample_tiles=6
    )


class TestFig8:
    def test_five_steps(self, fig8):
        assert len(fig8) == 5
        assert fig8[0].speedup_vs_baseline == pytest.approx(1.0)

    def test_speedups_monotone(self, fig8):
        speedups = [s.speedup_vs_baseline for s in fig8]
        assert speedups == sorted(speedups)

    def test_final_speedup_near_paper(self, fig8):
        """Paper: 10.5x end-to-end; demand the right ballpark."""
        assert 6.0 <= fig8[-1].speedup_vs_baseline <= 16.0

    def test_baseline_utilization_under_10pct(self, fig8):
        assert fig8[0].fp32_utilization < 0.12

    def test_final_utilization_high(self, fig8):
        """Paper: 94.7%; demand >= 85%."""
        assert fig8[-1].fp32_utilization >= 0.85

    def test_utilization_monotone(self, fig8):
        utils = [s.fp32_utilization for s in fig8]
        assert utils == sorted(utils)


class TestFig9:
    def test_matches_paper_ratios(self):
        rows = exp.fig9_mac_comparison()
        by_design = {r.design: r for r in rows}
        for row in rows:
            assert row.area_ratio == pytest.approx(row.paper_area_ratio, rel=0.02)
            assert row.power_ratio == pytest.approx(row.paper_power_ratio, rel=0.02)
        assert by_design["alignment_free"].area_ratio == 1.0


class TestFig10:
    @pytest.fixture(scope="class")
    def points(self):
        return exp.fig10_hetero_layout(queries=16, sample_tiles=5)

    def test_hetero_always_wins(self, points):
        assert all(p.speedup > 1.0 for p in points)

    def test_low_ratio_benefits_most(self, points):
        """Paper: 1.73x at 5%, decreasing with ratio."""
        speedups = [p.speedup for p in points]
        assert speedups[0] == max(speedups)

    def test_average_speedup_ballpark(self, points):
        avg = float(np.mean([p.speedup for p in points]))
        assert 1.1 <= avg <= 2.2  # paper: 1.43x


class TestFig11:
    def test_learned_more_balanced_than_uniform(self):
        uniform, learned = exp.fig11_access_pattern()
        assert learned.balance > uniform.balance
        assert learned.balance > 0.8

    def test_same_total_pages(self):
        uniform, learned = exp.fig11_access_pattern()
        assert uniform.pages_per_channel.sum() == learned.pages_per_channel.sum()


class TestFig12:
    @pytest.fixture(scope="class")
    def results(self):
        return exp.fig12_interleaving(
            benchmarks=("GNMT-E32K", "Transformer-W268K"), queries=16, sample_tiles=5
        )

    def test_ordering_on_every_benchmark(self, results):
        for r in results:
            assert r.times["learned"] < r.times["uniform"] < r.times["sequential"]

    def test_ratios_ballpark(self, results):
        """Paper: learned beats uniform ~1.43x and sequential ~7.57x."""
        lu = np.mean([r.speedup("uniform", "learned") for r in results])
        ls = np.mean([r.speedup("sequential", "learned") for r in results])
        assert 1.1 <= lu <= 2.0
        assert 4.0 <= ls <= 12.0


class TestFig13:
    @pytest.fixture(scope="class")
    def results(self):
        return exp.fig13_end_to_end(
            benchmarks=("XMLCNN-S10M",), queries=8, sample_tiles=5
        )

    def test_ecssd_first_and_fastest(self, results):
        assert results[0].architecture == "ECSSD"
        assert all(r.mean_slowdown_vs_ecssd >= 1.0 for r in results)

    def test_paper_ordering(self, results):
        slowdowns = [r.mean_slowdown_vs_ecssd for r in results[1:]]
        assert slowdowns == sorted(slowdowns, reverse=True)

    def test_factors_within_2x_of_paper(self, results):
        for r in results[1:]:
            assert r.paper_slowdown is not None
            ratio = r.mean_slowdown_vs_ecssd / r.paper_slowdown
            assert 0.5 <= ratio <= 2.0


class TestSec71:
    def test_scalability_points(self):
        points = exp.sec71_scalability()
        by_gib = {p.dram_capacity_gib: p for p in points}
        # Paper names the supported scenarios 50M / 100M / 200M: each DRAM
        # size must hold its scenario but not the next one up.
        assert 50 <= by_gib[8].max_categories_millions < 100
        assert 100 <= by_gib[16].max_categories_millions < 200
        assert 200 <= by_gib[32].max_categories_millions < 400

    def test_scale_out_500m(self):
        plan = exp.sec71_scale_out()
        assert plan.devices_needed == 5  # paper: 5 ECSSDs
        assert plan.int4_total_gib == pytest.approx(59.6, rel=0.1)  # "64 GB"
        assert plan.fp32_total_tib == pytest.approx(1.86, rel=0.1)  # "2 TB"
