"""Tests for INT4 screening and threshold filtering (repro.screening.screener)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.screening.quantization import Int4Quantizer
from repro.screening.screener import Int4Screener


def make_screener(num_labels=100, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(num_labels, dim)).astype(np.float32)
    return Int4Screener(Int4Quantizer().quantize(weights)), weights


class TestScores:
    def test_shape(self):
        screener, _ = make_screener()
        scores = screener.scores(np.ones((4, 16), dtype=np.float32))
        assert scores.shape == (4, 100)

    def test_single_vector_promoted(self):
        screener, _ = make_screener()
        assert screener.scores(np.ones(16, dtype=np.float32)).shape == (1, 100)

    def test_scores_track_exact_inner_products(self):
        screener, weights = make_screener(seed=3)
        rng = np.random.default_rng(1)
        features = rng.normal(size=(8, 16)).astype(np.float32)
        exact = features @ weights.T
        approx = screener.scores(features)
        for row_e, row_a in zip(exact, approx):
            assert np.corrcoef(row_e, row_a)[0, 1] > 0.95

    def test_dim_mismatch_rejected(self):
        screener, _ = make_screener()
        with pytest.raises(WorkloadError):
            screener.scores(np.ones((2, 8)))

    def test_integer_arithmetic_consistency(self):
        """Scores equal the dequantized matrices' float product exactly."""
        screener, _ = make_screener(num_labels=20, dim=8)
        rng = np.random.default_rng(2)
        features = rng.normal(size=(3, 8)).astype(np.float32)
        fq = Int4Quantizer().quantize(features)
        manual = fq.dequantize() @ screener.weights.dequantize().T
        np.testing.assert_allclose(screener.scores(features), manual, rtol=1e-5)


class TestScreen:
    def test_no_threshold_keeps_everything(self):
        screener, _ = make_screener()
        result = screener.screen(np.ones((2, 16), dtype=np.float32))
        assert result.candidate_ratio() == 1.0

    def test_high_threshold_keeps_minimum(self):
        screener, _ = make_screener()
        result = screener.screen(
            np.ones((2, 16), dtype=np.float32), threshold=1e9, min_candidates=3
        )
        assert all(len(c) == 3 for c in result.candidates)

    def test_threshold_is_semantically_applied(self):
        screener, _ = make_screener()
        features = np.random.default_rng(0).normal(size=(4, 16)).astype(np.float32)
        scores = screener.scores(features)
        cutoff = float(np.quantile(scores, 0.9))
        result = screener.screen(features, threshold=cutoff)
        for row, selected in zip(scores, result.candidates):
            expected = np.flatnonzero(row >= cutoff)
            if len(expected) >= 1:
                np.testing.assert_array_equal(selected, expected)

    def test_per_query_thresholds(self):
        screener, _ = make_screener()
        features = np.random.default_rng(0).normal(size=(2, 16)).astype(np.float32)
        loose_tight = np.array([-1e9, 1e9], dtype=np.float32)
        result = screener.screen(features, threshold=loose_tight)
        assert len(result.candidates[0]) == 100
        assert len(result.candidates[1]) == 1  # min_candidates fallback

    def test_candidates_sorted_unique(self):
        screener, _ = make_screener()
        features = np.random.default_rng(5).normal(size=(3, 16)).astype(np.float32)
        result = screener.screen(features, threshold=0.0)
        for selected in result.candidates:
            assert (np.diff(selected) > 0).all()

    def test_candidate_counts(self):
        screener, _ = make_screener()
        result = screener.screen(np.ones((2, 16), dtype=np.float32), threshold=1e9)
        np.testing.assert_array_equal(result.candidate_counts(), [1, 1])


class TestTopRatio:
    def test_exact_ratio(self):
        screener, _ = make_screener(num_labels=200)
        features = np.random.default_rng(0).normal(size=(4, 16)).astype(np.float32)
        result = screener.screen_top_ratio(features, 0.10)
        assert all(len(c) == 20 for c in result.candidates)
        assert result.candidate_ratio() == pytest.approx(0.10)

    def test_selected_are_the_top_scores(self):
        screener, _ = make_screener(num_labels=50)
        features = np.random.default_rng(1).normal(size=(2, 16)).astype(np.float32)
        result = screener.screen_top_ratio(features, 0.2)
        for row, selected in zip(result.scores, result.candidates):
            cutoff = np.sort(row)[-10]
            assert (row[selected] >= cutoff).all()

    def test_ratio_bounds(self):
        screener, _ = make_screener()
        with pytest.raises(WorkloadError):
            screener.screen_top_ratio(np.ones((1, 16)), 0.0)
        with pytest.raises(WorkloadError):
            screener.screen_top_ratio(np.ones((1, 16)), 1.5)

    def test_full_ratio_keeps_all(self):
        screener, _ = make_screener(num_labels=30)
        result = screener.screen_top_ratio(np.ones((1, 16), dtype=np.float32), 1.0)
        assert len(result.candidates[0]) == 30
