"""Tests for the heterogeneous/homogeneous layout bookkeeping (§4.3, §7.1)."""

import pytest

from repro.errors import CapacityError
from repro.layout.heterogeneous import (
    DataLocation,
    WeightLayout,
    heterogeneous_layout,
    homogeneous_layout,
)
from repro.units import GiB
from repro.workloads.benchmarks import get_benchmark


class TestConstructors:
    def test_heterogeneous_puts_int4_in_dram(self):
        layout = heterogeneous_layout(100, 1000)
        assert layout.int4_location is DataLocation.DRAM
        assert layout.fp32_location is DataLocation.FLASH
        assert layout.is_heterogeneous

    def test_homogeneous_puts_everything_in_flash(self):
        layout = homogeneous_layout(100, 1000)
        assert layout.int4_location is DataLocation.FLASH
        assert not layout.is_heterogeneous

    def test_flash_bytes(self):
        assert heterogeneous_layout(100, 1000).flash_bytes() == 1000
        assert homogeneous_layout(100, 1000).flash_bytes() == 1100


class TestDramCapacity:
    def test_fits(self):
        layout = heterogeneous_layout(8 * GiB, 100 * GiB)
        layout.check_dram_capacity(16 * GiB)  # no raise

    def test_reserved_counts(self):
        layout = heterogeneous_layout(15 * GiB, 0)
        layout.check_dram_capacity(16 * GiB, reserved=GiB)  # exactly fits
        with pytest.raises(CapacityError):
            layout.check_dram_capacity(16 * GiB, reserved=2 * GiB)

    def test_homogeneous_needs_no_dram(self):
        layout = homogeneous_layout(100 * GiB, 400 * GiB)
        layout.check_dram_capacity(1)  # no raise: nothing DRAM-resident

    def test_overflow_raises(self):
        layout = heterogeneous_layout(20 * GiB, 0)
        with pytest.raises(CapacityError):
            layout.check_dram_capacity(16 * GiB)

    def test_fp32_in_dram_counted(self):
        layout = WeightLayout(
            int4_location=DataLocation.DRAM,
            fp32_location=DataLocation.DRAM,
            int4_bytes=GiB,
            fp32_bytes=20 * GiB,
        )
        with pytest.raises(CapacityError):
            layout.check_dram_capacity(16 * GiB)


class TestPaperScenarios:
    def test_s100m_int4_fits_16gib_dram(self):
        """§7.1: the 12.8 GB S100M screener matrix fits 16 GiB DRAM."""
        spec = get_benchmark("XMLCNN-S100M")
        layout = heterogeneous_layout(spec.int4_matrix_bytes, spec.fp32_matrix_bytes)
        layout.check_dram_capacity(16 * GiB, reserved=256 * 1024 * 1024)

    def test_s100m_int4_busts_8gib_dram(self):
        """§7.1: 8 GiB DRAM caps deployments around 50M categories."""
        spec = get_benchmark("XMLCNN-S100M")
        layout = heterogeneous_layout(spec.int4_matrix_bytes, spec.fp32_matrix_bytes)
        with pytest.raises(CapacityError):
            layout.check_dram_capacity(8 * GiB)

    def test_s50m_fits_8gib(self):
        spec = get_benchmark("XMLCNN-S50M")
        layout = heterogeneous_layout(spec.int4_matrix_bytes, spec.fp32_matrix_bytes)
        layout.check_dram_capacity(8 * GiB, reserved=256 * 1024 * 1024)
