"""Tests for streaming top-k, backend validation, and the CLI."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.validation import ValidationReport, ValidationRow, cross_validate
from repro.cli import main
from repro.errors import WorkloadError
from repro.screening.topk import StreamingTopK, offline_topk


class TestStreamingTopK:
    def test_matches_offline_reference(self):
        rng = np.random.default_rng(0)
        batch, n, k = 4, 200, 5
        scores = rng.normal(size=(batch, n))
        labels = np.tile(np.arange(n), (batch, 1))
        merger = StreamingTopK(batch, k)
        # Feed in three arbitrary tiles.
        for start, stop in ((0, 70), (70, 150), (150, 200)):
            merger.update_tile(
                [labels[q, start:stop] for q in range(batch)],
                [scores[q, start:stop] for q in range(batch)],
            )
        got_labels, got_scores = merger.results()
        want_labels, want_scores = offline_topk(labels, scores, k)
        np.testing.assert_array_equal(got_labels, want_labels)
        np.testing.assert_allclose(got_scores, want_scores)

    def test_threshold_tightens(self):
        merger = StreamingTopK(batch=1, k=2)
        assert merger.threshold(0) == float("-inf")
        merger.update(0, np.array([1, 2]), np.array([5.0, 3.0]))
        assert merger.threshold(0) == 3.0
        merger.update(0, np.array([3]), np.array([4.0]))
        assert merger.threshold(0) == 4.0

    def test_padding_when_fewer_than_k(self):
        merger = StreamingTopK(batch=1, k=5)
        merger.update(0, np.array([9]), np.array([1.0]))
        labels, scores = merger.results()
        assert labels[0, 0] == 9
        assert (labels[0, 1:] == -1).all()
        assert np.isneginf(scores[0, 1:]).all()

    def test_buffer_accounting(self):
        merger = StreamingTopK(batch=8, k=5)
        assert merger.buffer_bytes == 8 * 5 * 8
        assert merger.fits_output_buffer(1024)
        big = StreamingTopK(batch=64, k=16)
        assert not big.fits_output_buffer(1024)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            StreamingTopK(0, 5)
        with pytest.raises(WorkloadError):
            StreamingTopK(4, 0)
        merger = StreamingTopK(2, 3)
        with pytest.raises(WorkloadError):
            merger.update(5, np.array([0]), np.array([1.0]))
        with pytest.raises(WorkloadError):
            merger.update(0, np.array([0, 1]), np.array([1.0]))
        with pytest.raises(WorkloadError):
            merger.update_tile([np.array([0])], [np.array([1.0])])

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_streaming_equals_offline_property(self, seed):
        """Invariant: any tiling of the score stream yields the exact
        offline top-k (ties broken by label, matching the reference)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 120))
        k = int(rng.integers(1, 8))
        scores = np.round(rng.normal(size=(2, n)), 2)  # force some ties
        labels = np.tile(np.arange(n), (2, 1))
        cuts = np.sort(rng.choice(np.arange(1, n), size=min(3, n - 1), replace=False))
        merger = StreamingTopK(2, k)
        prev = 0
        for cut in list(cuts) + [n]:
            merger.update_tile(
                [labels[q, prev:cut] for q in range(2)],
                [scores[q, prev:cut] for q in range(2)],
            )
            prev = cut
        got_labels, got_scores = merger.results()
        want_labels, want_scores = offline_topk(labels, scores, k)
        np.testing.assert_allclose(got_scores, want_scores)
        np.testing.assert_array_equal(got_labels, want_labels)


class TestOfflineTopk:
    def test_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            offline_topk(np.zeros((1, 3)), np.zeros((1, 4)), 2)

    def test_k_larger_than_n(self):
        labels, scores = offline_topk(
            np.array([[7, 8]]), np.array([[1.0, 2.0]]), k=5
        )
        assert labels[0, 0] == 8
        assert (labels[0, 2:] == -1).all()


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def report(self):
        return cross_validate(tile_vectors=1024, tiles=2)

    def test_rows_for_both_strategies(self, report):
        assert {r.strategy for r in report.rows} == {"uniform", "learned"}

    def test_ordering_agrees(self, report):
        assert report.ordering_agrees()

    def test_within_envelope(self, report):
        assert report.within_envelope()

    def test_ratio_math(self):
        row = ValidationRow("x", analytic_flash=1.0, event_flash=1.5)
        assert row.ratio == 1.5
        assert ValidationRow("y", 0.0, 1.0).ratio == float("inf")

    def test_report_helpers(self):
        rows = [ValidationRow("a", 1.0, 1.1), ValidationRow("b", 2.0, 5.0)]
        report = ValidationReport(rows=rows)
        assert report.ordering_agrees()
        assert not report.within_envelope()


class TestCli:
    def test_benchmarks_command(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "XMLCNN-S100M" in out

    def test_quickstart_command(self, capsys):
        assert main(["quickstart", "--labels", "1024"]) == 0
        out = capsys.readouterr().out
        assert "top-1 agreement" in out

    def test_figure_fig9(self, capsys):
        assert main(["figure", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "alignment_free" in out

    def test_figure_fig11(self, capsys):
        assert main(["figure", "fig11"]) == 0
        assert "ch0" in capsys.readouterr().out

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "ordering agrees: True" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestReportCommand:
    def test_report_written_to_file(self, tmp_path, capsys):
        out = tmp_path / "REPORT.md"
        assert main(["report", "--output", str(out), "--queries", "8",
                     "--tiles", "3"]) == 0
        text = out.read_text()
        assert "# ECSSD reproduction report" in text
        assert "Fig. 8" in text and "Fig. 13" in text

    def test_report_to_stdout(self, capsys):
        assert main(["report", "--output", "-", "--queries", "8",
                     "--tiles", "3"]) == 0
        assert "reproduction report" in capsys.readouterr().out


class TestReportBuilder:
    def test_section_filtering(self):
        from repro.analysis.report_builder import build_report

        text = build_report(queries=8, sample_tiles=3, sections=["fig9"])
        assert "Fig. 9" in text
        assert "Fig. 12" not in text
