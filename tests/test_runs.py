"""Tests for run provenance and divergence detection (repro.obs.runs/digest)."""

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError, ObservabilityError
from repro.obs import (
    DIGEST_TRACK,
    DigestRecorder,
    RunManifest,
    RunRegistry,
    Tracer,
    compare_many,
    compare_runs,
    derive_run_id,
    diverge_digest_entries,
    diverge_runs,
    spans_in_window,
    state_digest,
)
from repro.obs.digest import canonical_json
from repro.obs.perfdiff import update_baseline
from repro.serve import (
    AffineServiceModel,
    ServingConfig,
    build_serving_stack,
    saturating_rate,
)
from repro.workloads.streams import poisson_arrivals


@pytest.fixture(autouse=True)
def _restore_globals():
    registry, tracer = obs.get_registry(), obs.get_tracer()
    yield
    obs.set_registry(registry)
    obs.set_tracer(tracer)


def _recorder_track(seed, steps=40, interval=8):
    recorder = DigestRecorder(interval=interval, label="t")
    for i in range(steps):
        recorder.tick(i * 0.1, counter=i * seed, depth=i % 3)
    return recorder


# --- digests -----------------------------------------------------------------------
class TestDigest:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1.5, None]}) == '{"a":[1.5,null],"b":1}'
        with pytest.raises(ConfigurationError):
            canonical_json({"x": object()})

    def test_state_digest_stable_and_sensitive(self):
        assert state_digest({"a": 1}) == state_digest({"a": 1})
        assert state_digest({"a": 1}) != state_digest({"a": 2})
        assert len(state_digest({})) == 16

    def test_recorder_interval_semantics(self):
        recorder = DigestRecorder(interval=4)
        entries = [recorder.tick(i * 0.1, n=i) for i in range(10)]
        captured = [e for e in entries if e is not None]
        assert len(captured) == 2  # ticks 4 and 8
        assert recorder.ticks == 10
        assert [e.index for e in recorder.entries] == [0, 1]
        assert recorder.entries[0].tick == 4

    def test_capture_emits_digest_track_instant(self):
        tracer = Tracer()
        obs.set_tracer(tracer)
        recorder = DigestRecorder(interval=1, label="lbl")
        entry = recorder.capture(0.5, n=1)
        instants = [s for s in tracer.spans if s.track == DIGEST_TRACK]
        assert len(instants) == 1
        assert instants[0].attrs["digest"] == entry.digest
        assert instants[0].sim_start == 0.5

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            DigestRecorder(interval=0)

    def test_entry_round_trip(self):
        entry = _recorder_track(1).entries[0]
        from repro.obs import DigestEntry

        assert DigestEntry.from_dict(entry.to_dict()) == entry


class TestDivergence:
    def test_identical_tracks_do_not_diverge(self):
        a, b = _recorder_track(3), _recorder_track(3)
        report = diverge_digest_entries(a.entries, b.entries)
        assert not report.diverged
        assert report.compared == len(a.entries) > 0
        assert "no divergence" in report.render()

    def test_perturbed_state_flagged_with_changed_keys(self):
        a, b = _recorder_track(3), _recorder_track(5)
        report = diverge_digest_entries(a.entries, b.entries, "runA", "runB")
        assert report.diverged
        divergence = report.divergence
        assert divergence.index == 0
        assert divergence.changed_keys == ["counter"]
        assert divergence.sim_time_a is not None
        rendered = report.render()
        assert "DIVERGED at digest #0" in rendered
        assert "counter" in rendered

    def test_length_mismatch_is_divergence(self):
        a, b = _recorder_track(3, steps=40), _recorder_track(3, steps=24)
        report = diverge_digest_entries(a.entries, b.entries)
        assert report.diverged
        assert report.divergence.index == len(b.entries)
        assert report.divergence.digest_b is None
        assert report.divergence.last_match_index == len(b.entries) - 1
        assert "runs differ in length" in report.render()

    def test_empty_tracks_compare_equal(self):
        assert not diverge_digest_entries([], []).diverged

    def test_spans_in_window_overlap(self):
        tracer = Tracer()
        tracer.add_span("before", 0.0, 1.0)
        tracer.add_span("inside", 2.0, 3.0)
        tracer.add_span("after", 9.0, 10.0)
        with tracer.span("wall-only"):
            pass
        names = [s.name for s in spans_in_window(tracer.spans, 1.5, 4.0)]
        assert names == ["inside"]
        assert len(spans_in_window(tracer.spans, None, None)) == 3


# --- manifests + registry ----------------------------------------------------------
class TestRunManifest:
    def test_run_id_pure_function_of_inputs(self):
        base = dict(config={"a": 1}, seed=7, workload={"kind": "w"})
        assert derive_run_id(**base) == derive_run_id(**base)
        assert derive_run_id(**base) != derive_run_id(
            config={"a": 2}, seed=7, workload={"kind": "w"}
        )
        assert derive_run_id(**base) != derive_run_id(
            config={"a": 1}, seed=8, workload={"kind": "w"}
        )
        assert derive_run_id(**base) != derive_run_id(
            config={"a": 1}, seed=7, workload={"kind": "w"}, version="other"
        )

    def test_build_save_load_round_trip(self, tmp_path):
        manifest = RunManifest.build(
            label="demo",
            seed=3,
            config={"x": 1.5},
            workload={"kind": "poisson"},
            metrics={"p99_ms": 4.0},
            digests=_recorder_track(2).entries,
        )
        path = str(tmp_path / "m.json")
        manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.digests == manifest.digests
        assert loaded.run_id == manifest.run_id

    def test_artifact_indexing(self, tmp_path):
        artifact = tmp_path / "out.json"
        artifact.write_text("{}\n", encoding="utf-8")
        manifest = RunManifest.build("a", 0, {}, {})
        entry = manifest.add_artifact("summary", str(artifact))
        assert len(entry["sha256"]) == 64
        with pytest.raises(ObservabilityError):
            manifest.add_artifact("gone", str(tmp_path / "missing.json"))

    def test_load_errors(self, tmp_path):
        with pytest.raises(ObservabilityError):
            RunManifest.load(str(tmp_path / "nope.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ObservabilityError):
            RunManifest.load(str(bad))


class TestRunRegistry:
    def _manifest(self, label="demo", seed=0):
        # label is part of the config here so differently-labelled runs get
        # distinct run IDs (label alone is display metadata, not identity).
        return RunManifest.build(
            label, seed, {"seed": seed, "label": label}, {"kind": "t"}
        )

    def test_register_list_get(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        a = self._manifest(seed=1)
        b = self._manifest(seed=2)
        registry.register(a)
        registry.register(b)
        assert registry.run_ids() == sorted([a.run_id, b.run_id])
        assert registry.get(a.run_id).seed == 1
        # Unambiguous prefix resolves; unknown raises with known ids listed.
        assert registry.get(a.run_id[:8]).run_id == a.run_id
        with pytest.raises(ObservabilityError, match="no run"):
            registry.get("ffffffff")

    def test_reregistering_identical_run_is_idempotent(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        registry.register(self._manifest())
        registry.register(self._manifest())
        assert len(registry.run_ids()) == 1

    def test_query_filters(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        registry.register(self._manifest(label="x", seed=1))
        registry.register(self._manifest(label="y", seed=1))
        registry.register(self._manifest(label="x", seed=2))
        assert len(registry.query(label="x")) == 2
        assert len(registry.query(seed=1)) == 2
        assert len(registry.query(label="x", seed=2)) == 1
        assert registry.query(label="z") == []


class TestCompareAndDiverge:
    def test_compare_runs_applies_tolerances(self):
        a = RunManifest.build("a", 0, {}, {}, metrics={"p99_ms": 10.0})
        b = RunManifest.build("b", 0, {}, {}, metrics={"p99_ms": 10.5})
        c = RunManifest.build("c", 0, {}, {}, metrics={"p99_ms": 20.0})
        assert compare_runs(a, b).ok  # within the 10% p99 band
        report = compare_runs(a, c)
        assert not report.ok
        assert report.regressions[0].key == "p99_ms"

    def test_compare_many_anchors_on_the_baseline(self):
        base = RunManifest.build("base", 0, {}, {}, metrics={"p99_ms": 10.0})
        ok = RunManifest.build("ok", 1, {}, {}, metrics={"p99_ms": 10.2})
        bad = RunManifest.build("bad", 2, {}, {}, metrics={"p99_ms": 30.0})
        empty = RunManifest.build("empty", 3, {}, {})
        results = compare_many(base, [ok, bad, empty])
        assert [m.run_id for m, _ in results] == [
            ok.run_id, bad.run_id, empty.run_id
        ]
        assert results[0][1].ok
        assert not results[1][1].ok
        # A run with no metrics still compares (flagged, not raised).
        missing = results[2][1]
        assert not missing.ok
        assert [e.candidate for e in missing.entries] == [None]

    def test_diverge_runs_uses_digest_tracks(self):
        a = RunManifest.build("a", 0, {}, {}, digests=_recorder_track(1).entries)
        b = RunManifest.build("b", 0, {}, {}, digests=_recorder_track(1).entries)
        c = RunManifest.build("c", 1, {}, {}, digests=_recorder_track(9).entries)
        assert not diverge_runs(a, b).diverged
        report = diverge_runs(a, c)
        assert report.diverged
        assert report.run_a == a.run_id


# --- serving integration -----------------------------------------------------------
class TestServingDigests:
    def _run(self, seed, interval=64):
        service = AffineServiceModel(
            base=2.0e-4, per_query=2.0e-5, knee=32, candidate_fraction=0.7
        )
        config = ServingConfig(slo=0.02, shards=2, replicas=1)
        recorder = DigestRecorder(interval=interval, label="serve")
        simulator = build_serving_stack(
            service, config, digest_recorder=recorder
        )
        rate = 1.2 * saturating_rate(service, config)
        arrivals = poisson_arrivals(rate, 2_000, seed=seed)
        report = simulator.run(arrivals)
        return recorder, report

    def test_same_seed_runs_are_digest_identical(self):
        recorder_a, _ = self._run(seed=5)
        recorder_b, _ = self._run(seed=5)
        assert len(recorder_a.entries) > 2
        report = diverge_digest_entries(recorder_a.entries, recorder_b.entries)
        assert not report.diverged

    def test_perturbed_seed_diverges_with_sim_time(self):
        recorder_a, _ = self._run(seed=5)
        recorder_b, _ = self._run(seed=6)
        report = diverge_digest_entries(recorder_a.entries, recorder_b.entries)
        assert report.diverged
        divergence = report.divergence
        # The report names the first mismatched digest and its sim time.
        assert divergence.sim_time_a is not None or divergence.sim_time_b is not None
        assert divergence.digest_a != divergence.digest_b

    def test_final_capture_always_present(self):
        recorder, report = self._run(seed=5, interval=10**9)
        # Interval never fires, but the end-of-run capture still lands.
        assert len(recorder.entries) == 1
        assert recorder.entries[0].state["completed"] == report.admitted


# --- fault-harness integration -----------------------------------------------------
class TestFaultDigests:
    def _matrix(self, seed):
        from repro.faults.harness import run_fault_matrix

        recorder = DigestRecorder(label="faults")
        run_fault_matrix(
            num_labels=256,
            num_queries=4,
            seed=seed,
            rber_scales=(5.0,),
            fault_classes=("rber",),
            digest_recorder=recorder,
        )
        return recorder

    def test_fault_matrix_digests_replayable_and_seed_sensitive(self):
        a, b, c = self._matrix(0), self._matrix(0), self._matrix(1)
        assert len(a.entries) == 1  # one capture per matrix cell
        assert not diverge_digest_entries(a.entries, b.entries).diverged
        assert diverge_digest_entries(a.entries, c.entries).diverged


# --- perf-diff baseline update -----------------------------------------------------
class TestUpdateBaseline:
    def test_rewrites_baseline_and_records_manifest(self, tmp_path):
        baseline = tmp_path / "BENCH.json"
        candidate = tmp_path / "cand.json"
        baseline.write_text('{"goodput_qps": 100}\n', encoding="utf-8")
        candidate.write_text('{"goodput_qps":  90}\n', encoding="utf-8")
        run_dir = str(tmp_path / "runs")
        manifest_path = update_baseline(
            str(baseline), str(candidate), run_dir=run_dir
        )
        assert json.loads(baseline.read_text()) == {"goodput_qps": 90}
        manifest = RunManifest.load(manifest_path)
        assert manifest.label == "perf-baseline-update"
        assert manifest.metrics["old"]["goodput_qps"] == 100.0
        assert manifest.metrics["new"]["goodput_qps"] == 90.0
        assert "baseline" in manifest.artifacts

    def test_no_run_dir_returns_none(self, tmp_path):
        baseline = tmp_path / "b.json"
        candidate = tmp_path / "c.json"
        candidate.write_text("{}\n", encoding="utf-8")
        assert update_baseline(str(baseline), str(candidate)) is None
        assert baseline.exists()


# --- CLI ---------------------------------------------------------------------------
class TestRunsCli:
    def test_serve_run_dir_then_list_show_diverge(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = str(tmp_path / "runs")
        argv = [
            "serve", "--duration", "0.05", "--seed", "3", "--tiles", "2",
            "--run-dir", run_dir,
        ]
        assert main(argv) == 0
        assert main(argv) == 0  # identical run: same id, idempotent register
        registry = RunRegistry(run_dir)
        ids = registry.run_ids()
        assert len(ids) == 1
        capsys.readouterr()

        assert main(["runs", "--run-dir", run_dir, "list"]) == 0
        assert ids[0] in capsys.readouterr().out

        assert main(["runs", "--run-dir", run_dir, "show", ids[0][:8]]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == ids[0]

        # Self-divergence of a deterministic run is zero (exit 0).
        assert main(
            ["runs", "--run-dir", run_dir, "diverge", ids[0], ids[0]]
        ) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_diverge_exit_code_on_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(str(tmp_path / "runs"))
        a = RunManifest.build("a", 0, {}, {}, digests=_recorder_track(1).entries)
        b = RunManifest.build("b", 1, {}, {}, digests=_recorder_track(4).entries)
        registry.register(a)
        registry.register(b)
        code = main(
            ["runs", "--run-dir", registry.root, "diverge", a.run_id, b.run_id]
        )
        assert code == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_compare_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(str(tmp_path / "runs"))
        a = RunManifest.build("a", 0, {}, {}, metrics={"goodput_qps": 100.0})
        b = RunManifest.build("b", 1, {}, {}, metrics={"goodput_qps": 10.0})
        registry.register(a)
        registry.register(b)
        assert main(
            ["runs", "--run-dir", registry.root, "compare", a.run_id, a.run_id]
        ) == 0
        capsys.readouterr()
        assert main(
            ["runs", "--run-dir", registry.root, "compare", a.run_id, b.run_id]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_subcommand_n_way(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(str(tmp_path / "runs"))
        base = RunManifest.build("base", 0, {}, {}, metrics={"p99_ms": 10.0})
        ok = RunManifest.build("ok", 1, {}, {}, metrics={"p99_ms": 10.1})
        bad = RunManifest.build("bad", 2, {}, {}, metrics={"p99_ms": 40.0})
        for manifest in (base, ok, bad):
            registry.register(manifest)
        code = main([
            "runs", "--run-dir", registry.root, "compare",
            base.run_id, ok.run_id, bad.run_id,
        ])
        out = capsys.readouterr().out
        assert code == 1  # worst candidate wins the exit code
        assert out.count("==") >= 2  # per-candidate headers
        assert "REGRESSION" in out

    def test_compare_subcommand_missing_ok(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(str(tmp_path / "runs"))
        base = RunManifest.build("base", 0, {}, {}, metrics={"p99_ms": 10.0})
        ok = RunManifest.build("ok", 1, {}, {}, metrics={"p99_ms": 10.1})
        registry.register(base)
        registry.register(ok)
        with pytest.raises(ObservabilityError):
            main([
                "runs", "--run-dir", registry.root, "compare",
                base.run_id, "absent-run",
            ])
        code = main([
            "runs", "--run-dir", registry.root, "compare",
            base.run_id, "absent-run", ok.run_id, "--missing-ok",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "skipping absent-run" in out

    def test_compare_subcommand_all_missing_candidates(self, tmp_path, capsys):
        from repro.cli import main

        registry = RunRegistry(str(tmp_path / "runs"))
        base = RunManifest.build("base", 0, {}, {}, metrics={"p99_ms": 10.0})
        registry.register(base)
        code = main([
            "runs", "--run-dir", registry.root, "compare",
            base.run_id, "absent-run", "--missing-ok",
        ])
        assert code == 0
        assert "at least one comparable run" in capsys.readouterr().out
