"""Tests for the channel command scheduler (repro.ssd.scheduler)."""

import numpy as np
import pytest

from repro.config import FlashConfig
from repro.ssd.channel import Channel
from repro.ssd.controller import CommandKind, FlashCommand, FlashController
from repro.ssd.geometry import FlashGeometry, PhysicalAddress
from repro.ssd.scheduler import (
    ScheduledController,
    SchedulingPolicy,
    compare_policies,
    reorder_round_robin,
)
from repro.units import us


def config() -> FlashConfig:
    return FlashConfig(
        channels=1,
        packages_per_channel=4,
        dies_per_package=2,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=16,
        read_latency=us(30),
    )


def read(pkg, die, page=0, block=0):
    return FlashCommand(CommandKind.READ, PhysicalAddress(0, pkg, die, 0, block, page))


def make_controller() -> FlashController:
    cfg = config()
    return FlashController(Channel(0, cfg), FlashGeometry(cfg), command_overhead=0.0)


class TestReorder:
    def test_round_robin_interleaves_dies(self):
        commands = [read(0, 0, page=p) for p in range(3)] + [read(1, 0), read(2, 0)]
        die_of = {0: 0, 1: 0, 2: 0, 3: 2, 4: 4}
        out = reorder_round_robin(commands, die_of)
        # First three issued commands hit three distinct dies.
        first_dies = [(c.address.package, c.address.die) for c in out[:3]]
        assert len(set(first_dies)) == 3

    def test_within_die_order_preserved(self):
        commands = [read(0, 0, page=p) for p in (5, 1, 9)]
        die_of = {0: 0, 1: 0, 2: 0}
        out = reorder_round_robin(commands, die_of)
        assert [c.address.page for c in out] == [5, 1, 9]

    def test_all_commands_kept(self):
        rng = np.random.default_rng(0)
        commands = [read(int(rng.integers(0, 4)), int(rng.integers(0, 2)),
                         page=int(i)) for i in range(20)]
        die_of = {i: c.address.package * 2 + c.address.die
                  for i, c in enumerate(commands)}
        out = reorder_round_robin(commands, die_of)
        assert sorted(c.address.page for c in out) == list(range(20))


class TestScheduledController:
    def test_fifo_equals_plain_controller(self):
        commands = [read(0, 0, page=p) for p in range(4)]
        plain = make_controller().submit(0.0, commands)
        fifo = ScheduledController(
            make_controller(), policy=SchedulingPolicy.FIFO
        ).submit(0.0, commands)
        assert fifo.finish == pytest.approx(plain.finish)

    def test_round_robin_beats_fifo_on_skewed_batches(self):
        # 6 reads on die (0,0), then 1 each on two other dies: FIFO leaves
        # the other dies idle until the end; round-robin overlaps senses.
        commands = [read(0, 0, page=p) for p in range(6)] + [read(1, 0), read(2, 0)]
        results = compare_policies(make_controller, commands)
        assert results["die_round_robin"] < results["fifo"]

    def test_policies_equal_on_balanced_batches(self):
        commands = [read(pkg, die) for pkg in range(4) for die in range(2)]
        results = compare_policies(make_controller, commands)
        assert results["die_round_robin"] == pytest.approx(results["fifo"], rel=0.05)

    def test_single_command_passthrough(self):
        ctrl = ScheduledController(make_controller())
        result = ctrl.submit(0.0, [read(0, 0)])
        assert result.commands == 1

    def test_channel_accessor(self):
        ctrl = ScheduledController(make_controller())
        assert ctrl.channel.index == 0


class TestSchedulerStudyDriver:
    def test_study_returns_both_policies(self):
        from repro.analysis.ablations import scheduler_study

        results = scheduler_study(pages=24)
        policies = {r.policy for r in results}
        assert policies == {"fifo", "die_round_robin"}
        by_policy = {r.policy: r.makespan for r in results}
        assert by_policy["die_round_robin"] <= by_policy["fifo"]
