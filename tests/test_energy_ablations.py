"""Tests for the energy model and the ablation drivers."""

import numpy as np
import pytest

from repro.analysis import ablations as A
from repro.analysis.energy import (
    DEVICE_POWER_W,
    EnergyPoint,
    baseline_energy,
    ecssd_energy,
    efficiency_table,
)
from repro.baselines import CPU_N, SMARTSSD_AP
from repro.errors import ConfigurationError
from repro.workloads.benchmarks import get_benchmark

SPEC = get_benchmark("XMLCNN-S10M")


class TestEnergyModel:
    def test_energy_is_power_times_time(self):
        point = EnergyPoint("x", "b", time_seconds=2.0, power_watts=10.0)
        assert point.energy_joules == 20.0

    def test_ratio(self):
        a = EnergyPoint("a", "b", 1.0, 10.0)
        b = EnergyPoint("b", "b", 1.0, 20.0)
        assert b.energy_ratio_vs(a) == 2.0
        with pytest.raises(ConfigurationError):
            a.energy_ratio_vs(EnergyPoint("z", "b", 0.0, 10.0))

    def test_baseline_energy_uses_device_power(self):
        point = baseline_energy(CPU_N, SPEC, queries=8)
        assert point.power_watts == DEVICE_POWER_W["CPU-N"]
        assert point.energy_joules > 0

    def test_ecssd_energy(self):
        point = ecssd_energy(SPEC, total_time=1.0)
        assert point.power_watts == pytest.approx(8.05293)

    def test_every_baseline_has_a_power_entry(self):
        for name in (
            "CPU-N", "CPU-AP", "GenStore-N", "GenStore-AP",
            "SmartSSD-N", "SmartSSD-AP", "SmartSSD-H-N", "SmartSSD-H-AP",
        ):
            assert DEVICE_POWER_W[name] > 0

    def test_efficiency_table(self):
        points = [
            EnergyPoint("a", "b", 1.0, 10.0),
            EnergyPoint("b", "b", 2.0, 10.0),
        ]
        rows = efficiency_table(points)
        assert rows[0][3] == 1.0
        assert rows[1][3] == 2.0
        with pytest.raises(ConfigurationError):
            efficiency_table([])

    def test_ecssd_wins_energy_by_orders_of_magnitude(self):
        """ECSSD beats a CPU host on energy more than on time: it is both
        faster and ~10x lower power."""
        points = A.energy_study(benchmark="XMLCNN-S10M", sample_tiles=4)
        by_arch = {p.architecture: p for p in points}
        ratio = by_arch["CPU-N"].energy_ratio_vs(by_arch["ECSSD"])
        time_ratio = by_arch["CPU-N"].time_seconds / by_arch["ECSSD"].time_seconds
        assert ratio > time_ratio * 5


class TestInterleavingVariants:
    @pytest.fixture(scope="class")
    def variants(self):
        return {r.strategy: r.balance for r in A.interleaving_variants(tiles=4)}

    def test_all_four_present(self, variants):
        assert set(variants) == {"sequential", "uniform", "graded", "learned"}

    def test_ordering(self, variants):
        assert variants["sequential"] < variants["uniform"]
        assert variants["uniform"] < variants["graded"]
        assert variants["learned"] >= variants["graded"] - 0.03

    def test_sequential_is_one_over_channels(self, variants):
        assert variants["sequential"] == pytest.approx(1 / 8, abs=0.02)


class TestSweeps:
    def test_fidelity_sweep_fine_tuning_rescues_bad_predictors(self):
        points = A.predictor_fidelity_sweep(fidelities=(0.0, 1.0), tiles=3)
        by_key = {(p.fidelity, p.fine_tuned): p.balance for p in points}
        # A useless predictor without fine-tuning is no better than uniform.
        assert by_key[(0.0, False)] < 0.85
        # Fine-tuning recovers nearly everything even from a useless prior.
        assert by_key[(0.0, True)] > 0.88
        # A perfect predictor doesn't need fine-tuning.
        assert by_key[(1.0, False)] > 0.88

    def test_training_sweep_saturates_quickly(self):
        points = A.training_queries_sweep(counts=(0, 16, 256), tiles=3)
        by_count = {p.train_queries: p.balance for p in points}
        assert by_count[16] > by_count[0]
        assert by_count[256] == pytest.approx(by_count[16], abs=0.05)

    def test_channel_sweep_monotone_time(self):
        points = A.channel_count_sweep(channel_counts=(4, 8, 16), sample_tiles=4)
        times = [p.time for p in points]
        assert times == sorted(times, reverse=True)
        # Doubling channels roughly halves time while utilization dips.
        assert times[0] / times[1] > 1.5

    def test_drift_study_shape(self):
        points = A.drift_study(drifts=(0.0, 1.0))
        assert points[0].stale_balance > 0.85
        assert points[1].stale_balance < points[0].stale_balance - 0.1
        # Re-tuning restores balance regardless of drift.
        assert points[1].retuned_balance > 0.85

    def test_deployment_study_keys(self):
        timings = A.deployment_study(benchmarks=("GNMT-E32K",))
        assert "GNMT-E32K" in timings
        assert timings["GNMT-E32K"].total_time > 0
