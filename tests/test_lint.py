"""Tests for the reprolint static-analysis suite (repro.lint).

Every rule gets a good/bad fixture pair: the bad snippet must produce exactly
the expected finding, the good snippet none.  A final test runs the engine
over the shipped ``src/repro`` tree and requires it to be clean modulo the
checked-in baseline (and the baseline to be free of stale entries).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import (
    Baseline,
    BaselineError,
    LintEngine,
    default_rules,
    module_name_for,
    rules_by_name,
)
from repro.lint.baseline import BaselineEntry
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SIM_MODULE = "repro.ssd.fixture"


def findings_for(source, module=SIM_MODULE):
    return LintEngine().lint_source(source, path="fixture.py", module=module)


# One (bad, expected_line, good) fixture pair per rule.  Bad snippets are
# written so no *other* rule fires on them.
RULE_FIXTURES = {
    "no-wall-clock": (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.perf_counter()\n",
        4,
        "def stamp(sim):\n"
        "    return sim.now\n",
    ),
    "seeded-rng-only": (
        "import numpy as np\n"
        "\n"
        "def draw():\n"
        "    return np.random.rand(4)\n",
        4,
        "import numpy as np\n"
        "\n"
        "def draw(seed):\n"
        "    rng = np.random.default_rng((seed, 0xEC55D, 0))\n"
        "    return rng.random(4)\n",
    ),
    "sim-time-no-float-eq": (
        "def ready(sim):\n"
        "    return sim.now == 1.5\n",
        2,
        "def ready(sim):\n"
        "    return sim.now >= 1.5\n",
    ),
    "raw-duration-literal": (
        "def kick(sim, cb):\n"
        "    sim.schedule(1.5, cb)\n",
        2,
        "from repro.units import us\n"
        "\n"
        "def kick(sim, cb):\n"
        "    sim.schedule(us(1.5), cb)\n",
    ),
    "closure-capture-in-schedule": (
        "def fan_out(sim, items, delay, handle):\n"
        "    for item in items:\n"
        "        sim.schedule(delay, lambda: handle(item))\n",
        3,
        "def fan_out(sim, items, delay, handle):\n"
        "    for item in items:\n"
        "        sim.schedule(delay, lambda item=item: handle(item))\n",
    ),
    "unordered-iteration": (
        "def spread(channels):\n"
        "    for ch in set(channels):\n"
        "        yield ch\n",
        2,
        "def spread(channels):\n"
        "    for ch in sorted(set(channels)):\n"
        "        yield ch\n",
    ),
    "exception-hygiene": (
        "def guard(fn):\n"
        "    try:\n"
        "        fn()\n"
        "    except Exception:\n"
        "        pass\n",
        4,
        "from repro.errors import SimulationError\n"
        "\n"
        "def guard(fn):\n"
        "    try:\n"
        "        fn()\n"
        "    except SimulationError:\n"
        "        return None\n",
    ),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_bad_snippet_produces_exactly_the_expected_finding(self, rule):
        bad, line, _good = RULE_FIXTURES[rule]
        findings = findings_for(bad)
        assert len(findings) == 1, [f.format() for f in findings]
        assert findings[0].rule == rule
        assert findings[0].line == line
        assert findings[0].severity.label in ("warning", "error")
        assert findings[0].code  # fingerprint captured for the baseline

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_good_snippet_is_clean(self, rule):
        _bad, _line, good = RULE_FIXTURES[rule]
        assert findings_for(good) == []

    def test_registry_covers_at_least_seven_rules(self):
        assert len(default_rules()) >= 7
        assert set(RULE_FIXTURES) == set(rules_by_name())


class TestRuleDetails:
    def test_wall_clock_from_import_is_caught(self):
        src = "from time import perf_counter\n\nt = perf_counter()\n"
        rules = {f.rule for f in findings_for(src)}
        assert rules == {"no-wall-clock"}

    def test_wall_clock_allowed_in_obs(self):
        src = "import time\n\ndef wall():\n    return time.perf_counter()\n"
        assert findings_for(src, module="repro.obs.tracing") == []

    def test_argless_default_rng_flagged_seeded_ok(self):
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        good = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert [f.rule for f in findings_for(bad)] == ["seeded-rng-only"]
        assert findings_for(good) == []

    def test_stdlib_random_flagged(self):
        src = "import random\n\ndef roll():\n    return random.random()\n"
        assert [f.rule for f in findings_for(src)] == ["seeded-rng-only"]

    def test_float_eq_literal_on_left_and_not_eq(self):
        src = "def f(sim):\n    return 2.5 != sim.now\n"
        assert [f.rule for f in findings_for(src)] == ["sim-time-no-float-eq"]

    def test_integer_zero_duration_allowed(self):
        src = "def f(sim, cb):\n    sim.schedule(0.0, cb)\n    sim.schedule(0, cb)\n"
        assert findings_for(src) == []

    def test_inner_def_capturing_loop_var_flagged(self):
        src = (
            "def fan_out(sim, items, delay, handle):\n"
            "    for item in items:\n"
            "        def cb():\n"
            "            handle(item)\n"
            "        sim.schedule(delay, cb)\n"
        )
        findings = findings_for(src)
        assert [f.rule for f in findings] == ["closure-capture-in-schedule"]
        assert "item" in findings[0].message

    def test_set_assigned_then_iterated_flagged(self):
        src = (
            "def f(xs):\n"
            "    pending = set(xs)\n"
            "    return [x for x in pending]\n"
        )
        assert [f.rule for f in findings_for(src)] == ["unordered-iteration"]

    def test_unordered_iteration_scoped_to_ssd_and_layout(self):
        src = "def f(xs):\n    for x in set(xs):\n        yield x\n"
        assert findings_for(src, module="repro.workloads.fixture") == []
        assert len(findings_for(src, module="repro.layout.fixture")) == 1

    def test_bare_except_flagged(self):
        src = "def f(fn):\n    try:\n        fn()\n    except:\n        raise\n"
        assert [f.rule for f in findings_for(src)] == ["exception-hygiene"]

    def test_exception_hygiene_scoped_to_ssd_and_core(self):
        src = "def f(fn):\n    try:\n        fn()\n    except Exception:\n        pass\n"
        assert findings_for(src, module="repro.analysis.fixture") == []


class TestEngineMechanics:
    def test_inline_suppression(self):
        src = (
            "import time\n"
            "t = time.perf_counter()  # reprolint: disable=no-wall-clock\n"
        )
        assert findings_for(src) == []

    def test_standalone_comment_suppresses_next_line(self):
        src = (
            "import time\n"
            "# reprolint: disable=no-wall-clock\n"
            "t = time.perf_counter()\n"
        )
        assert findings_for(src) == []

    def test_disable_all(self):
        src = "import time\nt = time.perf_counter()  # reprolint: disable=all\n"
        assert findings_for(src) == []

    def test_suppressing_a_different_rule_does_not_hide(self):
        src = (
            "import time\n"
            "t = time.perf_counter()  # reprolint: disable=unordered-iteration\n"
        )
        assert len(findings_for(src)) == 1

    def test_directive_inside_string_is_ignored(self):
        src = (
            "import time\n"
            'note = "# reprolint: disable=all"\n'
            "t = time.perf_counter()\n"
        )
        assert len(findings_for(src)) == 1

    def test_parse_error_reported_as_finding(self):
        findings = findings_for("def broken(:\n")
        assert [f.rule for f in findings] == ["parse-error"]

    def test_module_name_for(self):
        assert module_name_for("src/repro/ssd/events.py") == "repro.ssd.events"
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"
        assert module_name_for("/tmp/fixture.py") is None

    def test_findings_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        engine = LintEngine()
        first = engine.lint_paths([tmp_path])
        second = engine.lint_paths([tmp_path])
        assert first == second
        assert [Path(f.path).name for f in first] == ["a.py", "b.py"]


class TestBaseline:
    def test_entry_requires_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "no-wall-clock", "path": "x.py", "line": 1}],
        }))
        with pytest.raises(BaselineError, match="justification"):
            Baseline.load(path)

    def test_split_matches_on_code_fingerprint_despite_line_drift(self):
        bad, line, _ = RULE_FIXTURES["no-wall-clock"]
        [finding] = findings_for(bad)
        entry = BaselineEntry(
            rule=finding.rule,
            path="fixture.py",
            justification="kept deliberately for this test",
            code=finding.code,
            line=line + 40,  # stale line number; code text still matches
        )
        baseline = Baseline(entries=[entry])
        new, grandfathered = baseline.split([finding])
        assert new == [] and grandfathered == [finding]
        assert baseline.unused_entries([finding]) == []

    def test_unused_entries_detected(self):
        entry = BaselineEntry(
            rule="no-wall-clock",
            path="gone.py",
            justification="kept deliberately for this test",
            code="t = time.time()",
        )
        assert Baseline(entries=[entry]).unused_entries([]) == [entry]

    def test_shipped_baseline_entries_are_all_justified(self):
        baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
        for entry in baseline.entries:
            assert len(entry.justification) > 10
            assert "TODO" not in entry.justification


class TestCommandLine:
    def _write_bad_tree(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        return bad

    def test_exit_nonzero_on_finding(self, tmp_path, capsys):
        self._write_bad_tree(tmp_path)
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "no-wall-clock" in out and "1 new finding" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(sim):\n    return sim.now\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0

    def test_write_baseline_then_clean(self, tmp_path):
        self._write_bad_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        # TODO justifications are rejected at load time: grandfathering a
        # finding without saying why fails the run.
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 1
        payload = json.loads(baseline.read_text())
        for entry in payload["entries"]:
            entry["justification"] = "kept: exercised by test"
        baseline.write_text(json.dumps(payload))
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(sim):\n    return sim.now\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "no-wall-clock",
                "path": "gone.py",
                "code": "t = time.time()",
                "justification": "kept: exercised by test",
            }],
        }))
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--select", "nope"]) == 2

    def test_select_limits_rules(self, tmp_path):
        self._write_bad_tree(tmp_path)
        args = [str(tmp_path), "--no-baseline", "--select", "unordered-iteration"]
        assert lint_main(args) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULE_FIXTURES:
            assert rule in out

    def test_json_format(self, tmp_path, capsys):
        self._write_bad_tree(tmp_path)
        assert lint_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"][0]["rule"] == "no-wall-clock"

    def test_repro_cli_lint_subcommand(self, tmp_path, capsys):
        self._write_bad_tree(tmp_path)
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 1
        (tmp_path / "bad.py").unlink()
        (tmp_path / "ok.py").write_text("def f(sim):\n    return sim.now\n")
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 0

    def test_python_dash_m_entry_point(self, tmp_path):
        self._write_bad_tree(tmp_path)
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path), "--no-baseline"],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        assert proc.returncode == 1
        assert "no-wall-clock" in proc.stdout


class TestShippedTree:
    def test_src_repro_is_clean_modulo_baseline(self):
        engine = LintEngine()
        findings = engine.lint_paths([REPO_ROOT / "src" / "repro"])
        baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
        new, _grandfathered = baseline.split(findings)
        assert new == [], [f.format() for f in new]
        stale = baseline.unused_entries(findings)
        assert stale == [], [e.to_json() for e in stale]
