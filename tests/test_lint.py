"""Tests for the reprolint static-analysis suite (repro.lint).

Every rule gets a good/bad fixture pair: the bad snippet must produce exactly
the expected finding, the good snippet none.  A final test runs the engine
over the shipped ``src/repro`` tree and requires it to be clean modulo the
checked-in baseline (and the baseline to be free of stale entries).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import (
    Baseline,
    BaselineError,
    EXCLUDED_PACKAGES,
    LintEngine,
    SIM_PACKAGES,
    default_rules,
    discover_sim_packages,
    module_name_for,
    rules_by_name,
    run_deep,
)
from repro.lint.baseline import BaselineEntry
from repro.lint.cli import main as lint_main
from repro.lint.findings import Finding

REPO_ROOT = Path(__file__).resolve().parents[1]
SIM_MODULE = "repro.ssd.fixture"


def findings_for(source, module=SIM_MODULE):
    return LintEngine().lint_source(source, path="fixture.py", module=module)


# One (bad, expected_line, good) fixture pair per rule.  Bad snippets are
# written so no *other* rule fires on them.
RULE_FIXTURES = {
    "no-wall-clock": (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.perf_counter()\n",
        4,
        "def stamp(sim):\n"
        "    return sim.now\n",
    ),
    "seeded-rng-only": (
        "import numpy as np\n"
        "\n"
        "def draw():\n"
        "    return np.random.rand(4)\n",
        4,
        "import numpy as np\n"
        "\n"
        "def draw(seed):\n"
        "    rng = np.random.default_rng((seed, 0xEC55D, 0))\n"
        "    return rng.random(4)\n",
    ),
    "sim-time-no-float-eq": (
        "def ready(sim):\n"
        "    return sim.now == 1.5\n",
        2,
        "def ready(sim):\n"
        "    return sim.now >= 1.5\n",
    ),
    "raw-duration-literal": (
        "def kick(sim, cb):\n"
        "    sim.schedule(1.5, cb)\n",
        2,
        "from repro.units import us\n"
        "\n"
        "def kick(sim, cb):\n"
        "    sim.schedule(us(1.5), cb)\n",
    ),
    "closure-capture-in-schedule": (
        "def fan_out(sim, items, delay, handle):\n"
        "    for item in items:\n"
        "        sim.schedule(delay, lambda: handle(item))\n",
        3,
        "def fan_out(sim, items, delay, handle):\n"
        "    for item in items:\n"
        "        sim.schedule(delay, lambda item=item: handle(item))\n",
    ),
    "unordered-iteration": (
        "def spread(channels):\n"
        "    for ch in set(channels):\n"
        "        yield ch\n",
        2,
        "def spread(channels):\n"
        "    for ch in sorted(set(channels)):\n"
        "        yield ch\n",
    ),
    "exception-hygiene": (
        "def guard(fn):\n"
        "    try:\n"
        "        fn()\n"
        "    except Exception:\n"
        "        pass\n",
        4,
        "from repro.errors import SimulationError\n"
        "\n"
        "def guard(fn):\n"
        "    try:\n"
        "        fn()\n"
        "    except SimulationError:\n"
        "        return None\n",
    ),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_bad_snippet_produces_exactly_the_expected_finding(self, rule):
        bad, line, _good = RULE_FIXTURES[rule]
        findings = findings_for(bad)
        assert len(findings) == 1, [f.format() for f in findings]
        assert findings[0].rule == rule
        assert findings[0].line == line
        assert findings[0].severity.label in ("warning", "error")
        assert findings[0].code  # fingerprint captured for the baseline

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_good_snippet_is_clean(self, rule):
        _bad, _line, good = RULE_FIXTURES[rule]
        assert findings_for(good) == []

    def test_registry_covers_at_least_seven_rules(self):
        assert len(default_rules()) >= 7
        assert set(RULE_FIXTURES) == set(rules_by_name())


class TestRuleDetails:
    def test_wall_clock_from_import_is_caught(self):
        src = "from time import perf_counter\n\nt = perf_counter()\n"
        rules = {f.rule for f in findings_for(src)}
        assert rules == {"no-wall-clock"}

    def test_wall_clock_allowed_in_obs(self):
        src = "import time\n\ndef wall():\n    return time.perf_counter()\n"
        assert findings_for(src, module="repro.obs.tracing") == []

    def test_argless_default_rng_flagged_seeded_ok(self):
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        good = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert [f.rule for f in findings_for(bad)] == ["seeded-rng-only"]
        assert findings_for(good) == []

    def test_stdlib_random_flagged(self):
        src = "import random\n\ndef roll():\n    return random.random()\n"
        assert [f.rule for f in findings_for(src)] == ["seeded-rng-only"]

    def test_float_eq_literal_on_left_and_not_eq(self):
        src = "def f(sim):\n    return 2.5 != sim.now\n"
        assert [f.rule for f in findings_for(src)] == ["sim-time-no-float-eq"]

    def test_integer_zero_duration_allowed(self):
        src = "def f(sim, cb):\n    sim.schedule(0.0, cb)\n    sim.schedule(0, cb)\n"
        assert findings_for(src) == []

    def test_inner_def_capturing_loop_var_flagged(self):
        src = (
            "def fan_out(sim, items, delay, handle):\n"
            "    for item in items:\n"
            "        def cb():\n"
            "            handle(item)\n"
            "        sim.schedule(delay, cb)\n"
        )
        findings = findings_for(src)
        assert [f.rule for f in findings] == ["closure-capture-in-schedule"]
        assert "item" in findings[0].message

    def test_set_assigned_then_iterated_flagged(self):
        src = (
            "def f(xs):\n"
            "    pending = set(xs)\n"
            "    return [x for x in pending]\n"
        )
        assert [f.rule for f in findings_for(src)] == ["unordered-iteration"]

    def test_unordered_iteration_scoped_to_ssd_and_layout(self):
        src = "def f(xs):\n    for x in set(xs):\n        yield x\n"
        assert findings_for(src, module="repro.workloads.fixture") == []
        assert len(findings_for(src, module="repro.layout.fixture")) == 1

    def test_bare_except_flagged(self):
        src = "def f(fn):\n    try:\n        fn()\n    except:\n        raise\n"
        assert [f.rule for f in findings_for(src)] == ["exception-hygiene"]

    def test_exception_hygiene_scoped_to_ssd_and_core(self):
        src = "def f(fn):\n    try:\n        fn()\n    except Exception:\n        pass\n"
        assert findings_for(src, module="repro.analysis.fixture") == []


class TestEngineMechanics:
    def test_inline_suppression(self):
        src = (
            "import time\n"
            "t = time.perf_counter()  # reprolint: disable=no-wall-clock\n"
        )
        assert findings_for(src) == []

    def test_standalone_comment_suppresses_next_line(self):
        src = (
            "import time\n"
            "# reprolint: disable=no-wall-clock\n"
            "t = time.perf_counter()\n"
        )
        assert findings_for(src) == []

    def test_disable_all(self):
        src = "import time\nt = time.perf_counter()  # reprolint: disable=all\n"
        assert findings_for(src) == []

    def test_suppressing_a_different_rule_does_not_hide(self):
        src = (
            "import time\n"
            "t = time.perf_counter()  # reprolint: disable=unordered-iteration\n"
        )
        assert len(findings_for(src)) == 1

    def test_directive_inside_string_is_ignored(self):
        src = (
            "import time\n"
            'note = "# reprolint: disable=all"\n'
            "t = time.perf_counter()\n"
        )
        assert len(findings_for(src)) == 1

    def test_parse_error_reported_as_finding(self):
        findings = findings_for("def broken(:\n")
        assert [f.rule for f in findings] == ["parse-error"]

    def test_module_name_for(self):
        assert module_name_for("src/repro/ssd/events.py") == "repro.ssd.events"
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"
        assert module_name_for("/tmp/fixture.py") is None

    def test_findings_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        engine = LintEngine()
        first = engine.lint_paths([tmp_path])
        second = engine.lint_paths([tmp_path])
        assert first == second
        assert [Path(f.path).name for f in first] == ["a.py", "b.py"]


class TestBaseline:
    def test_entry_requires_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "no-wall-clock", "path": "x.py", "line": 1}],
        }))
        with pytest.raises(BaselineError, match="justification"):
            Baseline.load(path)

    def test_split_matches_on_code_fingerprint_despite_line_drift(self):
        bad, line, _ = RULE_FIXTURES["no-wall-clock"]
        [finding] = findings_for(bad)
        entry = BaselineEntry(
            rule=finding.rule,
            path="fixture.py",
            justification="kept deliberately for this test",
            code=finding.code,
            line=line + 40,  # stale line number; code text still matches
        )
        baseline = Baseline(entries=[entry])
        new, grandfathered = baseline.split([finding])
        assert new == [] and grandfathered == [finding]
        assert baseline.unused_entries([finding]) == []

    def test_unused_entries_detected(self):
        entry = BaselineEntry(
            rule="no-wall-clock",
            path="gone.py",
            justification="kept deliberately for this test",
            code="t = time.time()",
        )
        assert Baseline(entries=[entry]).unused_entries([]) == [entry]

    def test_shipped_baseline_entries_are_all_justified(self):
        baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
        for entry in baseline.entries:
            assert len(entry.justification) > 10
            assert "TODO" not in entry.justification


class TestCommandLine:
    def _write_bad_tree(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        return bad

    def test_exit_nonzero_on_finding(self, tmp_path, capsys):
        self._write_bad_tree(tmp_path)
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "no-wall-clock" in out and "1 new finding" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(sim):\n    return sim.now\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0

    def test_write_baseline_then_clean(self, tmp_path):
        self._write_bad_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        # TODO justifications are rejected at load time: grandfathering a
        # finding without saying why fails the run.
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 1
        payload = json.loads(baseline.read_text())
        for entry in payload["entries"]:
            entry["justification"] = "kept: exercised by test"
        baseline.write_text(json.dumps(payload))
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(sim):\n    return sim.now\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "no-wall-clock",
                "path": "gone.py",
                "code": "t = time.time()",
                "justification": "kept: exercised by test",
            }],
        }))
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--select", "nope"]) == 2

    def test_select_limits_rules(self, tmp_path):
        self._write_bad_tree(tmp_path)
        args = [str(tmp_path), "--no-baseline", "--select", "unordered-iteration"]
        assert lint_main(args) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULE_FIXTURES:
            assert rule in out

    def test_json_format(self, tmp_path, capsys):
        self._write_bad_tree(tmp_path)
        assert lint_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"][0]["rule"] == "no-wall-clock"

    def test_repro_cli_lint_subcommand(self, tmp_path, capsys):
        self._write_bad_tree(tmp_path)
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 1
        (tmp_path / "bad.py").unlink()
        (tmp_path / "ok.py").write_text("def f(sim):\n    return sim.now\n")
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 0

    def test_python_dash_m_entry_point(self, tmp_path):
        self._write_bad_tree(tmp_path)
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path), "--no-baseline"],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(tmp_path),
        )
        assert proc.returncode == 1
        assert "no-wall-clock" in proc.stdout


class TestEngineEdgeCases:
    def test_lint_file_with_syntax_error_reports_parse_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = LintEngine().lint_file(bad)
        assert [f.rule for f in findings] == ["parse-error"]

    def test_multiline_statement_disable_anywhere_on_the_statement(self):
        # The finding anchors to the Call's line; the directive sits on the
        # closing line of the same multi-line assignment.
        src = (
            "import time\n"
            "t = (\n"
            "    time.perf_counter()\n"
            ")  # reprolint: disable=no-wall-clock\n"
        )
        assert findings_for(src) == []

    def test_multiline_disable_does_not_silence_the_whole_function(self):
        # A directive on a line of a compound statement (the def) must not
        # suppress findings elsewhere in its body.
        src = (
            "import time\n"
            "def f():  # reprolint: disable=no-wall-clock\n"
            "    a = time.perf_counter()  # suppressed? no - different line\n"
            "    return a\n"
        )
        assert len(findings_for(src)) == 1

    def test_findings_inside_main_guard_are_reported(self):
        src = (
            "import time\n"
            'if __name__ == "__main__":\n'
            "    t = time.perf_counter()\n"
        )
        findings = findings_for(src)
        assert [f.rule for f in findings] == ["no-wall-clock"]
        assert findings[0].line == 3
        # top-level code: the symbol is the module itself
        assert findings[0].symbol == SIM_MODULE

    def test_symbol_is_qualified_for_nested_scopes(self):
        src = (
            "import time\n"
            "class Clock:\n"
            "    def read(self):\n"
            "        return time.perf_counter()\n"
        )
        [finding] = findings_for(src)
        assert finding.symbol == f"{SIM_MODULE}.Clock.read"


class TestSimPackageDiscovery:
    def test_every_shipped_unit_is_covered_or_excluded(self):
        src_root = REPO_ROOT / "src" / "repro"
        units = set()
        for child in src_root.iterdir():
            if child.is_dir() and (child / "__init__.py").is_file():
                units.add(f"repro.{child.name}")
            elif child.suffix == ".py" and child.name != "__init__.py":
                units.add(f"repro.{child.stem}")
        for unit in sorted(units):
            covered = unit in SIM_PACKAGES or any(
                pkg.startswith(unit + ".") for pkg in SIM_PACKAGES
            )
            excluded = unit in EXCLUDED_PACKAGES
            assert covered or excluded, (
                f"{unit} is neither in SIM_PACKAGES nor excluded with a "
                f"justification in EXCLUDED_PACKAGES"
            )

    def test_exclusions_carry_real_justifications(self):
        for pkg, why in EXCLUDED_PACKAGES.items():
            assert len(why) > 20, f"{pkg} exclusion needs a real justification"

    def test_discovery_tracks_new_packages(self, tmp_path):
        root = tmp_path / "repro"
        (root / "newpkg").mkdir(parents=True)
        (root / "__init__.py").write_text("")
        (root / "newpkg" / "__init__.py").write_text("")
        assert "repro.newpkg" in discover_sim_packages(root)

    def test_shipped_discovery_matches_module_constant(self):
        assert SIM_PACKAGES == discover_sim_packages()


def _deep_tree(tmp_path, files):
    """Materialize a mini ``repro`` package tree for the deep passes."""
    root = tmp_path / "repro"
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src)
        init = path.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
    if not (root / "__init__.py").exists():
        (root / "__init__.py").write_text("")
    return root


class TestLayeringContract:
    def test_back_edge_is_flagged(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "serve/__init__.py": "",
            "ssd/bad.py": "from repro.serve import something\n",
        })
        findings = run_deep([root])
        assert [f.rule for f in findings] == ["layering-contract"]
        assert "repro.ssd may not import repro.serve" in findings[0].message

    def test_allowed_edges_are_clean(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "serve/ok.py": (
                "from repro.core import thing\n"
                "from repro.units import us\n"
                "from repro.obs import get_tracer\n"
            ),
            "ssd/ok.py": "from repro.faults import plan\n",
            "core/__init__.py": "",
            "faults/__init__.py": "",
        })
        assert run_deep([root]) == []

    def test_nothing_may_import_cli(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "serve/bad.py": "from repro import cli\n",
            "cli.py": "",
        })
        findings = run_deep([root])
        assert [f.rule for f in findings] == ["layering-contract"]

    def test_inline_suppression_applies_to_deep_findings(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "serve/__init__.py": "",
            "ssd/bad.py": (
                "from repro.serve import x  "
                "# reprolint: disable=layering-contract\n"
            ),
        })
        assert run_deep([root]) == []


class TestSeedProvenance:
    def test_constant_seed_is_flagged(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "workloads/bad.py": (
                "import numpy as np\n"
                "def draw(n):\n"
                "    return np.random.default_rng(1234).random(n)\n"
            ),
        })
        findings = run_deep([root])
        assert [f.rule for f in findings] == ["seed-provenance"]
        assert "constant seed" in findings[0].message

    def test_laundered_seed_caught_at_the_call_site(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "workloads/bad.py": (
                "import numpy as np\n"
                "def helper(ident):\n"
                "    return np.random.default_rng((ident, 0x5A17))\n"
                "def launder():\n"
                "    return helper(42)\n"
            ),
        })
        findings = run_deep([root])
        assert [f.rule for f in findings] == ["seed-provenance"]
        assert "launders" in findings[0].message
        assert findings[0].symbol.endswith("launder")

    def test_rooted_seeds_are_clean(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "workloads/ok.py": (
                "import numpy as np\n"
                "_SALT = 0xEC55D\n"
                "def stream(seed, index):\n"
                "    return np.random.default_rng((seed, _SALT, index))\n"
                "def from_config(config):\n"
                "    return np.random.default_rng((config.seed, 7))\n"
                "def caller(seed):\n"
                "    return stream(seed, 3)\n"
            ),
        })
        assert run_deep([root]) == []


class TestUnitFlow:
    def test_dimension_mixing_is_flagged(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "ssd/bad.py": (
                "from repro.units import ms, gbps\n"
                "def f():\n"
                "    return ms(5) + gbps(2)\n"
            ),
        })
        findings = run_deep([root])
        assert [f.rule for f in findings] == ["unit-flow"]
        assert "mixing dimensions" in findings[0].message

    def test_swapped_transfer_time_args_flagged(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "ssd/bad.py": (
                "from repro.units import transfer_time\n"
                "def f(num_bytes, bandwidth_bps):\n"
                "    return transfer_time(bandwidth_bps, num_bytes)\n"
            ),
        })
        findings = run_deep([root])
        assert len(findings) == 2  # both positions are wrong
        assert {f.rule for f in findings} == {"unit-flow"}

    def test_double_unit_conversion_flagged(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "ssd/bad.py": (
                "from repro.units import ms\n"
                "def f():\n"
                "    return ms(ms(1))\n"
            ),
        })
        findings = run_deep([root])
        assert [f.rule for f in findings] == ["unit-flow"]
        assert "double unit conversion" in findings[0].message

    def test_cross_module_raw_literal_for_seconds_param(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "core/sched.py": (
                "def reserve(start_s, duration_s):\n"
                "    return start_s + duration_s\n"
            ),
            "serve/bad.py": (
                "from repro.core.sched import reserve\n"
                "def f(start_s):\n"
                "    return reserve(start_s, 0.005)\n"
            ),
        })
        findings = run_deep([root])
        assert [f.rule for f in findings] == ["unit-flow"]
        assert "raw numeric literal" in findings[0].message

    def test_correct_unit_flow_is_clean(self, tmp_path):
        root = _deep_tree(tmp_path, {
            "core/sched.py": (
                "def reserve(start_s, duration_s):\n"
                "    return start_s + duration_s\n"
            ),
            "serve/ok.py": (
                "from repro.units import ms, us, gbps, transfer_time\n"
                "from repro.core.sched import reserve\n"
                "def f(num_bytes, start_s):\n"
                "    latency = transfer_time(num_bytes, gbps(3.2))\n"
                "    total = latency + ms(1)\n"
                "    return reserve(start_s, total + us(5))\n"
            ),
        })
        assert run_deep([root]) == []


class TestBaselineV2:
    def _finding(self, **kwargs):
        defaults = dict(
            rule="no-wall-clock",
            path="src/repro/ssd/x.py",
            line=10,
            col=4,
            message="wall-clock read",
            symbol="repro.ssd.x.Clock.read",
        )
        defaults.update(kwargs)
        return Finding(**defaults)

    def test_v2_entry_matches_despite_line_and_path_drift(self):
        entry = BaselineEntry(
            rule="no-wall-clock",
            path="old/location.py",
            justification="kept deliberately for this test",
            symbol="repro.ssd.x.Clock.read",
            message="wall-clock read",
            line=999,
        )
        finding = self._finding()
        assert entry.matches(finding)
        assert not entry.matches(self._finding(message="other message"))
        assert not entry.matches(self._finding(symbol="repro.ssd.x.other"))

    def test_legacy_v1_entry_still_matches_on_code(self):
        entry = BaselineEntry(
            rule="no-wall-clock",
            path="src/repro/ssd/x.py",
            justification="kept deliberately for this test",
            code="t = time.time()",
        )
        assert entry.is_v2 is False
        assert entry.matches(self._finding(code="t = time.time()"))

    def test_migrated_rekeys_on_symbol_and_message(self):
        finding = self._finding(code="t = time.time()")
        legacy = Baseline(entries=[
            BaselineEntry(
                rule="no-wall-clock",
                path="src/repro/ssd/x.py",
                justification="kept: exercised by test",
                code="t = time.time()",
            ),
            BaselineEntry(
                rule="no-wall-clock",
                path="gone.py",
                justification="stale entry to drop",
                code="dead",
            ),
        ])
        migrated = legacy.migrated([finding])
        assert len(migrated.entries) == 1
        entry = migrated.entries[0]
        assert entry.is_v2
        assert entry.symbol == finding.symbol
        assert entry.message == finding.message
        assert entry.justification == "kept: exercised by test"

    def test_update_baseline_cli_round_trip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        payload = json.loads(baseline.read_text())
        for entry in payload["entries"]:
            entry["justification"] = "kept: exercised by test"
        baseline.write_text(json.dumps(payload))
        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        migrated = json.loads(baseline.read_text())
        assert migrated["version"] == 2
        assert migrated["entries"][0]["symbol"].endswith("stamp")
        # Line drift must not break matching any more: move the finding.
        bad.write_text(
            "import time\n\n\n\n\ndef stamp():\n    return time.time()\n"
        )
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0


class TestDeepCommandLine:
    def test_deep_flag_reports_deep_findings(self, tmp_path, capsys):
        _deep_tree(tmp_path, {
            "serve/__init__.py": "",
            "ssd/bad.py": "from repro.serve import x\n",
        })
        assert lint_main(
            [str(tmp_path / "repro"), "--no-baseline", "--deep"]
        ) == 1
        assert "layering-contract" in capsys.readouterr().out

    def test_without_deep_flag_deep_rules_stay_off(self, tmp_path):
        _deep_tree(tmp_path, {
            "serve/__init__.py": "",
            "ssd/bad.py": "from repro.serve import x\n",
        })
        assert lint_main([str(tmp_path / "repro"), "--no-baseline"]) == 0

    def test_github_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        assert lint_main(
            [str(tmp_path), "--no-baseline", "--format", "github"]
        ) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=reprolint no-wall-clock" in out
        assert "line=4" in out

    def test_graph_cache_replays_and_invalidates(self, tmp_path, capsys):
        root = _deep_tree(tmp_path, {
            "serve/__init__.py": "",
            "ssd/bad.py": "from repro.serve import x\n",
        })
        cache = tmp_path / "graph-cache.json"
        args = [str(root), "--no-baseline", "--deep",
                "--graph-cache", str(cache)]
        assert lint_main(args) == 1
        assert cache.is_file()
        fingerprint = json.loads(cache.read_text())["files"]
        assert lint_main(args) == 1  # replayed from cache, same verdict
        assert json.loads(cache.read_text())["files"] == fingerprint
        # Fixing the file invalidates the cache and the finding disappears.
        (root / "ssd" / "bad.py").write_text("from repro.units import us\n")
        assert lint_main(args) == 0

    def test_select_deep_rule_by_name(self, tmp_path, capsys):
        root = _deep_tree(tmp_path, {
            "serve/__init__.py": "",
            "ssd/bad.py": "from repro.serve import x\n",
        })
        assert lint_main(
            [str(root), "--no-baseline", "--deep",
             "--select", "layering-contract"]
        ) == 1
        assert lint_main(
            [str(root), "--no-baseline", "--deep",
             "--select", "seed-provenance"]
        ) == 0

    def test_list_rules_includes_deep_passes(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("layering-contract", "seed-provenance", "unit-flow"):
            assert name in out


class TestShippedTree:
    def test_src_repro_is_clean_modulo_baseline(self):
        engine = LintEngine()
        findings = engine.lint_paths([REPO_ROOT / "src" / "repro"])
        baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
        new, _grandfathered = baseline.split(findings)
        assert new == [], [f.format() for f in new]
        stale = baseline.unused_entries(findings)
        assert stale == [], [e.to_json() for e in stale]

    def test_deep_passes_are_clean_on_the_shipped_tree(self):
        findings = run_deep([REPO_ROOT / "src" / "repro"])
        baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
        new, _grandfathered = baseline.split(findings)
        assert new == [], [f.format() for f in new]

    def test_shipped_baseline_is_v2(self):
        payload = json.loads(
            (REPO_ROOT / "reprolint-baseline.json").read_text()
        )
        assert payload["version"] == 2
        for entry in payload["entries"]:
            assert entry["symbol"] or entry["message"]
