"""Tests for the assembled ECSSD device (functional and trace paths)."""

import numpy as np
import pytest

from repro.cfp32.circuits import MacDesign
from repro.config import ECSSDConfig
from repro.core.ecssd import ECSSDevice, make_strategy
from repro.core.pipeline import PipelineFeatures
from repro.errors import ConfigurationError
from repro.layout.learned import HotnessPredictor
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.synthetic import make_workload
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel


@pytest.fixture(scope="module")
def workload():
    return make_workload(num_labels=4096, hidden_dim=256, num_queries=64, seed=0)


def trace_generator(spec, ratio=0.10):
    hotness = LabelHotnessModel(
        num_labels=spec.num_labels, zipf_exponent=1.1, run_length=1, seed=3
    )
    return CandidateTraceGenerator(hotness, candidate_ratio=ratio, query_noise=0.05)


class TestMakeStrategy:
    def test_by_name(self):
        assert make_strategy("sequential").name == "sequential"
        assert make_strategy("uniform").name == "uniform"
        pred = HotnessPredictor(np.ones(4))
        assert make_strategy("learned", pred).name == "learned"

    def test_learned_needs_predictor(self):
        with pytest.raises(ConfigurationError):
            make_strategy("learned")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("random")


class TestFunctionalPath:
    def test_deploy_and_infer(self, workload):
        dev = ECSSDevice(interleaving="learned")
        info = dev.deploy_model(workload.weights, train_features=workload.features[:32])
        assert info.num_labels == 4096
        assert info.placement is not None
        assert info.layout.is_heterogeneous
        stats, report = dev.run_inference(workload.features[32:40])
        assert stats.result.batch_size == 8
        assert report.scaled_total_time > 0
        assert 0 < report.fp32_channel_utilization <= 1

    def test_predictions_independent_of_interleaving(self, workload):
        """Layout changes timing, never predictions."""
        results = []
        for strategy in ("sequential", "uniform", "learned"):
            dev = ECSSDevice(interleaving=strategy)
            dev.deploy_model(workload.weights, train_features=workload.features[:32])
            stats, _ = dev.run_inference(workload.features[32:40])
            results.append(stats.result.top_labels)
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[1], results[2])

    def test_fetch_accounting_matches_candidates(self, workload):
        """Bytes fetched from flash equal the batch candidate-union pages.

        (Strategy *ordering* needs L >> channels x tile and is exercised in
        the trace-path tests; a 4096-label matrix fits one tile, where every
        placement is equivalent by construction.)
        """
        dev = ECSSDevice(interleaving="learned")
        dev.deploy_model(workload.weights, train_features=workload.features[:32])
        stats, report = dev.run_inference(workload.features[32:40])
        union = np.unique(np.concatenate(stats.screen.candidates))
        pages = dev.deployment.placement.pages_per_channel(union).sum()
        assert report.run.fp32_bytes == pages * dev.config.flash.page_size

    def test_inference_before_deploy_rejected(self):
        dev = ECSSDevice()
        with pytest.raises(ConfigurationError):
            dev.run_inference(np.zeros((1, 16), dtype=np.float32))

    def test_deploy_without_calibration(self, workload):
        dev = ECSSDevice(interleaving="uniform")
        dev.deploy_model(workload.weights)
        # No threshold: fixed-ratio inference still works through the model.
        stats = dev.model.infer(workload.features[:4], candidate_ratio=0.1)
        assert stats.candidate_ratio == pytest.approx(0.1, abs=0.01)


class TestTracePath:
    def test_deploy_spec_geometry(self):
        dev = ECSSDevice()
        spec = get_benchmark("GNMT-E32K")
        info = dev.deploy_spec(spec)
        assert info.num_labels == spec.num_labels
        assert info.tile_vectors == 1024  # 128 KiB / (256/2 B)
        assert info.num_tiles == -(-spec.num_labels // 1024)

    def test_run_trace_produces_report(self):
        dev = ECSSDevice(interleaving="learned")
        spec = get_benchmark("GNMT-E32K")
        dev.deploy_spec(spec)
        report = dev.run_trace(trace_generator(spec), queries=16, sample_tiles=4)
        assert report.sampled_tiles == 4
        assert report.total_tiles == dev.deployment.num_tiles
        assert report.scaled_total_time > report.run.tile_time_total

    def test_run_trace_before_deploy_rejected(self):
        dev = ECSSDevice()
        spec = get_benchmark("GNMT-E32K")
        with pytest.raises(ConfigurationError):
            dev.run_trace(trace_generator(spec), queries=4)

    def test_strategy_ordering_at_scale(self):
        spec = get_benchmark("GNMT-E32K")
        times = {}
        for strategy in ("sequential", "uniform", "learned"):
            dev = ECSSDevice(interleaving=strategy)
            dev.deploy_spec(spec)
            report = dev.run_trace(trace_generator(spec), queries=16, sample_tiles=6)
            times[strategy] = report.scaled_total_time
        assert times["learned"] < times["uniform"] < times["sequential"]

    def test_sequential_pins_tiles_to_slab_channels(self):
        spec = get_benchmark("GNMT-E32K")
        dev = ECSSDevice(interleaving="sequential")
        dev.deploy_spec(spec)
        report = dev.run_trace(trace_generator(spec), queries=8, sample_tiles=4)
        # Sequential utilization collapses toward 1/channels.
        assert report.fp32_channel_utilization < 0.2

    def test_s100m_dram_capacity_enforced(self):
        spec = get_benchmark("XMLCNN-S100M")
        ok = ECSSDevice(features=PipelineFeatures.full())
        ok.deploy_spec(spec)  # 12.8 GB int4 fits 16 GiB DRAM
        small = ECSSDevice(config=ECSSDConfig().with_dram_capacity(8 * 2**30))
        with pytest.raises(Exception):
            small.deploy_spec(spec)

    def test_flash_capacity_enforced(self):
        spec = get_benchmark("XMLCNN-S100M").scaled(3_000_000_000, "huge")
        dev = ECSSDevice()
        with pytest.raises(ConfigurationError):
            dev.deploy_spec(spec)


class TestFeatureAblation:
    def test_each_feature_helps(self):
        """Cumulative Fig. 8 ordering on one benchmark."""
        spec = get_benchmark("GNMT-E32K")
        gen = trace_generator(spec)
        configs = [
            (PipelineFeatures(mac_design=MacDesign.NAIVE, heterogeneous=False,
                              overlap=False, label="base"), "sequential"),
            (PipelineFeatures(mac_design=MacDesign.NAIVE, heterogeneous=False,
                              overlap=False, label="uni"), "uniform"),
            (PipelineFeatures(mac_design=MacDesign.ALIGNMENT_FREE, heterogeneous=False,
                              overlap=True, label="af"), "uniform"),
            (PipelineFeatures(mac_design=MacDesign.ALIGNMENT_FREE, heterogeneous=True,
                              overlap=True, label="hetero"), "uniform"),
            (PipelineFeatures(mac_design=MacDesign.ALIGNMENT_FREE, heterogeneous=True,
                              overlap=True, label="learned"), "learned"),
        ]
        times = []
        for features, strategy in configs:
            dev = ECSSDevice(features=features, interleaving=strategy)
            dev.deploy_spec(spec)
            times.append(
                dev.run_trace(gen, queries=16, sample_tiles=6).scaled_total_time
            )
        assert times == sorted(times, reverse=True)
        assert times[0] / times[-1] > 5  # big end-to-end win
