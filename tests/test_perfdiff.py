"""Tests for the perf-regression differ (repro.obs.perfdiff)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.perfdiff import (
    BOTH,
    HIGHER_IS_WORSE,
    LOWER_IS_WORSE,
    Tolerance,
    diff_files,
    diff_metrics,
    flatten_metrics,
    load_metrics_file,
    parse_tolerance_spec,
)

BASE = {
    "seed": 42,
    "slo_attained": True,
    "trajectory": [
        {"p99_ms": 4.0, "goodput_qps": 1000.0},
        {"p99_ms": 8.0, "goodput_qps": 900.0},
    ],
}


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestFlatten:
    def test_nested_paths_and_bools(self):
        flat = flatten_metrics(BASE)
        assert flat["seed"] == 42.0
        assert flat["slo_attained"] == 1.0
        assert flat["trajectory.0.p99_ms"] == 4.0
        assert flat["trajectory.1.goodput_qps"] == 900.0

    def test_strings_and_nulls_are_skipped(self):
        flat = flatten_metrics({"name": "x", "missing": None, "v": 1})
        assert flat == {"v": 1.0}


class TestClassification:
    def test_identical_inputs_are_ok(self):
        report = diff_metrics(flatten_metrics(BASE), flatten_metrics(BASE))
        assert report.ok and report.exit_code == 0
        assert report.regressions == []

    def test_20pct_p99_regression_fails(self):
        candidate = json.loads(json.dumps(BASE))
        for point in candidate["trajectory"]:
            point["p99_ms"] *= 1.2
        report = diff_metrics(
            flatten_metrics(BASE), flatten_metrics(candidate)
        )
        assert not report.ok and report.exit_code == 1
        keys = {e.key for e in report.regressions}
        assert "trajectory.0.p99_ms" in keys

    def test_latency_improvement_is_not_regression(self):
        candidate = json.loads(json.dumps(BASE))
        for point in candidate["trajectory"]:
            point["p99_ms"] *= 0.5  # much faster
        report = diff_metrics(
            flatten_metrics(BASE), flatten_metrics(candidate)
        )
        assert report.ok
        assert {e.key for e in report.improvements} >= {"trajectory.0.p99_ms"}

    def test_goodput_drop_regresses_but_gain_does_not(self):
        down = json.loads(json.dumps(BASE))
        down["trajectory"][0]["goodput_qps"] *= 0.8
        assert not diff_metrics(
            flatten_metrics(BASE), flatten_metrics(down)
        ).ok
        up = json.loads(json.dumps(BASE))
        up["trajectory"][0]["goodput_qps"] *= 1.2
        assert diff_metrics(flatten_metrics(BASE), flatten_metrics(up)).ok

    def test_exempt_metadata_never_regresses(self):
        candidate = json.loads(json.dumps(BASE))
        candidate["seed"] = 9999
        assert diff_metrics(
            flatten_metrics(BASE), flatten_metrics(candidate)
        ).ok

    def test_boolean_flag_flip_regresses(self):
        candidate = json.loads(json.dumps(BASE))
        candidate["slo_attained"] = False
        report = diff_metrics(
            flatten_metrics(BASE), flatten_metrics(candidate)
        )
        assert {e.key for e in report.regressions} == {"slo_attained"}

    def test_missing_key_is_regression_new_key_is_not(self):
        baseline = {"p99_ms": 4.0}
        candidate = {"extra_qps": 5.0}
        report = diff_metrics(
            flatten_metrics(baseline), flatten_metrics(candidate)
        )
        assert [e.key for e in report.regressions] == ["p99_ms"]
        assert [e.key for e in report.new_keys] == ["extra_qps"]

    def test_zero_baseline_uses_abs_floor(self):
        report = diff_metrics({"shed_rate": 0.0}, {"shed_rate": 0.5})
        assert not report.ok  # any growth from zero is a huge rel delta

    def test_extra_tolerance_overrides_default(self):
        candidate = json.loads(json.dumps(BASE))
        candidate["trajectory"][0]["p99_ms"] *= 1.2
        loose = (Tolerance("*p99*", 0.5, HIGHER_IS_WORSE),)
        report = diff_metrics(
            flatten_metrics(BASE),
            flatten_metrics(candidate),
            tolerances=loose + tuple(),
        )
        assert report.ok


class TestToleranceSpec:
    def test_parse_full_spec(self):
        tolerance = parse_tolerance_spec("*p99*=0.25:higher_is_worse")
        assert tolerance.pattern == "*p99*"
        assert tolerance.rel_tol == 0.25
        assert tolerance.direction == HIGHER_IS_WORSE

    def test_parse_defaults_direction_to_both(self):
        assert parse_tolerance_spec("*x*=0.1").direction == BOTH

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_tolerance_spec("no-equals-sign")
        with pytest.raises(ConfigurationError):
            parse_tolerance_spec("*x*=notanumber")
        with pytest.raises(ConfigurationError):
            Tolerance("*", -0.1)
        with pytest.raises(ConfigurationError):
            Tolerance("*", 0.1, "sideways")


class TestFiles:
    def test_diff_files_round_trip(self, tmp_path):
        baseline = _write(tmp_path, "base.json", BASE)
        candidate = _write(tmp_path, "cand.json", BASE)
        assert diff_files(baseline, candidate).exit_code == 0

    def test_diff_files_extra_tolerances_win(self, tmp_path):
        regressed = json.loads(json.dumps(BASE))
        regressed["trajectory"][0]["p99_ms"] *= 1.2
        baseline = _write(tmp_path, "base.json", BASE)
        candidate = _write(tmp_path, "cand.json", regressed)
        assert diff_files(baseline, candidate).exit_code == 1
        report = diff_files(
            baseline, candidate,
            extra_tolerances=(Tolerance("*p99*", 0.5, HIGHER_IS_WORSE),),
        )
        assert report.exit_code == 0

    def test_bad_json_raises_configuration_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_metrics_file(str(bad))

    def test_render_names_the_verdict(self, tmp_path):
        regressed = json.loads(json.dumps(BASE))
        regressed["trajectory"][0]["p99_ms"] *= 1.2
        report = diff_files(
            _write(tmp_path, "a.json", BASE),
            _write(tmp_path, "b.json", regressed),
        )
        text = report.render()
        assert "REGRESSION" in text
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["regressions"]


class TestCli:
    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        baseline = _write(tmp_path, "base.json", BASE)
        identical = _write(tmp_path, "same.json", BASE)
        regressed_payload = json.loads(json.dumps(BASE))
        for point in regressed_payload["trajectory"]:
            point["p99_ms"] *= 1.2
        regressed = _write(tmp_path, "bad.json", regressed_payload)

        assert main(["perf-diff", baseline, identical]) == 0
        assert main(["perf-diff", baseline, regressed]) == 1
        # A CLI tolerance override loosens the band back to passing.
        assert main([
            "perf-diff", baseline, regressed,
            "--tolerance", "*p99*=0.5:higher_is_worse",
        ]) == 0
        out = capsys.readouterr().out
        assert "perf-diff" in out

    def test_cli_writes_report_json(self, tmp_path, capsys):
        from repro.cli import main

        baseline = _write(tmp_path, "base.json", BASE)
        out_path = tmp_path / "diff.json"
        assert main([
            "perf-diff", baseline, baseline, "--out", str(out_path)
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True

    def test_lower_is_worse_direction_constant(self):
        # Direction names are part of the CLI contract; keep them stable.
        assert LOWER_IS_WORSE == "lower_is_worse"
