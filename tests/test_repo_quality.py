"""Repository-level quality checks: docs, docstrings, and API hygiene."""

import importlib
import pathlib
import pkgutil
import re

import pytest

import repro

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]


def iter_modules():
    package_dir = pathlib.Path(repro.__file__).parent
    yield "repro"
    for info in pkgutil.walk_packages([str(package_dir)], prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield info.name


ALL_MODULES = sorted(set(iter_modules()))


class TestDocstrings:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, (
            f"{module_name} lacks a meaningful module docstring"
        )

    def test_public_classes_documented(self):
        undocumented = []
        for module_name in ALL_MODULES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if isinstance(obj, type) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, undocumented


class TestExports:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


class TestDocumentation:
    def test_required_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO_ROOT / name).is_file(), f"{name} missing"

    def test_design_confirms_paper_match(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "matches" in text.lower()
        assert "ECSSD" in text

    def test_experiment_index_points_at_real_benches(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", text))
        assert referenced, "DESIGN.md references no bench files"
        for name in referenced:
            assert (REPO_ROOT / "benchmarks" / name).is_file(), name

    def test_experiments_covers_every_figure_and_table(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Fig. 1", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
            "Fig. 13", "Table 2", "Table 3", "Table 4",
        ):
            assert artifact in text, f"EXPERIMENTS.md misses {artifact}"

    def test_readme_examples_exist(self):
        text = (REPO_ROOT / "README.md").read_text()
        for path in re.findall(r"examples/(\w+\.py)", text):
            assert (REPO_ROOT / "examples" / path).is_file(), path

    def test_benches_exist_for_every_evaluation_artifact(self):
        bench_dir = REPO_ROOT / "benchmarks"
        expected = [
            "test_fig01_roofline.py",
            "test_tab02_config.py",
            "test_tab03_benchmarks.py",
            "test_tab04_area_power.py",
            "test_fig08_breakdown.py",
            "test_fig09_mac_circuit.py",
            "test_fig10_hetero_layout.py",
            "test_fig11_access_pattern.py",
            "test_fig12_interleaving.py",
            "test_fig13_end_to_end.py",
            "test_sec42_cfp32_precision.py",
            "test_sec7_scalability.py",
            "test_sec7_gpu_enmc.py",
        ]
        for name in expected:
            assert (bench_dir / name).is_file(), f"missing bench {name}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_reproerror(self):
        from repro import errors

        subclasses = [
            obj
            for name, obj in vars(errors).items()
            if isinstance(obj, type)
            and issubclass(obj, Exception)
            and obj is not errors.ReproError
            and not name.startswith("_")
        ]
        assert subclasses
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError), cls
