"""Tests for the fleet-scale cluster simulator (repro.cluster)."""

import json

import numpy as np
import pytest

from repro.cluster import (
    PLACEMENT_STRATEGIES,
    STEAL_POLICIES,
    Autoscaler,
    ClusterConfig,
    ClusterSimulator,
    CrawlerSchedule,
    HotLabelCache,
    Interconnect,
    Placement,
    build_cluster,
    build_latency_array,
    cluster_saturating_rate,
    place_replicas,
    rack_of,
    shard_outage_seconds,
    zipf_keys,
)
from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.faults import ClusterFaultConfig, ClusterFaultPlan
from repro.lint.simsan import SimSanitizer, installed
from repro.obs.runs import derive_run_id
from repro.serve import AffineServiceModel
from repro.workloads.streams import poisson_arrivals

#: Fast pure-Python service model: 0.5 ms base, 20 us/query, knee at 16.
SERVICE = AffineServiceModel(base=5e-4, per_query=2e-5, knee=16)
CONFIG = ClusterConfig(
    data_nodes=8,
    service_nodes=2,
    shards=4,
    replicas=12,
    racks=2,
    slots_per_node=2,
    slo=0.05,
)


def run_fleet(
    multiplier=0.8,
    seed=7,
    num_requests=4000,
    config=CONFIG,
    fault_config=None,
    hot_degrees=None,
):
    """Fresh fleet replaying a Poisson stream at ``multiplier`` x saturation."""
    rate = multiplier * cluster_saturating_rate(SERVICE, config)
    arrivals = poisson_arrivals(rate, num_requests, seed=seed)
    if fault_config is None:
        fault_config = ClusterFaultConfig.disabled()
    simulator = build_cluster(
        SERVICE,
        config,
        seed=seed,
        fault_config=fault_config,
        hot_degrees=hot_degrees,
    )
    return simulator.run(arrivals)


class TestTopology:
    def test_rack_striping(self):
        assert [rack_of(n, 3) for n in range(6)] == [0, 1, 2, 0, 1, 2]
        with pytest.raises(ConfigurationError):
            rack_of(0, 0)
        with pytest.raises(ConfigurationError):
            rack_of(-1, 2)

    def test_cross_rack_costs_more(self):
        link = Interconnect()
        local = link.transfer_time(4096, cross_rack=False)
        remote = link.transfer_time(4096, cross_rack=True)
        assert remote > local
        # The bandwidth term is identical; only fixed latency scales.
        assert remote - local == pytest.approx(
            link.latency * (link.cross_rack_factor - 1.0)
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(data_nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(data_nodes=4, shards=4, replicas=3)
        with pytest.raises(ConfigurationError):
            ClusterConfig(data_nodes=4, service_nodes=2, autoscale_min=3)
        config = ClusterConfig(data_nodes=4, slots_per_node=3)
        assert config.total_slots == 12
        with pytest.raises(ConfigurationError):
            config.node_rack(4)


class TestPlacement:
    def test_every_shard_covered_on_distinct_nodes(self):
        placement = place_replicas(CONFIG, [1.0] * CONFIG.shards)
        assert placement.total_replicas == CONFIG.replicas
        for shard in range(CONFIG.shards):
            nodes = placement.nodes_for(shard)
            assert len(nodes) >= 1
            assert len(set(nodes)) == len(nodes)

    def test_replicas_spread_across_racks(self):
        placement = place_replicas(CONFIG, [1.0] * CONFIG.shards)
        for shard in range(CONFIG.shards):
            nodes = placement.nodes_for(shard)
            if len(nodes) >= 2:
                racks = {CONFIG.node_rack(n) for n in nodes}
                assert len(racks) >= 2

    def test_extra_replicas_go_to_hottest_shards(self):
        degrees = [0.5, 0.5, 0.5, 2.5]
        placement = place_replicas(CONFIG, degrees)
        counts = [len(placement.nodes_for(s)) for s in range(CONFIG.shards)]
        assert counts[3] == max(counts)

    def test_more_replicas_than_nodes_rejected(self):
        config = ClusterConfig(
            data_nodes=2, shards=1, replicas=3, racks=2, service_nodes=1,
            autoscale_min=1,
        )
        with pytest.raises(ConfigurationError):
            place_replicas(config, [1.0])

    def test_deterministic(self):
        degrees = [1.3, 0.7, 1.1, 0.9]
        first = place_replicas(CONFIG, degrees)
        second = place_replicas(CONFIG, degrees)
        assert first == second

    def test_views_are_consistent(self):
        placement = place_replicas(CONFIG, [1.0] * CONFIG.shards)
        for node in range(CONFIG.data_nodes):
            for shard in placement.shards_on(node):
                assert node in placement.nodes_for(shard)


class TestHotLabelCache:
    def test_lru_eviction(self):
        cache = HotLabelCache(capacity=2, ttl=10.0)
        cache.insert(1, 0.0)
        cache.insert(2, 0.0)
        assert cache.lookup(1, 0.1)  # 1 is now most recent
        cache.insert(3, 0.2)  # evicts 2
        assert not cache.lookup(2, 0.3)
        assert cache.lookup(1, 0.3)
        assert cache.lookup(3, 0.3)

    def test_ttl_expiry_on_sim_clock(self):
        cache = HotLabelCache(capacity=4, ttl=1.0)
        cache.insert(1, 0.0)
        assert cache.lookup(1, 0.5)
        assert not cache.lookup(1, 1.5)

    def test_zero_capacity_disables(self):
        cache = HotLabelCache(capacity=0, ttl=1.0)
        cache.insert(1, 0.0)
        assert not cache.lookup(1, 0.1)

    def test_zipf_keys_deterministic_and_skewed(self):
        first = zipf_keys(5000, groups=64, skew=1.1, seed=3)
        second = zipf_keys(5000, groups=64, skew=1.1, seed=3)
        np.testing.assert_array_equal(first, second)
        counts = np.bincount(first, minlength=64)
        assert counts[0] > counts[32]
        assert first.min() >= 0 and first.max() < 64


class TestCrawlers:
    def test_slowdown_at_least_one_and_deterministic(self):
        schedule = CrawlerSchedule(seed=5)
        samples = [schedule.slowdown(n, t) for n in range(4)
                   for t in (0.0, 0.3, 1.7, 4.9)]
        assert all(s >= 1.0 for s in samples)
        again = [CrawlerSchedule(seed=5).slowdown(n, t) for n in range(4)
                 for t in (0.0, 0.3, 1.7, 4.9)]
        assert samples == again
        # Some window somewhere must actually be active.
        assert any(s > 1.0 for s in samples)

    def test_disabled_is_free(self):
        schedule = CrawlerSchedule(seed=5, enabled=False)
        assert schedule.slowdown(0, 0.25) == 1.0
        assert schedule.mean_overhead() == 1.0

    def test_mean_overhead_bounds(self):
        overhead = CrawlerSchedule(seed=0).mean_overhead()
        assert 1.0 < overhead < 1.2


class TestAutoscaler:
    def test_scales_up_under_sustained_burn(self):
        scaler = Autoscaler(slo=0.02, min_nodes=1, max_nodes=4)
        for step in range(200):
            scaler.observe(step * 0.01, bad=True)
        assert scaler.decide(2.0, active=2) == 3
        assert scaler.decide(2.0, active=4) == 4  # capped

    def test_scales_down_when_quiet(self):
        scaler = Autoscaler(slo=0.02, min_nodes=1, max_nodes=4)
        for step in range(200):
            scaler.observe(step * 0.01, bad=False)
        assert scaler.decide(2.0, active=3) == 2
        assert scaler.decide(2.0, active=1) == 1  # floored

    def test_window_expiry_forgets_old_burn(self):
        scaler = Autoscaler(slo=0.02, min_nodes=1, max_nodes=4)
        for step in range(50):
            scaler.observe(step * 0.001, bad=True)
        for step in range(400):
            scaler.observe(0.1 + step * 0.01, bad=False)
        # The bad burst has rolled out of both windows.
        assert scaler.decide(5.0, active=2) <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Autoscaler(slo=0.0, min_nodes=1, max_nodes=2)
        with pytest.raises(ConfigurationError):
            Autoscaler(slo=0.02, min_nodes=3, max_nodes=2)


class TestClusterFaultPlan:
    def test_seeded_replay_is_bit_identical(self):
        config = ClusterFaultConfig(
            seed=11, node_crashes=3, partitions=2, slow_nodes=2, horizon=5.0
        )
        first = ClusterFaultPlan.build(config, nodes=8, racks=2)
        second = ClusterFaultPlan.build(config, nodes=8, racks=2)
        assert first.to_dict() == second.to_dict()
        assert first.edges() == second.edges()

    def test_different_seeds_differ(self):
        base = ClusterFaultConfig(seed=1, node_crashes=4, horizon=5.0)
        other = ClusterFaultConfig(seed=2, node_crashes=4, horizon=5.0)
        plan_a = ClusterFaultPlan.build(base, nodes=8, racks=2)
        plan_b = ClusterFaultPlan.build(other, nodes=8, racks=2)
        assert plan_a.to_dict() != plan_b.to_dict()

    def test_point_queries_match_windows(self):
        config = ClusterFaultConfig(
            seed=3, node_crashes=2, partitions=1, slow_nodes=1,
            crash_duration=0.5, partition_duration=0.25, slow_duration=1.0,
            slow_factor=3.0, horizon=4.0,
        )
        plan = ClusterFaultPlan.build(config, nodes=8, racks=2)
        crash = plan.crashes[0]
        mid = (crash.start + crash.end) / 2.0
        assert not plan.node_alive(crash.node, mid)
        assert plan.node_alive(crash.node, crash.end)
        part = plan.partitions[0]
        pmid = (part.start + part.end) / 2.0
        assert not plan.reachable(part.rack_a, part.rack_b, pmid)
        assert plan.reachable(part.rack_a, part.rack_a, pmid)
        slow = plan.slow_windows[0]
        smid = (slow.start + slow.end) / 2.0
        assert plan.slowdown(slow.node, smid) == pytest.approx(3.0)
        assert plan.slowdown(slow.node, slow.end) == 1.0

    def test_partition_racks_are_distinct_and_ordered(self):
        config = ClusterFaultConfig(seed=9, partitions=8, horizon=2.0)
        plan = ClusterFaultPlan.build(config, nodes=8, racks=4)
        for window in plan.partitions:
            assert window.rack_a < window.rack_b

    def test_from_spec_parses_and_rejects(self):
        config = ClusterFaultConfig.from_spec(
            "node-crash=2, partition=1,slow-node=3", seed=4, horizon=6.0
        )
        assert config.node_crashes == 2
        assert config.partitions == 1
        assert config.slow_nodes == 3
        assert config.seed == 4
        with pytest.raises(ConfigurationError):
            ClusterFaultConfig.from_spec("meteor=1", seed=0, horizon=1.0)
        with pytest.raises(ConfigurationError):
            ClusterFaultConfig.from_spec("node-crash=two", seed=0, horizon=1.0)

    def test_disabled_plan_is_empty(self):
        plan = ClusterFaultPlan.build(
            ClusterFaultConfig.disabled(), nodes=4, racks=2
        )
        assert plan.edges() == []
        assert plan.node_alive(0, 1.0)
        assert plan.slowdown(0, 1.0) == 1.0

    def test_edges_sorted_recovery_before_failure(self):
        config = ClusterFaultConfig(
            seed=2, node_crashes=4, partitions=2, horizon=3.0
        )
        edges = ClusterFaultPlan.build(config, nodes=8, racks=2).edges()
        times = [e[0] for e in edges]
        assert times == sorted(times)


class TestFleetRuns:
    def test_conservation_across_rates(self):
        for multiplier in (0.5, 1.0, 2.0):
            report = run_fleet(multiplier, num_requests=2500)
            assert report.completed + report.shed == report.arrived

    def test_determinism_bit_identical(self):
        first = run_fleet(1.0, seed=13)
        second = run_fleet(1.0, seed=13)
        np.testing.assert_array_equal(first.latencies, second.latencies)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_cache_serves_hot_keys(self):
        report = run_fleet(0.8)
        assert report.cache_hits > 0
        assert report.cache_hit_rate > 0.1

    def test_work_stealing_engages(self):
        # A hot shard concentrates load; idle replicas steal the backlog.
        report = run_fleet(1.5, hot_degrees=[3.0, 0.4, 0.3, 0.3])
        assert report.steals > 0

    def test_light_load_is_fast_and_lossless(self):
        report = run_fleet(0.2, num_requests=1500)
        assert report.shed == 0
        assert report.p50 < CONFIG.slo

    def test_overload_sheds_explicitly(self):
        # Cache off so the full offered load reaches admission control.
        config = ClusterConfig(
            data_nodes=8, service_nodes=2, shards=4, replicas=12,
            racks=2, slots_per_node=2, slo=0.05, cache_capacity=0,
        )
        report = run_fleet(6.0, num_requests=9000, config=config)
        assert report.shed > 0
        assert report.shed_by_reason
        assert sum(report.shed_by_reason.values()) == report.shed

    def test_autoscaler_releases_idle_nodes(self):
        config = ClusterConfig(
            data_nodes=8, service_nodes=4, shards=4, replicas=12,
            racks=2, slots_per_node=2, slo=0.05,
        )
        report = run_fleet(0.2, num_requests=2500, config=config)
        assert report.scale_downs > 0

    def test_slo_too_tight_raises(self):
        config = ClusterConfig(
            data_nodes=8, service_nodes=2, shards=4, replicas=12,
            racks=2, slots_per_node=2, slo=1e-5,
        )
        with pytest.raises(ConfigurationError):
            build_cluster(SERVICE, config)

    def test_run_input_validation(self):
        simulator = build_cluster(SERVICE, CONFIG)
        with pytest.raises(WorkloadError):
            simulator.run(np.empty(0))
        with pytest.raises(WorkloadError):
            simulator.run(np.array([2.0, 1.0]))
        with pytest.raises(WorkloadError):
            simulator.run(np.array([0.0, 1.0]), keys=np.zeros(1, dtype=np.int64))

    def test_hot_degrees_must_match_shards(self):
        with pytest.raises(ConfigurationError):
            build_cluster(SERVICE, CONFIG, hot_degrees=[1.0, 1.0])

    def test_saturating_rate_scales_with_slots(self):
        small = cluster_saturating_rate(SERVICE, CONFIG)
        bigger = cluster_saturating_rate(
            SERVICE,
            ClusterConfig(
                data_nodes=8, service_nodes=2, shards=4, replicas=12,
                racks=2, slots_per_node=4, slo=0.05,
            ),
        )
        assert bigger > small


# Horizon sized to the ~0.08 s span of a 6000-request run at 0.8x
# saturation, so the windows actually land inside the replay.
FAULTED = ClusterFaultConfig(
    seed=7, node_crashes=2, partitions=1, slow_nodes=2,
    crash_duration=0.02, partition_duration=0.01, slow_duration=0.03,
    horizon=0.06,
)


class TestFailover:
    def test_crash_plan_survives_with_failover(self):
        report = run_fleet(0.8, fault_config=FAULTED, num_requests=6000)
        assert report.completed + report.shed == report.arrived
        assert report.redispatches > 0 or report.parked_events > 0
        # Rack-spread placement kept at least one replica per shard alive.
        assert report.failover_downtime == 0.0

    def test_failover_timeline_replays_bit_identically(self):
        first = run_fleet(0.8, fault_config=FAULTED, num_requests=6000)
        second = run_fleet(0.8, fault_config=FAULTED, num_requests=6000)
        assert first.failover_timeline == second.failover_timeline
        assert len(first.failover_timeline) > 0
        np.testing.assert_array_equal(first.latencies, second.latencies)

    def test_run_id_identical_across_replays(self):
        config = {"fleet": CONFIG.data_nodes, "fault_plan": "node-crash=2"}
        workload = {"kind": "poisson", "num_queries": 6000}
        first = derive_run_id(config, seed=7, workload=workload)
        second = derive_run_id(config, seed=7, workload=workload)
        assert first == second
        assert derive_run_id(config, seed=8, workload=workload) != first

    def test_simsan_run_is_clean_and_identical(self):
        baseline = run_fleet(0.8, fault_config=FAULTED, num_requests=4000)
        with installed(SimSanitizer()) as sanitizer:
            sanitized = run_fleet(0.8, fault_config=FAULTED, num_requests=4000)
        assert sanitizer.violations == []
        assert sanitizer.pops_observed > 0
        assert baseline.failover_timeline == sanitized.failover_timeline
        np.testing.assert_array_equal(
            baseline.latencies, sanitized.latencies
        )

    def test_unreachable_everything_parks_then_recovers(self):
        # One shard, all replicas on one node: crashing it must park work,
        # and recovery must drain the park list (the run finishes clean).
        config = ClusterConfig(
            data_nodes=1, service_nodes=1, shards=1, replicas=1, racks=1,
            slots_per_node=2, slo=0.05, autoscale=False, cache_capacity=0,
        )
        fault = ClusterFaultConfig(
            seed=1, node_crashes=1, crash_duration=0.02, horizon=0.03
        )
        rate = 0.5 * cluster_saturating_rate(SERVICE, config)
        arrivals = poisson_arrivals(rate, 800, seed=1)
        simulator = build_cluster(SERVICE, config, seed=1, fault_config=fault)
        report = simulator.run(arrivals)
        assert report.completed + report.shed == report.arrived
        assert report.parked_events > 0
        actions = [event.action for event in report.failover_timeline]
        assert "park" in actions and "unpark" in actions
        assert report.parked_time > 0.0
        # With a single replica, the crash window is an analytic outage.
        assert report.failover_downtime > 0.0

    def test_shard_outage_analytic_matches_plan(self):
        config = ClusterFaultConfig(
            seed=1, node_crashes=1, crash_duration=0.02, horizon=0.03
        )
        plan = ClusterFaultPlan.build(config, nodes=1, racks=1)
        placement = Placement(
            assignments=((0,),), hosted=((0,),), hot_degrees=(1.0,)
        )
        outages = shard_outage_seconds(plan, placement)
        assert outages[0] == pytest.approx(0.02)


class TestReport:
    def test_conservation_enforced_in_report(self):
        with pytest.raises(SimulationError):
            run_report = run_fleet(0.5, num_requests=1000)
            run_report.completed += 1
            run_report.__post_init__()

    def test_latency_array_masks_shed(self):
        array = build_latency_array(4)
        array[0] = 0.01
        array[2] = 0.03
        report = run_fleet(0.5, num_requests=1000)
        assert report.p50 >= 0.0
        with pytest.raises(WorkloadError):
            report.percentile(123.0)

    def test_to_dict_round_trips_json(self):
        report = run_fleet(0.8, fault_config=FAULTED, num_requests=2000)
        payload = json.loads(json.dumps(report.to_dict(), sort_keys=True))
        assert payload["arrived"] == 2000
        assert payload["completed"] + payload["shed"] == 2000
        assert isinstance(payload["failover_events"], list)
        assert payload["utilization_skew"] >= 1.0 or (
            payload["utilization_skew"] == 0.0
        )


class TestPolicyAxes:
    """Placement / steal / autoscale as first-class, sweepable policies."""

    PACKED_SHAPE = dict(
        data_nodes=4, service_nodes=2, shards=2, replicas=6,
        racks=3, slots_per_node=2, slo=0.05,
    )

    def test_unknown_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(data_nodes=8, placement_strategy="bogus")
        with pytest.raises(ConfigurationError):
            ClusterConfig(data_nodes=8, steal_policy="bogus")

    def test_strategies_are_exported_and_defaulted(self):
        assert ClusterConfig(data_nodes=8).placement_strategy == PLACEMENT_STRATEGIES[0]
        assert ClusterConfig(data_nodes=8).steal_policy == STEAL_POLICIES[0]

    def test_strategies_place_distinctly(self):
        placements = {
            strategy: place_replicas(
                ClusterConfig(**self.PACKED_SHAPE, placement_strategy=strategy),
                [1.0, 1.0],
            ).assignments
            for strategy in PLACEMENT_STRATEGIES
        }
        assert len(set(placements.values())) == len(PLACEMENT_STRATEGIES)

    def test_locality_packed_fills_racks_first(self):
        config = ClusterConfig(
            data_nodes=8, service_nodes=2, shards=4, replicas=8,
            racks=2, slots_per_node=2, slo=0.05,
            placement_strategy="locality-packed",
        )
        placement = place_replicas(config, [1.0] * config.shards)
        for nodes in placement.assignments:
            assert len({config.node_rack(n) for n in nodes}) == 1

    def test_rack_spread_crosses_racks(self):
        placement = place_replicas(CONFIG, [1.0] * CONFIG.shards)
        for nodes in placement.assignments:
            assert len({CONFIG.node_rack(n) for n in nodes}) >= 2

    def test_each_strategy_deterministic(self):
        for strategy in PLACEMENT_STRATEGIES:
            config = ClusterConfig(**self.PACKED_SHAPE, placement_strategy=strategy)
            first = place_replicas(config, [2.0, 1.0])
            second = place_replicas(config, [2.0, 1.0])
            assert first.assignments == second.assignments

    def _steal_config(self, policy):
        return ClusterConfig(
            data_nodes=8, service_nodes=2, shards=4, replicas=12,
            racks=2, slots_per_node=2, slo=0.05, steal_policy=policy,
        )

    def test_steal_policy_none_never_steals(self):
        report = run_fleet(
            1.5,
            config=self._steal_config("none"),
            hot_degrees=[3.0, 0.4, 0.3, 0.3],
        )
        assert report.steals == 0

    def test_steal_policies_engage_and_stay_deterministic(self):
        for policy in ("newest", "oldest"):
            config = self._steal_config(policy)
            first = run_fleet(1.5, config=config, hot_degrees=[3.0, 0.4, 0.3, 0.3])
            second = run_fleet(1.5, config=config, hot_degrees=[3.0, 0.4, 0.3, 0.3])
            assert first.steals > 0
            assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
                second.to_dict(), sort_keys=True
            )

    def test_explicit_defaults_byte_identical_to_seed_behavior(self):
        explicit = ClusterConfig(
            data_nodes=8, service_nodes=2, shards=4, replicas=12,
            racks=2, slots_per_node=2, slo=0.05,
            placement_strategy="rack-spread", steal_policy="newest",
        )
        base = run_fleet(1.2, config=CONFIG)
        same = run_fleet(1.2, config=explicit)
        assert json.dumps(base.to_dict(), sort_keys=True) == json.dumps(
            same.to_dict(), sort_keys=True
        )

    def test_policies_participate_in_run_identity(self):
        ids = {
            derive_run_id(
                {"placement": strategy, "steal": policy}, 7, {"kind": "x"}
            )
            for strategy in PLACEMENT_STRATEGIES
            for policy in STEAL_POLICIES
        }
        assert len(ids) == len(PLACEMENT_STRATEGIES) * len(STEAL_POLICIES)
