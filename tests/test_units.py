"""Tests for repro.units: conversions and transfer-time arithmetic."""

import pytest

from repro import units


class TestPrefixes:
    def test_binary_prefixes_chain(self):
        assert units.KiB == 1024
        assert units.MiB == 1024 * units.KiB
        assert units.GiB == 1024 * units.MiB
        assert units.TiB == 1024 * units.GiB

    def test_decimal_prefixes_chain(self):
        assert units.KB == 1000
        assert units.MB == 1000 * units.KB
        assert units.GB == 1000 * units.MB
        assert units.TB == 1000 * units.GB

    def test_binary_and_decimal_differ(self):
        assert units.GiB > units.GB


class TestRateHelpers:
    def test_gbps(self):
        assert units.gbps(1.0) == 1e9

    def test_mbps(self):
        assert units.mbps(500) == 5e8

    def test_gflops(self):
        assert units.gflops(50) == 50e9

    def test_gops(self):
        assert units.gops(200) == 200e9

    def test_time_helpers(self):
        assert units.us(1) == pytest.approx(1e-6)
        assert units.ms(2) == pytest.approx(2e-3)
        assert units.ns(3) == pytest.approx(3e-9)


class TestTransferTime:
    def test_basic(self):
        assert units.transfer_time(1e9, 1e9) == pytest.approx(1.0)

    def test_zero_bytes_is_zero_time(self):
        assert units.transfer_time(0, 1e9) == 0.0

    def test_zero_bytes_with_zero_bandwidth_is_zero(self):
        # Zero payload never needs the link, so bandwidth isn't consulted.
        assert units.transfer_time(0, 0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_time(-1, 1e9)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_time(100, 0)

    def test_page_at_channel_rate(self):
        # 4 KiB over 1 GB/s: ~4.1 us.
        assert units.transfer_time(4096, 1e9) == pytest.approx(4.096e-6)


class TestComputeTime:
    def test_basic(self):
        assert units.compute_time(50e9, 50e9) == pytest.approx(1.0)

    def test_zero_ops(self):
        assert units.compute_time(0, 1e9) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            units.compute_time(-1, 1e9)
        with pytest.raises(ValueError):
            units.compute_time(10, 0)


class TestPretty:
    def test_pretty_bytes_scales(self):
        assert units.pretty_bytes(512) == "512 B"
        assert "KiB" in units.pretty_bytes(8192)
        assert "GiB" in units.pretty_bytes(3 * units.GiB)

    def test_pretty_time_scales(self):
        assert units.pretty_time(0) == "0 s"
        assert "ms" in units.pretty_time(2e-3)
        assert "us" in units.pretty_time(5e-6)
        assert "ns" in units.pretty_time(7e-9)
        assert units.pretty_time(2.0).endswith(" s")
