"""Tests for INT4 quantization and packing (repro.screening.quantization)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.screening.quantization import (
    INT4_MAX,
    Int4Quantizer,
    QuantizedMatrix,
    pack_int4,
    unpack_int4,
)


class TestQuantizer:
    def test_codes_stay_in_range(self):
        rng = np.random.default_rng(0)
        q = Int4Quantizer().quantize(rng.normal(size=(50, 32)).astype(np.float32))
        assert q.codes.min() >= -INT4_MAX
        assert q.codes.max() <= INT4_MAX

    def test_row_max_maps_to_full_scale(self):
        data = np.array([[0.0, 0.5, -1.0, 0.25]], dtype=np.float32)
        q = Int4Quantizer().quantize(data)
        assert np.abs(q.codes).max() == INT4_MAX

    def test_dequantize_error_bounded(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(20, 64)).astype(np.float32)
        q = Int4Quantizer().quantize(data)
        err = np.abs(q.dequantize() - data)
        # Max quantization error is half a step = scale / 2 per row.
        assert (err <= q.scales[:, None] / 2 + 1e-6).all()

    def test_zero_rows_survive(self):
        data = np.zeros((3, 8), dtype=np.float32)
        q = Int4Quantizer().quantize(data)
        assert (q.codes == 0).all()
        assert (q.scales == 1.0).all()
        assert (q.dequantize() == 0).all()

    def test_quantize_vector(self):
        q = Int4Quantizer().quantize_vector(np.array([1.0, -7.0], dtype=np.float32))
        assert q.shape == (1, 2)

    def test_rejects_wrong_rank(self):
        with pytest.raises(WorkloadError):
            Int4Quantizer().quantize(np.zeros(8))
        with pytest.raises(WorkloadError):
            Int4Quantizer().quantize_vector(np.zeros((2, 2)))

    def test_abs_sum_per_row(self):
        codes = np.array([[1, -2, 3], [0, 0, 0]], dtype=np.int8)
        scales = np.ones(2, dtype=np.float32)
        q = QuantizedMatrix(codes=codes, scales=scales)
        np.testing.assert_array_equal(q.abs_sum_per_row(), [6, 0])

    def test_nbytes_packed(self):
        codes = np.zeros((10, 7), dtype=np.int8)
        q = QuantizedMatrix(codes=codes, scales=np.ones(10, dtype=np.float32))
        # 4 bytes of codes (7 nibbles round to 4) + 4-byte scale per row.
        assert q.nbytes_packed == 10 * (4 + 4)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            QuantizedMatrix(
                codes=np.zeros((2, 2), dtype=np.int16),
                scales=np.ones(2, dtype=np.float32),
            )
        with pytest.raises(WorkloadError):
            QuantizedMatrix(
                codes=np.zeros((2, 2), dtype=np.int8),
                scales=np.ones(3, dtype=np.float32),
            )


class TestPacking:
    def test_roundtrip_even_width(self):
        codes = np.array([[1, -7, 0, 5]], dtype=np.int8)
        assert np.array_equal(unpack_int4(pack_int4(codes), 4), codes)

    def test_roundtrip_odd_width(self):
        codes = np.array([[-3, 7, 2]], dtype=np.int8)
        assert np.array_equal(unpack_int4(pack_int4(codes), 3), codes)

    def test_packed_density(self):
        codes = np.zeros((8, 10), dtype=np.int8)
        assert pack_int4(codes).shape == (8, 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            pack_int4(np.array([[8]], dtype=np.int8))

    def test_rank_checked(self):
        with pytest.raises(WorkloadError):
            pack_int4(np.zeros(4, dtype=np.int8))
        with pytest.raises(WorkloadError):
            unpack_int4(np.zeros(4, dtype=np.uint8), 8)

    def test_bad_cols_rejected(self):
        packed = pack_int4(np.zeros((2, 4), dtype=np.int8))
        with pytest.raises(WorkloadError):
            unpack_int4(packed, 0)
        with pytest.raises(WorkloadError):
            unpack_int4(packed, 99)

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=33),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(-8, 8, size=(rows, cols)).astype(np.int8)
        assert np.array_equal(unpack_int4(pack_int4(codes), cols), codes)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_quantize_dequantize_bounded_property(self, seed):
        rng = np.random.default_rng(seed)
        data = (rng.normal(size=(6, 12)) * rng.lognormal(0, 2)).astype(np.float32)
        q = Int4Quantizer().quantize(data)
        err = np.abs(q.dequantize() - data)
        assert (err <= q.scales[:, None] / 2 + 1e-5 * q.scales[:, None]).all()
