"""Tests for the weight-deployment timing model (repro.core.deployment)."""

import pytest

from repro.config import ECSSDConfig
from repro.core.deployment import DeploymentModel, PREALIGN_BYTES_PER_SECOND
from repro.errors import ConfigurationError
from repro.workloads.benchmarks import get_benchmark


@pytest.fixture(scope="module")
def model():
    return DeploymentModel()


class TestProgramBandwidth:
    def test_die_limited_value(self, model):
        """8 channels x 8 dies x 4 KiB / 660 us ~ 397 MB/s device-wide."""
        assert model.program_bandwidth == pytest.approx(
            64 * 4096 / 660e-6, rel=0.01
        )

    def test_far_below_host_link(self, model):
        assert model.program_bandwidth < ECSSDConfig().host_bandwidth


class TestDeploy:
    def test_s100m_is_program_bound(self, model):
        timing = model.deploy(get_benchmark("XMLCNN-S100M"))
        assert timing.bottleneck == "program"
        # 400 GB at ~400 MB/s: roughly 17 minutes of programming.
        assert 600 < timing.program_time < 2000

    def test_total_accounts_pipeline_overlap(self, model):
        timing = model.deploy(get_benchmark("XMLCNN-S100M"))
        expected = (
            timing.prealign_time
            + timing.int4_transfer_time
            + max(timing.fp32_transfer_time, timing.program_time)
            + timing.l2p_setup_time
        )
        assert timing.total_time == pytest.approx(expected)

    def test_small_benchmark_fast(self, model):
        timing = model.deploy(get_benchmark("GNMT-E32K"))
        assert timing.total_time < 5.0

    def test_scales_with_matrix_size(self, model):
        small = model.deploy(get_benchmark("XMLCNN-S10M"))
        big = model.deploy(get_benchmark("XMLCNN-S100M"))
        assert big.program_time == pytest.approx(10 * small.program_time, rel=0.01)

    def test_oversize_rejected(self, model):
        huge = get_benchmark("XMLCNN-S100M").scaled(3_000_000_000, "huge")
        with pytest.raises(ConfigurationError):
            model.deploy(huge)

    def test_prealign_uses_measured_rate(self, model):
        spec = get_benchmark("GNMT-E32K")
        timing = model.deploy(spec)
        assert timing.prealign_time == pytest.approx(
            spec.fp32_matrix_bytes / PREALIGN_BYTES_PER_SECOND
        )


class TestAmortization:
    def test_break_even_query_count(self, model):
        spec = get_benchmark("XMLCNN-S100M")
        queries = model.amortization_queries(spec, time_per_query=0.8)
        deploy = model.deploy(spec).total_time
        # At that query count, deployment is exactly 1% of serving time.
        assert deploy == pytest.approx(0.01 * queries * 0.8)

    def test_validation(self, model):
        spec = get_benchmark("GNMT-E32K")
        with pytest.raises(ConfigurationError):
            model.amortization_queries(spec, time_per_query=0)
        with pytest.raises(ConfigurationError):
            model.amortization_queries(spec, time_per_query=1.0, overhead=0)
