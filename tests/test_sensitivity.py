"""Tests for the §6.1 sensitivity study (repro.screening.sensitivity)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.screening.quantization import Int4Quantizer
from repro.screening.sensitivity import (
    IntQuantizer,
    SensitivityPoint,
    evaluate_point,
    knee_point,
    sensitivity_sweep,
)
from repro.workloads.synthetic import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload(num_labels=1024, hidden_dim=256, num_queries=48, seed=3)


class TestIntQuantizer:
    def test_four_bit_matches_int4_quantizer(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(20, 16)).astype(np.float32)
        a = IntQuantizer(4).quantize(data)
        b = Int4Quantizer().quantize(data)
        np.testing.assert_array_equal(a.codes, b.codes)
        np.testing.assert_allclose(a.scales, b.scales)

    def test_code_range_per_width(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(10, 8)).astype(np.float32)
        for bits in (2, 3, 8):
            q = IntQuantizer(bits).quantize(data)
            limit = 2 ** (bits - 1) - 1
            assert np.abs(q.codes).max() <= limit
            assert np.abs(q.codes).max() == limit  # full-scale rows exist

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(30, 32)).astype(np.float32)
        errors = []
        for bits in (2, 4, 8):
            q = IntQuantizer(bits).quantize(data)
            errors.append(float(np.abs(q.dequantize() - data).mean()))
        assert errors[0] > errors[1] > errors[2]

    def test_bits_validated(self):
        with pytest.raises(WorkloadError):
            IntQuantizer(1)
        with pytest.raises(WorkloadError):
            IntQuantizer(9)

    def test_rank_checked(self):
        with pytest.raises(WorkloadError):
            IntQuantizer(4).quantize(np.zeros(4))


class TestEvaluatePoint:
    def test_paper_operating_point_is_good(self, workload):
        point = evaluate_point(
            workload.weights, workload.features, projection_scale=0.25, bits=4
        )
        assert point.top1_agreement >= 0.95
        assert point.candidate_ratio == pytest.approx(0.10, abs=0.01)

    def test_footprint_accounting(self, workload):
        point = evaluate_point(
            workload.weights, workload.features, projection_scale=0.25, bits=4
        )
        # K = D/4 at 4 bits: 1/32 of the FP32 footprint.
        assert point.int4_footprint_ratio == pytest.approx(1 / 32, rel=0.05)

    def test_quality_degrades_with_tiny_projection(self, workload):
        good = evaluate_point(
            workload.weights, workload.features, projection_scale=0.25, bits=4
        )
        tiny = evaluate_point(
            workload.weights, workload.features, projection_scale=0.03, bits=4
        )
        assert tiny.topk_recall <= good.topk_recall
        assert tiny.top1_agreement <= good.top1_agreement + 0.02

    def test_quality_degrades_with_2bit(self, workload):
        four = evaluate_point(
            workload.weights, workload.features, projection_scale=0.25, bits=4
        )
        two = evaluate_point(
            workload.weights, workload.features, projection_scale=0.25, bits=2
        )
        assert two.topk_recall <= four.topk_recall + 0.02


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self, workload):
        return sensitivity_sweep(
            workload.weights,
            workload.features,
            projection_scales=(0.0625, 0.25),
            bit_widths=(2, 4),
        )

    def test_grid_size(self, points):
        assert len(points) == 4

    def test_footprint_monotone_in_both_axes(self, points):
        by_key = {(p.projection_scale, p.bits): p for p in points}
        assert (
            by_key[(0.0625, 2)].int4_footprint_ratio
            < by_key[(0.25, 2)].int4_footprint_ratio
            < by_key[(0.25, 4)].int4_footprint_ratio
        )

    def test_knee_point_prefers_cheap_and_accurate(self, points):
        knee = knee_point(points, threshold=0.9)
        assert knee is not None
        assert knee.top1_agreement >= 0.9
        cheaper = [
            p for p in points
            if p.int4_footprint_ratio < knee.int4_footprint_ratio
        ]
        assert all(p.top1_agreement < 0.9 for p in cheaper)

    def test_knee_point_none_when_unreachable(self, points):
        assert knee_point(points, threshold=1.01) is None
