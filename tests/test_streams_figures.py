"""Tests for arrival streams and ASCII figure rendering."""

import numpy as np
import pytest

from repro.analysis.figures import bar_chart, grouped_bars, sparkline
from repro.errors import WorkloadError
from repro.workloads.streams import (
    LatencySample,
    ServiceReport,
    bursty_arrivals,
    poisson_arrivals,
    simulate_batched_service,
)


class TestArrivals:
    def test_poisson_rate(self):
        arrivals = poisson_arrivals(rate=1000.0, num_queries=20000, seed=0)
        measured = len(arrivals) / arrivals[-1]
        assert measured == pytest.approx(1000.0, rel=0.05)

    def test_poisson_monotone_and_deterministic(self):
        a = poisson_arrivals(100.0, 50, seed=1)
        b = poisson_arrivals(100.0, 50, seed=1)
        np.testing.assert_array_equal(a, b)
        assert (np.diff(a) > 0).all()

    def test_poisson_validation(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(WorkloadError):
            poisson_arrivals(10.0, 0)

    def test_bursty_is_burstier_than_poisson(self):
        poisson = poisson_arrivals(1000.0, 5000, seed=2)
        bursty = bursty_arrivals(500.0, 8000.0, 5000, seed=2)
        # Coefficient of variation of inter-arrival gaps: bursty > Poisson.
        cv_p = np.std(np.diff(poisson)) / np.mean(np.diff(poisson))
        cv_b = np.std(np.diff(bursty)) / np.mean(np.diff(bursty))
        assert cv_b > cv_p

    def test_bursty_validation(self):
        with pytest.raises(WorkloadError):
            bursty_arrivals(100.0, 50.0, 10)
        with pytest.raises(WorkloadError):
            bursty_arrivals(100.0, 200.0, 10, burst_fraction=0.0)

    def test_bursty_rejects_nonpositive_counts(self):
        # Regression: these used to slip past validation and fail deep in
        # numpy (empty cumsum / ZeroDivisionError) instead of WorkloadError.
        with pytest.raises(WorkloadError, match="num_queries"):
            bursty_arrivals(100.0, 200.0, 0)
        with pytest.raises(WorkloadError, match="num_queries"):
            bursty_arrivals(100.0, 200.0, -5)
        with pytest.raises(WorkloadError, match="mean_phase_queries"):
            bursty_arrivals(100.0, 200.0, 10, mean_phase_queries=0)


class TestBatchedService:
    def test_latency_components(self):
        arrivals = [0.0, 0.1, 0.2, 0.3]
        report = simulate_batched_service(arrivals, batch_size=2, batch_time=1.0)
        assert len(report.samples) == 4
        first = report.samples[0]
        # First batch closes when query 1 arrives (0.1) and serves 1s.
        assert first.batch_start == pytest.approx(0.1)
        assert first.completion == pytest.approx(1.1)
        assert first.latency == pytest.approx(1.1)
        assert first.queue_wait == pytest.approx(0.1)

    def test_batches_serialize_on_the_server(self):
        arrivals = [0.0, 0.0, 0.0, 0.0]
        report = simulate_batched_service(arrivals, batch_size=2, batch_time=1.0)
        completions = sorted({s.completion for s in report.samples})
        assert completions == pytest.approx([1.0, 2.0])

    def test_larger_batches_raise_latency_at_light_load(self):
        arrivals = poisson_arrivals(100.0, 2000, seed=3)
        small = simulate_batched_service(arrivals, batch_size=2, batch_time=1e-3)
        large = simulate_batched_service(arrivals, batch_size=32, batch_time=1e-3)
        assert large.mean_latency > small.mean_latency

    def test_max_wait_caps_queue_time(self):
        arrivals = [0.0, 10.0]
        capped = simulate_batched_service(
            arrivals, batch_size=4, batch_time=0.5, max_wait=0.2
        )
        # The first query dispatches alone at its deadline.
        assert capped.samples[0].queue_wait <= 0.2 + 1e-9

    def test_percentiles_and_throughput(self):
        arrivals = poisson_arrivals(500.0, 1000, seed=4)
        report = simulate_batched_service(arrivals, batch_size=8, batch_time=2e-3)
        assert report.percentile(99) >= report.percentile(50)
        assert report.throughput > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            simulate_batched_service([], 4, 1.0)
        with pytest.raises(WorkloadError):
            simulate_batched_service([0.0], 0, 1.0)
        with pytest.raises(WorkloadError):
            simulate_batched_service([0.0], 4, 0.0)

    def test_sample_properties(self):
        sample = LatencySample(arrival=1.0, batch_start=1.5, completion=2.0)
        assert sample.latency == 1.0
        assert sample.queue_wait == 0.5

    def test_empty_report_raises_workload_error(self):
        # Regression: an empty report used to produce a numpy warning and
        # NaN from mean_latency / percentile instead of a clear error.
        empty = ServiceReport(samples=[])
        with pytest.raises(WorkloadError, match="empty"):
            _ = empty.mean_latency
        with pytest.raises(WorkloadError, match="empty"):
            empty.percentile(99)
        assert empty.throughput == 0.0

    def test_percentile_range_validation(self):
        report = ServiceReport(
            samples=[LatencySample(arrival=0.0, batch_start=0.0, completion=1.0)]
        )
        with pytest.raises(WorkloadError, match="percentile"):
            report.percentile(-1.0)
        with pytest.raises(WorkloadError, match="percentile"):
            report.percentile(101.0)


class TestFigures:
    def test_bar_chart_scales_to_max(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_reference_marker(self):
        chart = bar_chart([("x", 5.0)], width=10, reference=10.0)
        assert "paper: 10" in chart

    def test_bar_chart_title_and_units(self):
        chart = bar_chart([("x", 1.0)], title="T", unit="ms")
        assert chart.startswith("T\n")
        assert "1ms" in chart

    def test_bar_chart_validation(self):
        with pytest.raises(WorkloadError):
            bar_chart([])
        with pytest.raises(WorkloadError):
            bar_chart([("x", -1.0)])
        with pytest.raises(WorkloadError):
            bar_chart([("x", 1.0)], width=2)

    def test_bar_chart_all_zero(self):
        chart = bar_chart([("x", 0.0)])
        assert "#" not in chart

    def test_grouped_bars(self):
        chart = grouped_bars(
            [("g1", [("a", 1.0)]), ("g2", [("b", 2.0)])], title="G"
        )
        assert "[g1]" in chart and "[g2]" in chart
        with pytest.raises(WorkloadError):
            grouped_bars([])

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3, 4, 5])
        assert len(line) == 6
        assert line[0] == " " and line[-1] == "@"
        squeezed = sparkline(list(range(100)), width=10)
        assert len(squeezed) == 10
        with pytest.raises(WorkloadError):
            sparkline([])
