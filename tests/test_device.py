"""Tests for the assembled SSD device (repro.ssd.device)."""

import numpy as np
import pytest

from repro.config import ECSSDConfig, FlashConfig
from repro.errors import SimulationError
from repro.ssd.device import SSDDevice
from repro.ssd.geometry import PhysicalAddress
from repro.units import us


def small_device() -> SSDDevice:
    flash = FlashConfig(
        channels=4,
        packages_per_channel=2,
        dies_per_package=2,
        planes_per_die=1,
        blocks_per_plane=16,
        pages_per_block=32,
        read_latency=us(30),
    )
    return SSDDevice(ECSSDConfig(flash=flash))


class TestSSDMode:
    def test_write_then_read_roundtrip(self):
        dev = small_device()
        t_write = dev.host_write(list(range(16)))
        assert t_write > 0
        t_read = dev.host_read(list(range(16)))
        assert t_read > t_write

    def test_write_spreads_programs_across_channels(self):
        dev = small_device()
        # LPAs spanning all channel ranges.
        lpas = [dev.ftl.channel_logical_range(c).start for c in range(4)]
        dev.host_write(lpas)
        programs = [sum(d.programs for d in ch.dies) for ch in dev.channels]
        assert all(p == 1 for p in programs)

    def test_clock_is_monotonic(self):
        dev = small_device()
        t1 = dev.host_write([0, 1])
        t2 = dev.host_write([2, 3])
        assert t2 >= t1

    def test_advance_clock_rejects_past(self):
        dev = small_device()
        dev.host_write([0])
        with pytest.raises(SimulationError):
            dev.advance_clock(0.0)


class TestFetchPages:
    def test_balanced_fetch_uses_all_channels(self):
        dev = small_device()
        addresses = [PhysicalAddress(c, 0, 0, 0, 0, p) for c in range(4) for p in range(3)]
        result = dev.fetch_pages(addresses, start=0.0)
        assert result.pages_per_channel == [3, 3, 3, 3]
        assert result.total_pages == 12

    def test_makespan_set_by_busiest_channel(self):
        dev = small_device()
        skewed = [PhysicalAddress(0, 0, 0, 0, 0, p) for p in range(8)]
        skewed += [PhysicalAddress(1, 0, 0, 0, 0, 0)]
        result = dev.fetch_pages(skewed, start=0.0)
        assert result.channel_finish[0] == result.finish
        assert result.channel_finish[1] < result.finish

    def test_imbalance_slows_fetch(self):
        dev1, dev2 = small_device(), small_device()
        balanced = [
            PhysicalAddress(c, p % 2, p // 2 % 2, 0, 0, p)
            for c in range(4)
            for p in range(4)
        ]
        skewed = [PhysicalAddress(0, p % 2, p // 2 % 2, 0, p // 4, p % 4) for p in range(16)]
        t_balanced = dev1.fetch_pages(balanced, start=0.0).makespan
        t_skewed = dev2.fetch_pages(skewed, start=0.0).makespan
        assert t_skewed > 2 * t_balanced

    def test_empty_fetch(self):
        dev = small_device()
        result = dev.fetch_pages([], start=5.0)
        assert result.finish == 5.0
        assert result.total_pages == 0
        assert result.utilization(dev.page_transfer_time) == 0.0

    def test_utilization_bounds(self):
        dev = small_device()
        addresses = [
            PhysicalAddress(c, p % 2, 0, 0, 0, p) for c in range(4) for p in range(4)
        ]
        result = dev.fetch_pages(addresses, start=0.0)
        util = result.utilization(dev.page_transfer_time)
        assert 0.0 < util <= 1.0

    def test_fetch_logical_translates(self):
        dev = small_device()
        dev.host_write(list(range(8)))
        dev.reset_timing()
        result = dev.fetch_logical(list(range(8)), start=0.0)
        assert result.total_pages == 8


class TestHousekeeping:
    def test_reset_timing_clears_clock_and_counters(self):
        dev = small_device()
        dev.host_write(list(range(4)))
        dev.reset_timing()
        assert dev.clock == 0.0
        assert all(ch.pages_transferred == 0 for ch in dev.channels)

    def test_reset_keeps_mappings(self):
        dev = small_device()
        dev.host_write([7])
        dev.reset_timing()
        assert dev.ftl.is_mapped(7)

    def test_page_size_passthrough(self):
        dev = small_device()
        assert dev.page_size == 4096
        assert dev.page_transfer_time == pytest.approx(4096 / 1e9)

    def test_channel_bus_utilizations_shape(self):
        dev = small_device()
        t = dev.host_write(list(range(8)))
        utils = dev.channel_bus_utilizations(t)
        assert len(utils) == 4
        assert all(0 <= u <= 1 for u in utils)
