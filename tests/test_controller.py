"""Tests for the per-channel flash controller (repro.ssd.controller)."""

import pytest

from repro.config import FlashConfig
from repro.errors import AddressError, SimulationError
from repro.ssd.channel import Channel
from repro.ssd.controller import (
    CommandKind,
    FlashCommand,
    FlashController,
    route_commands,
)
from repro.ssd.geometry import FlashGeometry, PhysicalAddress
from repro.units import us


def config() -> FlashConfig:
    return FlashConfig(
        channels=2,
        packages_per_channel=2,
        dies_per_package=2,
        planes_per_die=1,
        blocks_per_plane=4,
        pages_per_block=8,
        read_latency=us(30),
    )


def make_controller(channel_index=0, overhead=0.0):
    cfg = config()
    channel = Channel(channel_index, cfg)
    return FlashController(channel, FlashGeometry(cfg), command_overhead=overhead)


def read(ch, pkg=0, die=0, block=0, page=0):
    return FlashCommand(CommandKind.READ, PhysicalAddress(ch, pkg, die, 0, block, page))


class TestSubmit:
    def test_empty_batch_is_instant(self):
        ctrl = make_controller()
        result = ctrl.submit(1.0, [])
        assert result.start == result.finish == 1.0
        assert result.commands == 0

    def test_single_read_timing(self):
        ctrl = make_controller()
        result = ctrl.submit(0.0, [read(0)])
        assert result.finish == pytest.approx(us(30) + 4096 / 1e9)

    def test_multi_die_batch_overlaps_senses(self):
        ctrl = make_controller()
        batch = [read(0, pkg=0, die=0), read(0, pkg=0, die=1), read(0, pkg=1, die=0)]
        result = ctrl.submit(0.0, batch)
        # Senses overlap; the bus serializes 3 transfers after the sense.
        assert result.finish == pytest.approx(us(30) + 3 * 4096 / 1e9)

    def test_same_die_batch_serializes(self):
        ctrl = make_controller()
        result = ctrl.submit(0.0, [read(0, page=0), read(0, page=1)])
        assert result.finish >= 2 * us(30)

    def test_command_overhead_staggers_issues(self):
        fast = make_controller(overhead=0.0).submit(0.0, [read(0), read(0, die=1)])
        slow = make_controller(overhead=us(5)).submit(0.0, [read(0), read(0, die=1)])
        assert slow.finish > fast.finish

    def test_program_and_erase_kinds(self):
        ctrl = make_controller()
        prog = FlashCommand(
            CommandKind.PROGRAM, PhysicalAddress(0, 0, 0, 0, 0, 0)
        )
        erase = FlashCommand(
            CommandKind.ERASE, PhysicalAddress(0, 1, 0, 0, 0, 0)
        )
        result = ctrl.submit(0.0, [prog, erase])
        assert result.commands == 2
        assert result.finish >= us(3500)

    def test_wrong_channel_rejected(self):
        ctrl = make_controller(channel_index=0)
        with pytest.raises(SimulationError):
            ctrl.submit(0.0, [read(1)])

    def test_counter(self):
        ctrl = make_controller()
        ctrl.submit(0.0, [read(0), read(0, die=1)])
        assert ctrl.commands_issued == 2

    def test_makespan_property(self):
        ctrl = make_controller()
        result = ctrl.submit(2.0, [read(0)])
        assert result.makespan == pytest.approx(result.finish - 2.0)


class TestRouting:
    def test_routes_by_channel(self):
        commands = [read(0), read(1), read(1, die=1)]
        routed = route_commands(commands, channels=2)
        assert len(routed[0]) == 1
        assert len(routed[1]) == 2

    def test_all_channels_present_even_if_empty(self):
        routed = route_commands([read(0)], channels=4)
        assert set(routed) == {0, 1, 2, 3}
        assert routed[3] == []

    def test_out_of_range_channel_rejected(self):
        with pytest.raises(SimulationError):
            route_commands([read(5)], channels=2)


class TestCommandConstructionValidation:
    """FlashCommand with a geometry validates its address at construction."""

    def geometry(self) -> FlashGeometry:
        return FlashGeometry(config())

    def command(self, **overrides):
        fields = dict(ch=0, pkg=0, die=0, plane=0, block=0, page=0)
        fields.update(overrides)
        return FlashCommand(
            CommandKind.READ,
            PhysicalAddress(
                fields["ch"], fields["pkg"], fields["die"],
                fields["plane"], fields["block"], fields["page"],
            ),
            self.geometry(),
        )

    def test_valid_address_accepted(self):
        command = self.command(ch=1, pkg=1, die=1, block=3, page=7)
        assert command.address.channel == 1

    @pytest.mark.parametrize(
        "overrides,field_name",
        [
            (dict(ch=2), "channel"),
            (dict(pkg=2), "package"),
            (dict(die=2), "die"),
            (dict(plane=1), "plane"),
            (dict(block=4), "block"),
            (dict(page=8), "page"),
        ],
    )
    def test_out_of_fanout_field_named(self, overrides, field_name):
        with pytest.raises(AddressError) as excinfo:
            self.command(**overrides)
        assert field_name in str(excinfo.value)

    def test_geometry_excluded_from_equality_and_repr(self):
        bare = FlashCommand(
            CommandKind.READ, PhysicalAddress(0, 0, 0, 0, 0, 0)
        )
        checked = self.command()
        assert bare == checked
        assert "geometry" not in repr(checked)

    def test_geometry_free_command_still_validated_at_submit(self):
        ctrl = make_controller()
        bad = FlashCommand(
            CommandKind.READ, PhysicalAddress(0, 0, 0, 0, 99, 0)
        )
        with pytest.raises(AddressError):
            ctrl.submit(0.0, [bad])
