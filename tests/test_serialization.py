"""Tests for CFP32 on-flash serialization (repro.cfp32.serialization)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfp32.format import decode, prealign
from repro.cfp32.serialization import (
    deserialize_vector,
    serialize_vector,
    serialized_size,
    vectors_to_pages,
)
from repro.errors import FormatError


def vec(values):
    return prealign(np.asarray(values, dtype=np.float32))


class TestSerializeRoundtrip:
    def test_basic_roundtrip(self):
        v = vec([1.5, -2.25, 0.0, 100.0])
        out = deserialize_vector(serialize_vector(v))
        assert out.shared_exponent == v.shared_exponent
        np.testing.assert_array_equal(out.mantissas, v.mantissas)
        np.testing.assert_array_equal(decode(out), decode(v))

    def test_size_is_4_bytes_per_element_plus_header(self):
        v = vec(np.ones(100))
        assert len(serialize_vector(v)) == serialized_size(100) == 404

    def test_sign_bit_encoding(self):
        v = vec([-1.0])
        blob = serialize_vector(v)
        word = int.from_bytes(blob[4:8], "little")
        assert word >> 31 == 1
        assert word & 0x7FFFFFFF == abs(int(v.mantissas[0]))

    def test_empty_vector(self):
        v = vec([])
        out = deserialize_vector(serialize_vector(v))
        assert len(out) == 0

    def test_truncated_payload_rejected(self):
        blob = serialize_vector(vec([1.0, 2.0]))
        with pytest.raises(FormatError):
            deserialize_vector(blob[:7])
        with pytest.raises(FormatError):
            deserialize_vector(b"\x00")

    def test_negative_size_rejected(self):
        with pytest.raises(FormatError):
            serialized_size(-1)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        data = (rng.normal(size=n) * np.exp(rng.normal(0, 2, n))).astype(np.float32)
        v = prealign(data)
        out = deserialize_vector(serialize_vector(v))
        assert out.shared_exponent == v.shared_exponent
        np.testing.assert_array_equal(out.mantissas, v.mantissas)


class TestPagePacking:
    def test_vectors_share_pages(self):
        vectors = [vec(np.ones(255)) for _ in range(4)]  # 1024 B each
        pages, locations = vectors_to_pages(vectors, page_size=4096)
        assert len(pages) == 1
        assert [loc[0] for loc in locations] == [0, 0, 0, 0]
        offsets = [loc[1] for loc in locations]
        assert offsets == [0, 1024, 2048, 3072]

    def test_no_straddling(self):
        vectors = [vec(np.ones(700)) for _ in range(2)]  # 2804 B each
        pages, locations = vectors_to_pages(vectors, page_size=4096)
        assert len(pages) == 2
        assert locations[1] == (1, 0)

    def test_pages_are_padded_to_size(self):
        pages, _ = vectors_to_pages([vec(np.ones(10))], page_size=4096)
        assert all(len(p) == 4096 for p in pages)

    def test_multi_page_vector_split(self):
        big = vec(np.ones(2000))  # 8004 B with header
        pages, locations = vectors_to_pages([big], page_size=4096)
        assert locations[0] == (0, 0)
        assert len(pages) == 2  # headerless body split when spare_header off? no: 8004 B -> 2 pages of 4096 + rest
        # 8004 bytes needs 2 pages (8192); check reassembly of the body.
        body = (pages[0] + pages[1])[: 4 + 4 * 2000]
        out = deserialize_vector(bytes(body))
        np.testing.assert_array_equal(out.mantissas, big.mantissas)

    def test_spare_header_fits_1024_dim_vector_per_page(self):
        """The Table 3 D=1024 case: body exactly one 4 KiB page."""
        vectors = [vec(np.ones(1024)) for _ in range(3)]
        pages, locations = vectors_to_pages(
            vectors, page_size=4096, spare_header=True
        )
        assert len(pages) == 3
        assert [loc[0] for loc in locations] == [0, 1, 2]

    def test_without_spare_header_1024_dim_spills(self):
        vectors = [vec(np.ones(1024)) for _ in range(2)]
        pages, _ = vectors_to_pages(vectors, page_size=4096, spare_header=False)
        assert len(pages) > 2

    def test_invalid_page_size(self):
        with pytest.raises(FormatError):
            vectors_to_pages([], page_size=0)

    def test_empty_input(self):
        pages, locations = vectors_to_pages([], page_size=4096)
        assert pages == []
        assert locations == []
