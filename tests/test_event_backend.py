"""Tests for the event-simulated tile timing backend (DESIGN.md §5)."""

import numpy as np
import pytest

from repro.cfp32.circuits import MacDesign
from repro.config import ECSSDConfig
from repro.core.event_backend import EventBackedTiming
from repro.core.pipeline import PipelineFeatures, TilePipelineModel, TileWorkload
from repro.errors import ConfigurationError
from repro.layout.learned import HotnessPredictor, LearnedInterleaving
from repro.layout.placement import build_placement
from repro.layout.uniform import UniformInterleaving
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel

TILE = 2048
CHANNELS = 8


@pytest.fixture(scope="module")
def generator():
    hotness = LabelHotnessModel(num_labels=TILE * 4, run_length=1, seed=3)
    return CandidateTraceGenerator(hotness, candidate_ratio=0.1, query_noise=0.05)


def make_placement(generator, tile_index, learned=True):
    if learned:
        abs_sums = generator.predictor_abs_sums(tile_index, TILE, fidelity=0.9)
        predictor = HotnessPredictor(abs_sums)
        train = generator.tile_trace(tile_index, TILE, num_queries=200, seed=1)
        predictor.fine_tune(train.selection_frequency(), observations=200)
        strategy = LearnedInterleaving(predictor)
    else:
        strategy = UniformInterleaving()
    return build_placement(strategy, TILE, CHANNELS, 4096, 4096, tile_vectors=TILE)


def candidates_for(generator, tile_index):
    trace = generator.tile_trace(tile_index, TILE, num_queries=8, seed=7)
    return np.unique(np.concatenate(trace.candidates))


class TestEventTileTiming:
    def test_balanced_placement_faster_than_skewed(self, generator):
        learned = make_placement(generator, 0, learned=True)
        uniform = make_placement(generator, 0, learned=False)
        candidates = candidates_for(generator, 0)
        backend_a = EventBackedTiming()
        backend_b = EventBackedTiming()
        t_learned = backend_a.time_tile(
            learned, candidates, 0, batch=8, shrunk_dim=256,
            hidden_dim=1024, int4_bytes=TILE * 128,
        )
        t_uniform = backend_b.time_tile(
            uniform, candidates, 0, batch=8, shrunk_dim=256,
            hidden_dim=1024, int4_bytes=TILE * 128,
        )
        assert t_learned.flash_makespan < t_uniform.flash_makespan

    def test_page_counts_match_placement(self, generator):
        placement = make_placement(generator, 1)
        candidates = candidates_for(generator, 1)
        backend = EventBackedTiming()
        timing = backend.time_tile(
            placement, candidates, 0, batch=8, shrunk_dim=256,
            hidden_dim=1024, int4_bytes=TILE * 128,
        )
        np.testing.assert_array_equal(
            timing.pages_per_channel, placement.pages_per_channel(candidates)
        )

    def test_homogeneous_slower_than_heterogeneous(self, generator):
        placement = make_placement(generator, 2)
        candidates = candidates_for(generator, 2)
        hetero = EventBackedTiming(features=PipelineFeatures.full())
        homo = EventBackedTiming(
            features=PipelineFeatures(
                mac_design=MacDesign.ALIGNMENT_FREE,
                heterogeneous=False,
                overlap=True,
            )
        )
        t_het = hetero.time_tile(
            placement, candidates, 0, batch=8, shrunk_dim=256,
            hidden_dim=1024, int4_bytes=TILE * 128,
        )
        t_hom = homo.time_tile(
            placement, candidates, 0, batch=8, shrunk_dim=256,
            hidden_dim=1024, int4_bytes=TILE * 128,
        )
        assert t_hom.flash_makespan > t_het.flash_makespan

    def test_validation(self, generator):
        backend = EventBackedTiming()
        placement = make_placement(generator, 0)
        with pytest.raises(ConfigurationError):
            backend.time_tile(
                placement, np.array([0]), 0, batch=0, shrunk_dim=256,
                hidden_dim=1024, int4_bytes=128,
            )
        with pytest.raises(ConfigurationError):
            backend.run([], [], 8, 256, 1024, 128)
        with pytest.raises(ConfigurationError):
            backend.run([placement], [], 8, 256, 1024, 128)


class TestBackendAgreement:
    def test_event_within_envelope_of_analytic(self, generator):
        """The two timing levels agree within the documented 2.2x envelope
        (sense serialization + firmware overhead on the event side)."""
        analytic = TilePipelineModel(features=PipelineFeatures.full())
        backend = EventBackedTiming()
        placements = [make_placement(generator, t) for t in range(3)]
        candidate_sets = [candidates_for(generator, t) for t in range(3)]
        event = backend.run(
            placements, candidate_sets, batch=8, shrunk_dim=256,
            hidden_dim=1024, int4_bytes=TILE * 128,
        )
        tiles = [
            TileWorkload(
                tile_vectors=TILE,
                shrunk_dim=256,
                hidden_dim=1024,
                batch=8,
                candidates=len(c),
                fp32_pages_per_channel=p.pages_per_channel(c),
                int4_bytes=TILE * 128,
            )
            for p, c in zip(placements, candidate_sets)
        ]
        # Each event-backed tile re-pays the initial sense (channels reset
        # between tiles), so the fair analytic comparison adds one tR/tile.
        tr = ECSSDConfig().flash.read_latency
        analytic_flash = sum(
            t.fp32_fetch + tr for t in map(analytic.tile_timing, tiles)
        )
        ratio = event.flash_time_total / analytic_flash
        assert 0.8 <= ratio <= 2.2

    def test_ordering_preserved_across_backends(self, generator):
        """Learned < uniform under BOTH the analytic and the event model."""
        analytic = TilePipelineModel(features=PipelineFeatures.full())
        times = {}
        for learned in (True, False):
            placement = make_placement(generator, 0, learned=learned)
            candidates = candidates_for(generator, 0)
            backend = EventBackedTiming()
            event = backend.time_tile(
                placement, candidates, 0, batch=8, shrunk_dim=256,
                hidden_dim=1024, int4_bytes=TILE * 128,
            )
            tile = TileWorkload(
                tile_vectors=TILE, shrunk_dim=256, hidden_dim=1024, batch=8,
                candidates=len(candidates),
                fp32_pages_per_channel=placement.pages_per_channel(candidates),
                int4_bytes=TILE * 128,
            )
            times[learned] = (
                event.flash_makespan,
                analytic.tile_timing(tile).fp32_fetch,
            )
        assert times[True][0] < times[False][0]  # event backend
        assert times[True][1] < times[False][1]  # analytic backend
