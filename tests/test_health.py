"""Tests for the SLO health monitor (repro.obs.health)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.health import (
    RULE_BURN_RATE,
    RULE_DEGRADE_LEVEL,
    RULE_FAULT_PRESSURE,
    RULE_SHED_RATE,
    BurnRatePolicy,
    SloObjective,
    burn_rate_series,
    evaluate_serving_health,
)
from repro.serve.request import (
    BatchRecord,
    CompletedRequest,
    Request,
    ServingReport,
    ShedRequest,
)

SLO = 0.010  # 10 ms


def _completed(request_id, arrival, latency, slo=SLO, level=0):
    request = Request(
        request_id=request_id, arrival=arrival, deadline=arrival + slo
    )
    return CompletedRequest(
        request=request,
        dispatch_time=arrival,
        completion=arrival + latency,
        degrade_level=level,
        replica=0,
    )


def _shed(request_id, time, slo=SLO):
    request = Request(request_id=request_id, arrival=time, deadline=time + slo)
    return ShedRequest(request=request, reason="queue_depth", shed_time=time)


def _report(completed=(), shed=(), batches=()):
    return ServingReport(
        slo=SLO,
        arrived=len(completed) + len(shed),
        completed=list(completed),
        shed=list(shed),
        batches=list(batches),
    )


class TestBurnRate:
    def test_healthy_run_raises_no_alerts(self):
        report = _report(
            completed=[
                _completed(i, i * 0.002, latency=0.004) for i in range(50)
            ]
        )
        health = evaluate_serving_health(report)
        assert not health.fired
        assert health.alerts == []
        assert health.peak_burn_fast == 0.0

    def test_sustained_breach_fires_and_resolves(self):
        # 30 straight deadline misses, then a long healthy tail: the alert
        # fires while both windows burn and resolves once the slow window
        # drains.
        bad = [_completed(i, i * 0.002, latency=0.050) for i in range(30)]
        good = [
            _completed(100 + i, 1.0 + i * 0.002, latency=0.004)
            for i in range(200)
        ]
        health = evaluate_serving_health(_report(completed=bad + good))
        pages = health.pages(RULE_BURN_RATE)
        kinds = [p.kind for p in pages]
        assert kinds[0] == "fire"
        assert "resolve" in kinds
        assert health.peak_burn_fast >= health.peak_burn_slow > 0

    def test_brief_blip_does_not_page(self):
        # One miss in a sea of on-time requests: the fast window may spike
        # but the slow window stays under threshold, so nothing fires.
        completed = [
            _completed(i, i * 0.002, latency=0.050 if i == 100 else 0.004)
            for i in range(400)
        ]
        policy = BurnRatePolicy(
            threshold=2.0, fast_window_s=0.004, slow_window_s=0.400
        )
        health = evaluate_serving_health(
            _report(completed=completed),
            objective=SloObjective(target=0.99),
            burn_policy=policy,
        )
        assert health.pages(RULE_BURN_RATE) == []
        assert health.peak_burn_fast > health.peak_burn_slow

    def test_window_defaults_scale_with_slo(self):
        fast, slow = BurnRatePolicy().resolve_windows(SLO)
        assert fast == pytest.approx(5 * SLO)
        assert slow == pytest.approx(25 * SLO)

    def test_inverted_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            BurnRatePolicy(fast_window_s=1.0, slow_window_s=0.1).resolve_windows(SLO)

    def test_invalid_objective_and_policy(self):
        with pytest.raises(ConfigurationError):
            SloObjective(target=1.0)
        with pytest.raises(ConfigurationError):
            BurnRatePolicy(threshold=0.0)

    def test_burn_rate_series_tracks_outcomes(self):
        bad = [_completed(i, i * 0.002, latency=0.050) for i in range(10)]
        series = burn_rate_series(_report(completed=bad), window_s=0.1)
        assert len(series) == 10
        times = [t for t, _ in series]
        assert times == sorted(times)
        assert all(rate > 0 for _, rate in series)
        with pytest.raises(ConfigurationError):
            burn_rate_series(_report(completed=bad), window_s=0.0)


class TestThresholdRules:
    def test_shed_rate_rule_fires(self):
        completed = [
            _completed(i, i * 0.002, latency=0.004) for i in range(20)
        ]
        shed = [_shed(100 + i, 0.020 + i * 0.002) for i in range(20)]
        health = evaluate_serving_health(
            _report(completed=completed, shed=shed),
            shed_rate_threshold=0.10,
        )
        assert RULE_SHED_RATE in health.fired_rules()
        assert health.peak_shed_rate >= 0.10

    def test_degrade_rule_samples_batches(self):
        batches = [
            BatchRecord(start=0.01 * i, end=0.01 * i + 0.005, size=4,
                        degrade_level=level, replica=0)
            for i, level in enumerate([0, 1, 3, 4, 1, 0])
        ]
        health = evaluate_serving_health(
            _report(completed=[_completed(0, 0.0, 0.004)], batches=batches),
            degrade_level_threshold=3,
        )
        pages = health.pages(RULE_DEGRADE_LEVEL)
        assert [p.kind for p in pages] == ["fire", "resolve"]
        assert health.peak_degrade_level == 4

    def test_fault_pressure_rule_uses_signal(self):
        completed = [
            _completed(i, i * 0.002, latency=0.004) for i in range(10)
        ]
        health = evaluate_serving_health(
            _report(completed=completed),
            fault_signal=lambda now: 0.9 if now > 0.010 else 0.0,
            fault_pressure_threshold=0.5,
        )
        assert RULE_FAULT_PRESSURE in health.fired_rules()
        assert health.peak_fault_pressure == pytest.approx(0.9)

    def test_threshold_validation(self):
        report = _report(completed=[_completed(0, 0.0, 0.004)])
        with pytest.raises(ConfigurationError):
            evaluate_serving_health(report, shed_rate_threshold=0.0)
        with pytest.raises(ConfigurationError):
            evaluate_serving_health(report, degrade_level_threshold=-1)


class TestDeterminism:
    def _noisy_report(self):
        completed = [
            _completed(i, i * 0.002, latency=0.050 if i % 7 == 0 else 0.004,
                       level=i % 3)
            for i in range(60)
        ]
        shed = [_shed(1000 + i, 0.03 + 0.002 * i) for i in range(8)]
        batches = [
            BatchRecord(start=0.005 * i, end=0.005 * i + 0.004, size=3,
                        degrade_level=i % 5, replica=i % 2)
            for i in range(24)
        ]
        return _report(completed=completed, shed=shed, batches=batches)

    def test_same_report_yields_byte_identical_health(self):
        dumps = [
            json.dumps(
                evaluate_serving_health(
                    self._noisy_report(),
                    fault_signal=lambda now: min(1.0, now),
                ).to_dict(),
                sort_keys=True,
            )
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_alert_timeline_is_time_ordered(self):
        health = evaluate_serving_health(self._noisy_report())
        times = [a.time for a in health.alerts]
        assert times == sorted(times)

    def test_render_is_readable(self):
        text = evaluate_serving_health(self._noisy_report()).render()
        assert "SLO health" in text
        healthy = evaluate_serving_health(
            _report(completed=[_completed(0, 0.0, 0.004)])
        ).render()
        assert "healthy" in healthy


class TestAgainstRealServingRun:
    def test_health_over_driver_output(self):
        """The monitor consumes a real ServingSimulator report end to end."""
        from repro.serve import (
            AffineServiceModel,
            ServingConfig,
            build_serving_stack,
        )
        from repro.workloads.streams import poisson_arrivals

        service = AffineServiceModel(base=0.002, per_query=0.0005, knee=8)
        config = ServingConfig(slo=0.020, shards=1, replicas=1)
        simulator = build_serving_stack(service, config)
        arrivals = poisson_arrivals(800.0, 400, seed=11)
        report = simulator.run(arrivals)
        health = evaluate_serving_health(report)
        assert health.slo == pytest.approx(0.020)
        payload = health.to_dict()
        assert set(payload) >= {
            "fired", "alerts", "peak_burn_fast", "peak_shed_rate"
        }
