"""End-to-end tests of the approximate screening model (E14 accuracy claims)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.screening.model import ApproximateScreeningModel
from repro.workloads.synthetic import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload(num_labels=2048, hidden_dim=128, num_queries=96, seed=0)


@pytest.fixture(scope="module")
def model(workload):
    m = ApproximateScreeningModel(workload.weights, seed=1)
    m.calibrate(workload.features[:48], target_ratio=0.10)
    return m


class TestConstruction:
    def test_dimensions(self, model):
        assert model.num_labels == 2048
        assert model.hidden_dim == 128
        assert model.shrunk_dim == 32  # 0.25 projection scale

    def test_rejects_bad_weights(self):
        with pytest.raises(WorkloadError):
            ApproximateScreeningModel(np.zeros(10))


class TestCalibration:
    def test_ratio_achieved(self, model, workload):
        stats = model.infer(workload.features[48:])
        assert stats.candidate_ratio == pytest.approx(0.10, abs=0.06)

    def test_threshold_installed(self, model):
        assert model.threshold is not None

    def test_infer_without_threshold_rejected(self, workload):
        fresh = ApproximateScreeningModel(workload.weights, seed=1)
        with pytest.raises(WorkloadError):
            fresh.infer(workload.features[:4])

    def test_set_threshold_overrides(self, workload):
        fresh = ApproximateScreeningModel(workload.weights, seed=1)
        fresh.set_threshold(-1e9)
        stats = fresh.infer(workload.features[:4])
        assert stats.candidate_ratio == pytest.approx(1.0)


class TestAccuracy:
    def test_no_top1_accuracy_drop(self, model, workload):
        """The paper's core claim: screening does not change predictions.

        On cluster-structured workloads the exact top-1 must survive
        screening for (almost) every query.
        """
        agreement = model.top1_agreement(workload.features[48:])
        assert agreement >= 0.95

    def test_topk_recall_high(self, model, workload):
        stats = model.infer(workload.features[48:], top_k=5)
        exact = model.infer_exact(workload.features[48:], top_k=5)
        overlap = [
            len(set(a.tolist()) & set(b.tolist())) / 5
            for a, b in zip(stats.result.top_labels, exact.top_labels)
        ]
        # Top-1 (the prediction) always survives; ranks 2-5 are noise-level
        # ties on synthetic data, so demand a clear majority, not identity.
        assert np.mean(overlap) >= 0.6

    def test_fixed_ratio_mode(self, model, workload):
        stats = model.infer(workload.features[48:52], candidate_ratio=0.05)
        assert stats.candidate_ratio == pytest.approx(0.05, abs=0.005)


class TestComputeReduction:
    def test_flop_reduction_near_10x(self, model, workload):
        """§2.1: the screening algorithm cuts FP32 work to ~10%."""
        stats = model.infer(workload.features[48:])
        assert 6.0 <= stats.flop_reduction <= 16.0

    def test_int4_ops_accounting(self, model, workload):
        stats = model.infer(workload.features[48:56])
        batch = 8
        assert stats.int4_ops == 2 * batch * 2048 * 32

    def test_full_flops_accounting(self, model, workload):
        stats = model.infer(workload.features[48:56])
        assert stats.fp32_flops_full == 2 * 8 * 2048 * 128
        assert stats.fp32_flops < stats.fp32_flops_full
