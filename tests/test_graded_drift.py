"""Tests for graded interleaving and hotness drift."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.layout.graded import GradedInterleaving
from repro.layout.learned import HotnessPredictor, LearnedInterleaving
from repro.layout.placement import build_placement
from repro.layout.uniform import UniformInterleaving
from repro.workloads.drift import (
    DriftingHotnessModel,
    drifted_generator,
    placement_balance_under_drift,
)
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel


class TestGradedInterleaving:
    def test_counts_balanced_per_tile(self):
        rng = np.random.default_rng(0)
        pred = HotnessPredictor(rng.lognormal(0, 1, 64))
        channels = GradedInterleaving(pred).assign_channels(64, 8, 32)
        for start in (0, 32):
            counts = np.bincount(channels[start : start + 32], minlength=8)
            assert counts.max() - counts.min() <= 1

    def test_very_hot_vectors_spread(self):
        scores = np.ones(64)
        scores[:8] = 1000.0
        pred = HotnessPredictor(scores)
        channels = GradedInterleaving(pred).assign_channels(64, 8, 64)
        assert len(set(channels[:8].tolist())) == 8

    def test_length_mismatch_rejected(self):
        pred = HotnessPredictor(np.ones(8))
        with pytest.raises(WorkloadError):
            GradedInterleaving(pred).assign_channels(16, 4, 16)
        with pytest.raises(WorkloadError):
            GradedInterleaving(pred).assign_channels(8, 4, 0)

    def test_graded_between_uniform_and_learned(self):
        """The ablation claim: graded beats uniform, LPT >= graded."""
        hotness = LabelHotnessModel(num_labels=1024, run_length=1, seed=5)
        generator = CandidateTraceGenerator(hotness, candidate_ratio=0.1, query_noise=0.05)
        abs_sums = generator.predictor_abs_sums(0, 1024, fidelity=0.9)
        pred = HotnessPredictor(abs_sums)
        train = generator.tile_trace(0, 1024, num_queries=300, seed=1)
        pred.fine_tune(train.selection_frequency(), observations=300)
        balances = {}
        for name, strategy in (
            ("uniform", UniformInterleaving()),
            ("graded", GradedInterleaving(pred)),
            ("learned", LearnedInterleaving(pred)),
        ):
            placement = build_placement(strategy, 1024, 8, 4096, 4096, tile_vectors=1024)
            trace = generator.tile_trace(0, 1024, num_queries=16, seed=7)
            pages, peak = 0, 0
            for candidates in trace.candidates:
                counts = placement.pages_per_channel(candidates)
                pages += counts.sum()
                peak += counts.max()
            balances[name] = pages / (8 * peak)
        assert balances["graded"] > balances["uniform"]
        assert balances["learned"] >= balances["graded"] - 0.03


class TestDriftModel:
    def test_zero_drift_is_identity(self):
        base = LabelHotnessModel(num_labels=512, seed=1)
        drifting = DriftingHotnessModel(base=base, drift=0.0)
        np.testing.assert_array_equal(
            drifting.tile_weights(0, 256), base.tile_weights(0, 256)
        )

    def test_full_drift_is_independent(self):
        base = LabelHotnessModel(num_labels=512, seed=1)
        drifting = DriftingHotnessModel(base=base, drift=1.0)
        a = base.tile_weights(0, 256)
        b = drifting.tile_weights(0, 256)
        corr = np.corrcoef(np.log(a), np.log(b))[0, 1]
        assert abs(corr) < 0.3

    def test_intermediate_drift_correlates_with_both(self):
        base = LabelHotnessModel(num_labels=512, seed=1)
        half = DriftingHotnessModel(base=base, drift=0.5)
        a = np.log(base.tile_weights(0, 256))
        b = np.log(half.tile_weights(0, 256))
        assert np.corrcoef(a, b)[0, 1] > 0.5

    def test_seed_is_nonnegative_and_drift_dependent(self):
        base = LabelHotnessModel(num_labels=16, seed=1)
        s1 = DriftingHotnessModel(base=base, drift=0.3).seed
        s2 = DriftingHotnessModel(base=base, drift=0.6).seed
        assert s1 >= 0 and s2 >= 0
        assert s1 != s2

    def test_drift_validation(self):
        base = LabelHotnessModel(num_labels=16, seed=1)
        with pytest.raises(WorkloadError):
            DriftingHotnessModel(base=base, drift=1.5)


class TestDriftBalance:
    def test_stale_placement_degrades_with_drift(self):
        base = LabelHotnessModel(num_labels=1024, run_length=1, seed=3)
        base_generator = CandidateTraceGenerator(
            base, candidate_ratio=0.1, query_noise=0.05
        )
        abs_sums = base_generator.predictor_abs_sums(0, 1024, fidelity=0.9)
        pred = HotnessPredictor(abs_sums)
        train = base_generator.tile_trace(0, 1024, num_queries=300, seed=1)
        pred.fine_tune(train.selection_frequency(), observations=300)
        placement = build_placement(
            LearnedInterleaving(pred), 1024, 8, 4096, 4096, tile_vectors=1024
        )
        fresh = placement_balance_under_drift(placement, base, 0.0, 0, 1024)
        stale = placement_balance_under_drift(placement, base, 1.0, 0, 1024)
        assert fresh > 0.85
        assert stale < fresh - 0.1

    def test_drifted_generator_changes_candidates(self):
        base = LabelHotnessModel(num_labels=512, seed=2)
        g0 = drifted_generator(base, 0.0)
        g1 = drifted_generator(base, 1.0)
        c0 = g0.tile_trace(0, 512, num_queries=1)[0] if False else g0.tile_trace(0, 512, num_queries=1).candidates[0]
        c1 = g1.tile_trace(0, 512, num_queries=1).candidates[0]
        overlap = len(np.intersect1d(c0, c1)) / len(c0)
        assert overlap < 0.7
