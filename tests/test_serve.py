"""Tests for the deterministic SLO-aware serving layer (repro.serve)."""

import numpy as np
import pytest

from repro import obs
from repro.core.batching import BatchPoint
from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.obs import SERVE_TRACK
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    AffineServiceModel,
    DeadlineBatcher,
    DegradationLadder,
    DegradeStep,
    Request,
    RequestQueue,
    Router,
    ServingConfig,
    ServingReport,
    TokenBucket,
    build_replicas,
    build_serving_stack,
    saturating_rate,
    shard_hot_degrees,
)
from repro.workloads.streams import poisson_arrivals
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel

#: A fast, pure-Python service model: 0.2 ms base, 0.1 ms/query, knee at 8.
SERVICE = AffineServiceModel(
    base=2e-4, per_query=1e-4, knee=8, candidate_fraction=0.7
)
CONFIG = ServingConfig(slo=0.02, shards=2, replicas=2)


def run_at(multiplier, seed=0, num_queries=2000, config=CONFIG):
    """Fresh stack replaying a Poisson stream at ``multiplier`` x saturation."""
    simulator = build_serving_stack(SERVICE, config)
    rate = multiplier * saturating_rate(SERVICE, config)
    arrivals = poisson_arrivals(rate, num_queries, seed=seed)
    return simulator.run(arrivals)


class TestRequestTypes:
    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(WorkloadError):
            Request(request_id=0, arrival=1.0, deadline=0.5)

    def test_slo_property(self):
        request = Request(request_id=0, arrival=1.0, deadline=1.02)
        assert request.slo == pytest.approx(0.02)

    def test_empty_report_percentile_raises(self):
        report = ServingReport(slo=0.02, arrived=5)
        with pytest.raises(WorkloadError, match="percentiles"):
            report.percentile(99.0)
        assert report.goodput == 0.0
        assert report.slo_attainment == 0.0

    def test_percentile_range_validated(self):
        report = run_at(0.5, num_queries=200)
        with pytest.raises(WorkloadError, match="percentile"):
            report.percentile(101.0)

    def test_to_dict_is_json_safe(self):
        import json

        payload = run_at(0.5, num_queries=200).to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestRequestQueue:
    def _request(self, rid, arrival, tenant="default", priority=0):
        return Request(
            request_id=rid,
            arrival=arrival,
            deadline=arrival + 1.0,
            tenant=tenant,
            priority=priority,
        )

    def test_fifo_within_tenant(self):
        queue = RequestQueue()
        for rid in range(3):
            queue.push(self._request(rid, float(rid)))
        assert [queue.pop().request_id for _ in range(3)] == [0, 1, 2]

    def test_priority_overtakes_between_tenants(self):
        queue = RequestQueue()
        queue.push(self._request(0, 0.0, tenant="a", priority=0))
        queue.push(self._request(1, 1.0, tenant="b", priority=5))
        assert queue.pop().request_id == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            RequestQueue().pop()

    def test_pop_batch_limit(self):
        queue = RequestQueue()
        for rid in range(5):
            queue.push(self._request(rid, float(rid)))
        batch = queue.pop_batch(3)
        assert [r.request_id for r in batch] == [0, 1, 2]
        assert queue.depth == 2
        with pytest.raises(SimulationError):
            queue.pop_batch(0)

    def test_peek_matches_pop(self):
        queue = RequestQueue()
        queue.push(self._request(7, 3.0))
        assert queue.peek().request_id == 7
        assert queue.depth == 1


class TestAdmission:
    def test_token_bucket_refills_on_sim_clock(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        assert bucket.try_take(0.1)  # one token back after 0.1 s

    def test_token_bucket_burst_cap(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        bucket.try_take(100.0)  # long idle: tokens capped at burst
        assert bucket.tokens == pytest.approx(1.0)

    def test_token_bucket_time_backwards_raises(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        bucket.try_take(1.0)
        with pytest.raises(SimulationError):
            bucket.try_take(0.5)

    def test_for_slo_never_below_one_batch_per_replica(self):
        config = AdmissionConfig.for_slo(
            slo=0.001, worst_batch_time=0.0009, knee=8, replicas=2
        )
        assert config.max_pending == 16

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(token_rate=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(max_pending=0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig.for_slo(slo=0.0, worst_batch_time=1.0, knee=8)

    def test_depth_gate_does_not_burn_tokens(self):
        controller = AdmissionController(
            AdmissionConfig(token_rate=1.0, token_burst=1.0, max_pending=1)
        )
        request = Request(request_id=0, arrival=0.0, deadline=1.0)
        assert controller.decide(request, pending=5, now=0.0) == "queue_depth"
        # The depth shed above must not have consumed the single token.
        assert controller.decide(request, pending=0, now=0.0) is None
        controller.verify_conservation()

    def test_conservation_violation_raises(self):
        controller = AdmissionController(AdmissionConfig())
        request = Request(request_id=0, arrival=0.0, deadline=1.0)
        controller.decide(request, pending=0, now=0.0)
        controller.admitted += 1  # tamper with the ledger
        with pytest.raises(SimulationError, match="conservation"):
            controller.verify_conservation()


class TestDegradationLadder:
    def test_hysteresis(self):
        ladder = DegradationLadder(high_watermark=0.6, low_watermark=0.25)
        assert ladder.update(0.7) == 1  # escalate at >= high
        assert ladder.update(0.4) == 1  # hold between watermarks
        assert ladder.update(0.1) == 0  # recover below low
        assert ladder.escalations == 1

    def test_escalation_is_one_step_per_dispatch(self):
        ladder = DegradationLadder()
        ladder.update(1.0)
        assert ladder.level == 1
        ladder.update(1.0)
        assert ladder.level == 2

    def test_step_zero_must_be_full_fidelity(self):
        with pytest.raises(ConfigurationError):
            DegradationLadder(steps=(DegradeStep("dim", candidate_scale=0.5),))

    def test_candidate_scales_must_not_increase(self):
        steps = (
            DegradeStep("full"),
            DegradeStep("low", candidate_scale=0.4),
            DegradeStep("back-up", candidate_scale=0.8),
        )
        with pytest.raises(ConfigurationError):
            DegradationLadder(steps=steps)

    def test_default_ladder_floor_respects_sensitivity_bound(self):
        ladder = DegradationLadder()
        assert ladder.steps[-1].candidate_scale >= 0.25


class TestRouter:
    def test_route_prefers_least_outstanding_then_lowest_index(self):
        router = Router(build_replicas(2, [1.0]), SERVICE)
        first = router.route()
        assert first.index == 0  # tie at zero outstanding -> lowest index
        router.acquire(first, 4)
        assert router.route().index == 1

    def test_route_none_when_pipelines_full(self):
        router = Router(build_replicas(1, [1.0]), SERVICE, pipeline_depth=1)
        router.acquire(router.route(), 4)
        assert router.route() is None
        assert not router.has_capacity()

    def test_release_guards(self):
        router = Router(build_replicas(1, [1.0]), SERVICE)
        replica = router.replicas[0]
        with pytest.raises(SimulationError):
            router.release(replica, 1)

    def test_fanout_batch_time_is_slowest_shard_plus_merge(self):
        # Two equal shards each hold half the labels: the variable term
        # halves, and the host merge adds its transfer on top.
        router = Router(build_replicas(1, [1.0, 1.0]), SERVICE)
        replica = router.replicas[0]
        batch = 8
        shard_only = SERVICE.batch_time(batch, work_fraction=0.5)
        total = router.batch_time_on(replica, batch)
        assert total == pytest.approx(shard_only + router.merge_time(batch))

    def test_hot_shard_slows_its_group(self):
        cool = Router(build_replicas(1, [1.0, 1.0]), SERVICE)
        skew = Router(build_replicas(1, [1.6, 0.4]), SERVICE)
        assert skew.worst_batch_time(8) > cool.worst_batch_time(8)

    def test_shard_hot_degrees_normalized_and_deterministic(self):
        hotness = LabelHotnessModel(num_labels=32768, run_length=1, seed=3)
        generator = CandidateTraceGenerator(
            hotness, candidate_ratio=0.10, query_noise=0.05
        )
        degrees = shard_hot_degrees(generator, num_shards=4, tile_size=256)
        again = shard_hot_degrees(generator, num_shards=4, tile_size=256)
        assert degrees == again
        assert np.mean(degrees) == pytest.approx(1.0)
        assert all(d > 0 for d in degrees)


class TestScheduler:
    def test_affine_fit_recovers_parameters(self):
        base, per_query = 1e-3, 2e-4
        points = [
            BatchPoint(
                batch=b,
                batch_time=base + per_query * b,
                queries_per_second=b / (base + per_query * b),
                compute_bound_fraction=0.0,
                queue_wait=0.0,
            )
            for b in (1, 2, 4, 8, 16)
        ]
        model = AffineServiceModel.from_batch_points(points)
        assert model.base == pytest.approx(base)
        assert model.per_query == pytest.approx(per_query)

    def test_batch_time_scales(self):
        full = SERVICE.batch_time(8)
        degraded = SERVICE.batch_time(8, candidate_scale=0.25)
        half_shard = SERVICE.batch_time(8, work_fraction=0.5)
        assert degraded < full
        assert half_shard < full
        # Only the candidate-dependent share shrinks under degradation.
        variable = SERVICE.per_query * 8
        expected = SERVICE.base + variable * (0.3 + 0.7 * 0.25)
        assert degraded == pytest.approx(expected)

    def test_form_batch_never_exceeds_knee(self):
        batcher = DeadlineBatcher(SERVICE, close_margin=0.005)
        queue = RequestQueue()
        for rid in range(SERVICE.knee * 3):
            queue.push(
                Request(request_id=rid, arrival=0.0, deadline=1.0)
            )
        assert len(batcher.form_batch(queue)) == SERVICE.knee

    def test_should_close_on_knee_or_slack(self):
        batcher = DeadlineBatcher(SERVICE, close_margin=0.005)
        queue = RequestQueue()
        queue.push(Request(request_id=0, arrival=0.0, deadline=0.02))
        assert not batcher.should_close(queue, now=0.0)
        assert batcher.should_close(queue, now=0.015)  # slack exhausted
        for rid in range(1, SERVICE.knee):
            queue.push(Request(request_id=rid, arrival=0.0, deadline=0.02))
        assert batcher.should_close(queue, now=0.0)  # knee reached


class TestServingProperties:
    def test_conservation_across_rates(self):
        for multiplier in (0.5, 1.0, 2.0, 4.0):
            report = run_at(multiplier, num_queries=1500)
            assert report.admitted + report.shed_count == report.arrived
            assert len(report.completed) == report.admitted

    def test_determinism_bit_identical(self):
        first = run_at(2.0, seed=11)
        second = run_at(2.0, seed=11)
        np.testing.assert_array_equal(first.latencies(), second.latencies())
        assert [s.request.request_id for s in first.shed] == [
            s.request.request_id for s in second.shed
        ]
        assert [b.size for b in first.batches] == [
            b.size for b in second.batches
        ]
        assert first.p99 == second.p99

    def test_shed_rate_monotone_in_offered_load(self):
        rates = (0.5, 1.0, 2.0, 4.0, 8.0)
        shed = [run_at(m, num_queries=1500).shed_rate for m in rates]
        assert all(a <= b + 1e-12 for a, b in zip(shed, shed[1:]))
        assert shed[0] == 0.0
        assert shed[-1] > 0.0

    def test_batches_never_exceed_knee(self):
        report = run_at(4.0)
        assert max(b.size for b in report.batches) <= SERVICE.knee

    def test_overload_keeps_admitted_p99_within_slo(self):
        baseline = run_at(1.0)
        overload = run_at(2.0)
        assert overload.p99 <= CONFIG.slo
        assert overload.slo_attainment == pytest.approx(1.0)
        # Degradation engaged, shedding explicit, goodput degrades
        # gracefully (no collapse below the saturated baseline).
        assert overload.max_degrade_level >= 1
        assert overload.shed_rate > 0.0
        assert overload.goodput >= 0.8 * baseline.goodput

    def test_light_load_dispatches_eagerly(self):
        report = run_at(0.1, num_queries=300)
        # An idle cluster should not hold requests for a full knee batch.
        assert report.p50 < 2.0 * SERVICE.knee_batch_time
        assert report.shed_rate == 0.0

    def test_token_bucket_gate_sheds_with_reason(self):
        config = ServingConfig(
            slo=0.02, shards=2, replicas=2, token_rate=1000.0
        )
        simulator = build_serving_stack(SERVICE, config)
        arrivals = poisson_arrivals(4000.0, 800, seed=5)
        report = simulator.run(arrivals)
        assert report.shed_by_reason().get("token_bucket", 0) > 0
        assert report.admitted + report.shed_count == report.arrived

    def test_priority_tenant_overtakes_the_backlog(self):
        # 40 simultaneous arrivals on 2 replica groups: batches 0 and 1 take
        # the first 16 requests; the high-priority tenant's tail (ids 32-39)
        # must jump the 16 queued low-priority requests into the next
        # dispatch.  (Queues stay FIFO *within* a tenant, so the overtaking
        # requests need their own tenant.)
        config = ServingConfig(
            slo=0.02, shards=2, replicas=2, eager_when_idle=False
        )
        simulator = build_serving_stack(SERVICE, config)
        arrivals = np.full(40, 0.0)
        tenants = ["urgent" if i >= 32 else "batch" for i in range(40)]
        priorities = [1 if i >= 32 else 0 for i in range(40)]
        report = simulator.run(arrivals, tenants=tenants, priorities=priorities)
        third = report.batches[2]
        members = sorted(
            c.request.request_id
            for c in report.completed
            if c.dispatch_time == third.start and c.replica == third.replica
        )
        assert members == list(range(32, 40))

    def test_run_input_validation(self):
        simulator = build_serving_stack(SERVICE, CONFIG)
        with pytest.raises(WorkloadError):
            simulator.run([])
        with pytest.raises(WorkloadError):
            simulator.run([1.0, 0.5])
        with pytest.raises(WorkloadError):
            simulator.run([0.0, 1.0], tenants=["a"])

    def test_slo_too_tight_for_knee_batch_raises(self):
        with pytest.raises(ConfigurationError, match="SLO"):
            build_serving_stack(SERVICE, ServingConfig(slo=1e-4))

    def test_hot_degrees_must_match_shards(self):
        with pytest.raises(ConfigurationError):
            build_serving_stack(
                SERVICE, ServingConfig(slo=0.02, shards=2), hot_degrees=[1.0]
            )

    def test_saturating_rate_scales_with_replicas(self):
        one = saturating_rate(SERVICE, ServingConfig(slo=0.02, replicas=1))
        two = saturating_rate(SERVICE, ServingConfig(slo=0.02, replicas=2))
        assert two == pytest.approx(2.0 * one)


class TestServeObservability:
    def test_metrics_and_spans_recorded(self):
        with obs.configure(install=True) as session:
            report = run_at(1.0, num_queries=400)
            batches = session.registry.get("serve_batches_total")
            requests = session.registry.get("serve_requests_total")
            latency = session.registry.get("serve_request_latency_seconds")
            assert sum(v for _, v in batches.samples()) == len(report.batches)
            assert sum(v for _, v in requests.samples()) == 400
            observed = sum(state.count for _, state in latency.states())
            assert observed == len(report.completed)
            assert SERVE_TRACK in session.tracer.tracks()

    def test_disabled_observability_is_bit_identical(self):
        quiet = run_at(2.0, seed=9)
        with obs.configure(install=True):
            traced = run_at(2.0, seed=9)
        np.testing.assert_array_equal(quiet.latencies(), traced.latencies())
