"""Tests for the alignment-free MAC datapath (repro.cfp32.mac)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfp32.format import prealign
from repro.cfp32.mac import AlignmentFreeMac, MacTrace, dot_cfp32, reference_dot
from repro.errors import FormatError


class TestDot:
    def test_exact_on_lossless_vectors(self):
        x = np.array([1.0, 2.0, -0.5, 4.0], dtype=np.float32)
        w = np.array([0.5, 1.5, 2.0, -1.0], dtype=np.float32)
        assert dot_cfp32(x, w) == reference_dot(x, w)

    def test_matches_reference_on_local_data(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            x = (rng.normal(size=128) * np.exp(rng.normal(0, 0.3, 128))).astype(
                np.float32
            )
            w = (rng.normal(size=128) * np.exp(rng.normal(0, 0.3, 128))).astype(
                np.float32
            )
            got = dot_cfp32(x, w)
            want = reference_dot(x, w)
            assert got == pytest.approx(want, rel=1e-5, abs=1e-9)

    def test_zero_vectors(self):
        z = np.zeros(8, dtype=np.float32)
        assert dot_cfp32(z, z) == 0.0

    def test_trace_fields(self):
        x = np.ones(4, dtype=np.float32)
        trace = AlignmentFreeMac().dot(prealign(x), prealign(x))
        assert isinstance(trace, MacTrace)
        assert trace.products == 4
        assert trace.result == pytest.approx(4.0)
        # Each mantissa is 1 << 30; accumulator = 4 * 2^60.
        assert trace.accumulator == 4 * (1 << 60)

    def test_length_mismatch_rejected(self):
        mac = AlignmentFreeMac()
        with pytest.raises(FormatError):
            mac.dot(prealign(np.ones(3, dtype=np.float32)),
                    prealign(np.ones(4, dtype=np.float32)))

    def test_accumulator_is_integer_exact(self):
        """Unlike float adder trees, the integer accumulator has no
        catastrophic cancellation: alternating +/- huge values cancel
        exactly."""
        big = np.float32(2.0**20)
        x = np.array([big, -big, 1.0], dtype=np.float32)
        w = np.ones(3, dtype=np.float32)
        # Within the pre-alignment precision window, 1.0 is 20 shifts below
        # 2^20 — beyond compensation, so it truncates deterministically.
        got = dot_cfp32(x, w)
        assert got == pytest.approx(1.0, abs=2.0 ** (20 - 30))

    def test_matvec(self):
        rng = np.random.default_rng(1)
        W = rng.normal(size=(5, 16)).astype(np.float32)
        x = rng.normal(size=16).astype(np.float32)
        mac = AlignmentFreeMac()
        rows = [prealign(row) for row in W]
        got = mac.matvec(rows, prealign(x))
        want = W.astype(np.float64) @ x.astype(np.float64)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-7)


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_relative_error_tracks_value_locality(self, seed):
        """For vectors whose exponents span <= 7, the MAC result matches the
        FP64 reference to float32-level precision."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        x = (rng.choice([-1, 1], n) * (1 + rng.random(n)) * 2.0 ** rng.integers(0, 7, n)).astype(np.float32)
        w = (rng.choice([-1, 1], n) * (1 + rng.random(n)) * 2.0 ** rng.integers(0, 7, n)).astype(np.float32)
        got = dot_cfp32(x, w)
        want = reference_dot(x, w)
        assert got == pytest.approx(want, rel=1e-6, abs=1e-6)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_commutes(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=32).astype(np.float32)
        w = rng.normal(size=32).astype(np.float32)
        assert dot_cfp32(x, w) == dot_cfp32(w, x)
