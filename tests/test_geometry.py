"""Tests for flash geometry and address conversion (repro.ssd.geometry)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FlashConfig
from repro.errors import AddressError
from repro.ssd.geometry import FlashGeometry, LogicalAddress, PhysicalAddress


def small_config() -> FlashConfig:
    return FlashConfig(
        channels=4,
        packages_per_channel=2,
        dies_per_package=2,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
    )


@pytest.fixture
def geometry() -> FlashGeometry:
    return FlashGeometry(small_config())


class TestAddresses:
    def test_logical_rejects_negative(self):
        with pytest.raises(AddressError):
            LogicalAddress(-1)

    def test_physical_rejects_negative(self):
        with pytest.raises(AddressError):
            PhysicalAddress(0, 0, 0, 0, -1, 0)

    def test_addresses_are_ordered(self):
        assert LogicalAddress(1) < LogicalAddress(2)
        assert PhysicalAddress(0, 0, 0, 0, 0, 1) < PhysicalAddress(0, 0, 0, 0, 0, 2)


class TestConversions:
    def test_zero_maps_to_origin(self, geometry):
        assert geometry.to_physical(0) == PhysicalAddress(0, 0, 0, 0, 0, 0)

    def test_last_page(self, geometry):
        last = geometry.total_pages - 1
        addr = geometry.to_physical(last)
        cfg = geometry.config
        assert addr.channel == cfg.channels - 1
        assert addr.page == cfg.pages_per_block - 1

    def test_channel_major_layout(self, geometry):
        # Page index pages_per_channel lands at the start of channel 1.
        addr = geometry.to_physical(geometry.pages_per_channel)
        assert addr == PhysicalAddress(1, 0, 0, 0, 0, 0)

    def test_out_of_range_rejected(self, geometry):
        with pytest.raises(AddressError):
            geometry.to_physical(geometry.total_pages)
        with pytest.raises(AddressError):
            geometry.to_physical(-1)

    def test_to_flat_checks_fanout(self, geometry):
        with pytest.raises(AddressError):
            geometry.to_flat(PhysicalAddress(99, 0, 0, 0, 0, 0))

    @given(st.integers(min_value=0, max_value=4 * 2 * 2 * 2 * 8 * 16 - 1))
    @settings(max_examples=200)
    def test_roundtrip(self, flat):
        geometry = FlashGeometry(small_config())
        assert geometry.to_flat(geometry.to_physical(flat)) == flat

    @given(
        st.integers(0, 3),
        st.integers(0, 1),
        st.integers(0, 1),
        st.integers(0, 1),
        st.integers(0, 7),
        st.integers(0, 15),
    )
    @settings(max_examples=200)
    def test_roundtrip_structured(self, ch, pkg, die, plane, block, page):
        geometry = FlashGeometry(small_config())
        addr = PhysicalAddress(ch, pkg, die, plane, block, page)
        assert geometry.to_physical(geometry.to_flat(addr)) == addr


class TestDerivedViews:
    def test_channel_of_matches_decode(self, geometry):
        for flat in range(0, geometry.total_pages, 97):
            assert geometry.channel_of(flat) == geometry.to_physical(flat).channel

    def test_channel_of_bounds(self, geometry):
        with pytest.raises(AddressError):
            geometry.channel_of(geometry.total_pages)

    def test_die_index_is_global(self, geometry):
        # First page of channel 1 starts a new die index block.
        per_die = geometry.config.pages_per_die
        assert geometry.die_index_of(0) == 0
        assert geometry.die_index_of(per_die) == 1

    def test_channel_page_range(self, geometry):
        r = geometry.channel_page_range(1)
        assert r.start == geometry.pages_per_channel
        assert len(r) == geometry.pages_per_channel
        with pytest.raises(AddressError):
            geometry.channel_page_range(99)

    def test_iter_channels(self, geometry):
        assert list(geometry.iter_channels()) == [0, 1, 2, 3]

    def test_pages_for_bytes(self, geometry):
        page = geometry.page_size
        assert geometry.pages_for_bytes(0) == 0
        assert geometry.pages_for_bytes(1) == 1
        assert geometry.pages_for_bytes(page) == 1
        assert geometry.pages_for_bytes(page + 1) == 2
        with pytest.raises(AddressError):
            geometry.pages_for_bytes(-1)
