"""Tests for the NAND die and channel models (repro.ssd.nand, .channel)."""

import pytest

from repro.config import FlashConfig
from repro.errors import SimulationError
from repro.ssd.channel import Channel
from repro.ssd.nand import Die, FlashOperation, NandTiming
from repro.units import us


def config() -> FlashConfig:
    return FlashConfig(
        channels=2,
        packages_per_channel=2,
        dies_per_package=2,
        planes_per_die=2,
        blocks_per_plane=4,
        pages_per_block=8,
        read_latency=us(30),
        program_latency=us(660),
        erase_latency=us(3500),
    )


class TestNandTiming:
    def test_from_config(self):
        t = NandTiming.from_config(config())
        assert t.read == pytest.approx(us(30))
        assert t.program == pytest.approx(us(660))
        assert t.erase == pytest.approx(us(3500))

    def test_latency_dispatch(self):
        t = NandTiming.from_config(config())
        assert t.latency(FlashOperation.READ) == t.read
        assert t.latency(FlashOperation.PROGRAM) == t.program
        assert t.latency(FlashOperation.ERASE) == t.erase


class TestDie:
    def test_read_occupies_die(self):
        die = Die(0, NandTiming.from_config(config()))
        start, end = die.execute(0.0, FlashOperation.READ)
        assert (start, end) == (0.0, pytest.approx(us(30)))
        start2, end2 = die.execute(0.0, FlashOperation.READ)
        assert start2 == pytest.approx(us(30))

    def test_counters(self):
        die = Die(0, NandTiming.from_config(config()))
        die.execute(0.0, FlashOperation.READ)
        die.execute(0.0, FlashOperation.PROGRAM)
        die.execute(0.0, FlashOperation.ERASE)
        assert (die.reads, die.programs, die.erases) == (1, 1, 1)

    def test_reset(self):
        die = Die(0, NandTiming.from_config(config()))
        die.execute(0.0, FlashOperation.READ)
        die.reset()
        assert die.reads == 0
        assert die.free_at == 0.0


class TestChannel:
    def test_read_page_sense_then_transfer(self):
        ch = Channel(0, config())
        start, end = ch.read_page(0.0, die_index=0)
        # End = sense + bus transfer of one 4 KiB page at 1 GB/s.
        assert end == pytest.approx(us(30) + 4096 / 1e9)

    def test_parallel_senses_serial_transfers(self):
        ch = Channel(0, config())
        ends = [ch.read_page(0.0, die_index=d)[1] for d in range(4)]
        # All four dies sense concurrently; transfers queue on the bus.
        page = 4096 / 1e9
        for i, end in enumerate(sorted(ends)):
            assert end == pytest.approx(us(30) + (i + 1) * page)

    def test_same_die_reads_serialize_senses(self):
        # The second sense waits for the first (one array op at a time);
        # its transfer then starts as soon as both sense and bus are free.
        ch = Channel(0, config())
        ch.read_page(0.0, die_index=0)
        _, end = ch.read_page(0.0, die_index=0)
        assert end == pytest.approx(2 * us(30) + 4096 / 1e9, rel=1e-6)

    def test_program_transfers_then_programs(self):
        ch = Channel(0, config())
        start, end = ch.program_page(0.0, die_index=1)
        assert end == pytest.approx(4096 / 1e9 + us(660))

    def test_erase_skips_bus(self):
        ch = Channel(0, config())
        _, end = ch.erase_block(0.0, die_index=2)
        assert end == pytest.approx(us(3500))
        assert ch.bus.busy_time == 0.0

    def test_accounting(self):
        ch = Channel(0, config())
        ch.read_page(0.0, 0)
        ch.program_page(0.0, 1)
        assert ch.pages_transferred == 2
        assert ch.bytes_transferred == 2 * 4096

    def test_bad_die_rejected(self):
        ch = Channel(0, config())
        with pytest.raises(SimulationError):
            ch.read_page(0.0, die_index=99)

    def test_free_at_covers_dies_and_bus(self):
        ch = Channel(0, config())
        _, end = ch.program_page(0.0, die_index=0)
        assert ch.free_at == pytest.approx(end)

    def test_bus_utilization(self):
        ch = Channel(0, config())
        _, end = ch.read_page(0.0, 0)
        util = ch.bus_utilization(end)
        assert 0 < util < 1

    def test_reset(self):
        ch = Channel(0, config())
        ch.read_page(0.0, 0)
        ch.reset()
        assert ch.pages_transferred == 0
        assert ch.free_at == 0.0
