"""Tests for threshold calibration and candidate-only classification."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.screening.classifier import CandidateClassifier
from repro.screening.quantization import Int4Quantizer
from repro.screening.screener import Int4Screener
from repro.screening.thresholds import ThresholdCalibrator, calibrate_threshold


def setup(num_labels=300, dim=32, queries=40, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(num_labels, dim)).astype(np.float32)
    features = rng.normal(size=(queries, dim)).astype(np.float32)
    screener = Int4Screener(Int4Quantizer().quantize(weights))
    return screener, weights, features


class TestCalibrateThreshold:
    def test_achieves_target_ratio(self):
        screener, _, features = setup()
        threshold = calibrate_threshold(screener, features, target_ratio=0.10)
        result = screener.screen(features, threshold=threshold)
        assert result.candidate_ratio() == pytest.approx(0.10, abs=0.04)

    def test_lower_ratio_means_higher_threshold(self):
        screener, _, features = setup()
        t10 = calibrate_threshold(screener, features, target_ratio=0.10)
        t50 = calibrate_threshold(screener, features, target_ratio=0.50)
        assert t10 > t50

    def test_invalid_ratio(self):
        screener, _, features = setup()
        with pytest.raises(WorkloadError):
            calibrate_threshold(screener, features, target_ratio=0.0)


class TestThresholdCalibrator:
    def test_report_fields(self):
        screener, weights, features = setup()
        exact = features @ weights.T
        report = ThresholdCalibrator(screener, top_k=5).calibrate(
            features, exact, target_ratio=0.15
        )
        assert report.queries == 40
        assert report.target_ratio == 0.15
        assert 0.0 <= report.topk_recall <= 1.0
        assert report.achieved_ratio == pytest.approx(0.15, abs=0.05)

    def test_recall_is_one_when_everything_kept(self):
        screener, weights, features = setup()
        exact = features @ weights.T
        report = ThresholdCalibrator(screener, top_k=5).calibrate(
            features, exact, target_ratio=1.0
        )
        assert report.topk_recall == 1.0

    def test_batch_mismatch_rejected(self):
        screener, weights, features = setup()
        exact = features[:5] @ weights.T
        with pytest.raises(WorkloadError):
            ThresholdCalibrator(screener).calibrate(features, exact)

    def test_invalid_topk(self):
        screener, _, _ = setup()
        with pytest.raises(WorkloadError):
            ThresholdCalibrator(screener, top_k=0)


class TestCandidateClassifier:
    def test_ranks_candidates_exactly(self):
        _, weights, features = setup(queries=4)
        clf = CandidateClassifier(weights)
        candidates = [np.arange(300)] * 4
        result = clf.classify(features, candidates, top_k=3)
        exact = features @ weights.T
        for i in range(4):
            np.testing.assert_array_equal(
                result.top_labels[i], np.argsort(exact[i])[::-1][:3]
            )

    def test_restricting_candidates_restricts_output(self):
        _, weights, features = setup(queries=2)
        clf = CandidateClassifier(weights)
        allowed = np.array([5, 10, 15], dtype=np.int64)
        result = clf.classify(features, [allowed, allowed], top_k=3)
        assert set(result.top_labels.ravel()) <= set(allowed.tolist())

    def test_padding_when_fewer_candidates_than_k(self):
        _, weights, features = setup(queries=1)
        clf = CandidateClassifier(weights)
        result = clf.classify(features, [np.array([7])], top_k=5)
        assert result.top_labels[0, 0] == 7
        assert (result.top_labels[0, 1:] == -1).all()
        assert np.isneginf(result.top_scores[0, 1:]).all()

    def test_empty_candidate_set(self):
        _, weights, features = setup(queries=1)
        clf = CandidateClassifier(weights)
        result = clf.classify(features, [np.array([], dtype=np.int64)], top_k=2)
        assert (result.top_labels == -1).all()
        assert result.flops == 0

    def test_flops_accounting(self):
        _, weights, features = setup(queries=2, dim=32)
        clf = CandidateClassifier(weights)
        result = clf.classify(features, [np.arange(10), np.arange(20)], top_k=1)
        assert result.flops == 2 * (10 + 20) * 32

    def test_out_of_range_candidates_rejected(self):
        _, weights, features = setup(queries=1)
        clf = CandidateClassifier(weights)
        with pytest.raises(WorkloadError):
            clf.classify(features, [np.array([999])])

    def test_classify_full_matches_manual(self):
        _, weights, features = setup(queries=3)
        clf = CandidateClassifier(weights)
        full = clf.classify_full(features, top_k=1)
        exact = features @ weights.T
        np.testing.assert_array_equal(full.top_labels[:, 0], exact.argmax(axis=1))

    def test_shape_validation(self):
        _, weights, features = setup()
        clf = CandidateClassifier(weights)
        with pytest.raises(WorkloadError):
            clf.classify(features[:, :8], [np.arange(5)] * 40)
        with pytest.raises(WorkloadError):
            clf.classify(features, [np.arange(5)])  # wrong count
        with pytest.raises(WorkloadError):
            clf.classify(features, [np.arange(5)] * 40, top_k=0)
        with pytest.raises(WorkloadError):
            CandidateClassifier(np.zeros(5))
