"""Tests for the batching analyzer and the flash command trace."""

import numpy as np
import pytest

from repro.core.batching import BatchingAnalyzer, BatchPoint, optimal_batch
from repro.config import FlashConfig
from repro.errors import ConfigurationError, SimulationError
from repro.ssd.channel import Channel
from repro.ssd.controller import CommandKind, FlashCommand, FlashController
from repro.ssd.geometry import FlashGeometry, PhysicalAddress
from repro.ssd.trace import CommandTrace, TraceEvent, TracingController
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.traces import CandidateTraceGenerator, LabelHotnessModel


@pytest.fixture(scope="module")
def analyzer():
    spec = get_benchmark("GNMT-E32K")
    hotness = LabelHotnessModel(num_labels=spec.num_labels, run_length=1, seed=3)
    generator = CandidateTraceGenerator(hotness, candidate_ratio=0.1, query_noise=0.05)
    return BatchingAnalyzer(spec, generator, sample_tiles=4)


class TestBatching:
    def test_throughput_rises_with_batch_until_compute_bound(self, analyzer):
        points = analyzer.sweep([1, 4, 16, 64])
        qps = [p.queries_per_second for p in points]
        assert qps[1] > qps[0]
        assert qps[2] > qps[1]
        # Throughput saturates once compute dominates.
        assert points[-1].compute_bound_fraction == 1.0
        assert qps[3] < qps[2] * 4  # sub-linear growth past the corner

    def test_small_batches_memory_bound(self, analyzer):
        point = analyzer.evaluate(1)
        assert point.compute_bound_fraction == 0.0

    def test_queue_wait_scales_with_batch(self, analyzer):
        slow = analyzer.evaluate(16, arrival_rate=100.0)
        fast = analyzer.evaluate(4, arrival_rate=100.0)
        assert slow.queue_wait > fast.queue_wait
        assert slow.mean_latency == pytest.approx(
            slow.queue_wait + slow.batch_time
        )

    def test_validation(self, analyzer):
        with pytest.raises(ConfigurationError):
            analyzer.evaluate(0)
        with pytest.raises(ConfigurationError):
            analyzer.evaluate(4, arrival_rate=-1)

    def test_optimal_batch_prefers_small_near_peak(self):
        points = [
            BatchPoint(4, 1.0, 100.0, 0.0, 0.0),
            BatchPoint(8, 1.0, 199.0, 0.5, 0.0),
            BatchPoint(16, 1.0, 200.0, 1.0, 0.0),
            BatchPoint(32, 1.0, 200.5, 1.0, 0.0),
        ]
        # 199 q/s is within 2% of the 200.5 peak, so batch 8 wins the tie.
        assert optimal_batch(points).batch == 8
        with pytest.raises(ConfigurationError):
            optimal_batch([])


def tiny_flash() -> FlashConfig:
    return FlashConfig(
        channels=1, packages_per_channel=2, dies_per_package=2,
        planes_per_die=1, blocks_per_plane=4, pages_per_block=8,
    )


def make_tracer():
    cfg = tiny_flash()
    trace = CommandTrace()
    controller = FlashController(Channel(0, cfg), FlashGeometry(cfg))
    return TracingController(controller, trace), trace


def read(pkg, die, page=0):
    return FlashCommand(CommandKind.READ, PhysicalAddress(0, pkg, die, 0, 0, page))


class TestCommandTrace:
    def test_events_recorded(self):
        tracer, trace = make_tracer()
        tracer.submit(0.0, [read(0, 0), read(1, 1)])
        assert len(trace) == 2
        assert trace.per_channel_counts() == {0: 2}
        assert trace.per_die_counts() == {(0, 0, 0): 1, (0, 1, 1): 1}

    def test_makespan_and_latency(self):
        tracer, trace = make_tracer()
        result = tracer.submit(0.0, [read(0, 0), read(0, 1)])
        assert trace.makespan() == pytest.approx(result.finish)
        assert trace.mean_latency(CommandKind.READ) > 0
        with pytest.raises(SimulationError):
            trace.mean_latency(CommandKind.ERASE)

    def test_queue_depth(self):
        tracer, trace = make_tracer()
        tracer.submit(0.0, [read(p, d) for p in range(2) for d in range(2)])
        # All four senses overlap -> depth reaches 4.
        assert trace.max_queue_depth() == 4

    def test_busy_fraction(self):
        tracer, trace = make_tracer()
        tracer.submit(0.0, [read(0, 0), read(1, 0)])
        assert 0.9 < trace.busy_fraction(0) <= 1.0
        assert trace.busy_fraction(5) == 0.0

    def test_empty_trace(self):
        trace = CommandTrace()
        assert trace.makespan() == 0.0
        assert trace.max_queue_depth() == 0

    def test_event_fields(self):
        event = TraceEvent(0, 1, 2, 3, CommandKind.READ, 1.0, 2.5)
        assert event.latency == 1.5
        assert event.die_key == (1, 2, 3)
