"""Tests for streaming telemetry (repro.obs.streaming) and the tracer cap."""

import json

import pytest

from repro import ObservabilityConfig, obs
from repro.errors import ConfigurationError, ObservabilityError
from repro.obs import (
    JsonlSpanWriter,
    SpanReservoir,
    StreamingSpanSink,
    Tracer,
    WindowedAggregator,
    read_jsonl_spans,
    spans_to_chrome_events,
    to_chrome_trace,
    to_jsonl,
)
from repro.serve import (
    AffineServiceModel,
    ServingConfig,
    build_serving_stack,
    saturating_rate,
)
from repro.workloads.streams import poisson_arrivals


@pytest.fixture(autouse=True)
def _restore_globals():
    registry, tracer = obs.get_registry(), obs.get_tracer()
    yield
    obs.set_registry(registry)
    obs.set_tracer(tracer)


def _spans(tracer, count, dt=0.01):
    for i in range(count):
        tracer.add_span(f"op{i}", i * dt, i * dt + dt / 2, track="t")


# --- JSONL writer ------------------------------------------------------------------
class TestJsonlSpanWriter:
    def test_flushes_on_threshold(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        writer = JsonlSpanWriter(path, flush_threshold=4)
        tracer = Tracer()
        _spans(tracer, 10)
        for span in tracer.spans:
            writer.write(span)
        assert writer.flushes == 2  # two full buffers of 4; 2 still buffered
        assert writer.lines_written == 8
        writer.close()
        assert writer.lines_written == 10
        assert len(read_jsonl_spans(path)) == 10

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlSpanWriter(str(tmp_path / "s.jsonl"))
        writer.close()
        tracer = Tracer()
        _spans(tracer, 1)
        with pytest.raises(ObservabilityError):
            writer.write(tracer.spans[0])
        writer.close()  # idempotent

    def test_file_byte_identical_to_in_memory_export(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        streamed = Tracer()
        streamed.attach_sink(StreamingSpanSink(path=path, flush_threshold=3))
        _spans(streamed, 11)
        streamed.sink.close()

        in_memory = Tracer()
        _spans(in_memory, 11)
        with open(path, "r", encoding="utf-8") as fh:
            assert fh.read() == to_jsonl(in_memory)

    def test_rejects_bad_threshold(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JsonlSpanWriter(str(tmp_path / "s.jsonl"), flush_threshold=0)


# --- reservoir ---------------------------------------------------------------------
class TestSpanReservoir:
    def test_keeps_everything_under_capacity(self):
        tracer = Tracer()
        _spans(tracer, 5)
        reservoir = SpanReservoir(capacity=8, seed=1)
        for span in tracer.spans:
            reservoir.offer(span)
        assert [s.name for s in reservoir.sample()] == [
            f"op{i}" for i in range(5)
        ]

    def test_deterministic_and_order_stable(self):
        def fill(seed):
            tracer = Tracer()
            _spans(tracer, 500)
            reservoir = SpanReservoir(capacity=16, seed=seed)
            for span in tracer.spans:
                reservoir.offer(span)
            return reservoir

        a, b, c = fill(7), fill(7), fill(8)
        assert a.sample_indices() == b.sample_indices()
        assert [s.name for s in a.sample()] == [s.name for s in b.sample()]
        assert a.sample_indices() != c.sample_indices()  # seed matters
        assert a.sample_indices() == sorted(a.sample_indices())
        assert len(a) == 16
        assert a.offered == 500

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            SpanReservoir(capacity=0)


# --- windowed aggregation ----------------------------------------------------------
class TestWindowedAggregator:
    def test_bounded_matches_unbounded_byte_identical(self):
        tracer = Tracer()
        _spans(tracer, 2_000, dt=0.003)
        bounded = WindowedAggregator(window_s=0.01, max_windows=4)
        unbounded = WindowedAggregator(window_s=0.01, max_windows=10**9)
        for span in tracer.spans:
            bounded.observe_span(span)
            unbounded.observe_span(span)
        assert bounded.live_windows <= 4
        assert unbounded.live_windows > 4
        assert bounded.to_json() == unbounded.to_json()

    def test_straggler_behind_fold_horizon_still_counted(self):
        aggregator = WindowedAggregator(window_s=1.0, max_windows=2)
        for t in range(6):
            aggregator.observe(float(t), 0.5)
        aggregator.observe(0.1, 0.5)  # window 0 folded long ago
        assert aggregator.merged().count == 7
        assert aggregator.events == 7

    def test_skips_instants_and_unclocked_spans(self):
        tracer = Tracer()
        tracer.instant("gc", sim_time=1.0)
        with tracer.span("wall-only"):
            pass
        aggregator = WindowedAggregator(window_s=1.0)
        for span in tracer.spans:
            aggregator.observe_span(span)
        assert aggregator.merged().count == 0
        assert aggregator.to_dict()["p99"] is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedAggregator(window_s=0.0)
        with pytest.raises(ConfigurationError):
            WindowedAggregator(window_s=1.0, max_windows=0)
        with pytest.raises(ConfigurationError):
            WindowedAggregator(window_s=1.0, buckets=(2.0, 1.0))


# --- composite sink + tracer cap ---------------------------------------------------
class TestStreamingSpanSink:
    def test_requires_at_least_one_stage(self):
        with pytest.raises(ConfigurationError):
            StreamingSpanSink()

    def test_all_stages_see_every_span(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        sink = StreamingSpanSink(
            path=path, reservoir=4, seed=0, window_s=0.01
        )
        tracer = Tracer()
        tracer.attach_sink(sink)
        _spans(tracer, 50)
        sink.close()
        assert sink.emitted == 50
        assert sink.reservoir.offered == 50
        assert sink.aggregator.events == 50
        assert len(read_jsonl_spans(path)) == 50
        assert tracer.spans == []  # nothing retained in memory

    def test_tracer_cap_raises_without_sink(self):
        tracer = Tracer(max_spans=5)
        _spans(tracer, 5)
        with pytest.raises(ObservabilityError, match="max_spans=5"):
            tracer.add_span("overflow", 0.0, 1.0)

    def test_tracer_cap_inert_with_sink_attached(self):
        tracer = Tracer(max_spans=5)
        tracer.attach_sink(StreamingSpanSink(reservoir=2))
        _spans(tracer, 100)
        assert tracer.sink.emitted == 100
        assert tracer.spans == []
        detached = tracer.detach_sink()
        assert detached.emitted == 100
        assert tracer.sink is None

    def test_attach_none_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer().attach_sink(None)

    def test_config_wiring_and_flush(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        config = ObservabilityConfig(
            jsonl_stream_out=path,
            max_spans=3,
            span_reservoir=8,
            aggregate_window_s=0.01,
        )
        with obs.configure(config) as session:
            _spans(obs.get_tracer(), 40)
            written = session.flush()
        assert path in written
        assert len(read_jsonl_spans(path)) == 40
        assert session.sink.emitted == 40
        assert len(session.sink.sample()) == 8
        assert session.sink.aggregate()["count"] == 40

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(max_spans=0)
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(span_reservoir=0)
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(aggregate_window_s=0.0)


# --- exporter round-trips ----------------------------------------------------------
class TestExporterRoundTrip:
    def test_jsonl_round_trip_preserves_records(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        tracer = Tracer()
        _spans(tracer, 7)
        tracer.instant("checkpoint", sim_time=0.5, attrs={"tick": 3})
        sink = StreamingSpanSink(path=path)
        for span in tracer.spans:
            sink.emit(span)
        sink.close()
        assert read_jsonl_spans(path) == tracer.spans

    def test_chrome_trace_identical_via_stream(self, tmp_path):
        """Streamed spans re-export to the same Chrome trace document."""
        path = str(tmp_path / "s.jsonl")
        streamed = Tracer()
        # Reservoir sampling deliberately NOT enabled for the file: the
        # stream must be lossless for the re-export to match.
        streamed.attach_sink(StreamingSpanSink(path=path, reservoir=None))
        _spans(streamed, 25)
        streamed.sink.close()

        in_memory = Tracer()
        _spans(in_memory, 25)
        restored = spans_to_chrome_events(read_jsonl_spans(path))
        direct = json.loads(to_chrome_trace(in_memory))["traceEvents"]
        assert restored == direct


# --- bounded-memory serving run ----------------------------------------------------
class TestBoundedServingRun:
    def _simulator(self):
        service = AffineServiceModel(
            base=2.0e-4, per_query=2.0e-5, knee=32, candidate_fraction=0.7
        )
        config = ServingConfig(slo=0.02, shards=2, replicas=1)
        rate = 1.2 * saturating_rate(service, config)
        return build_serving_stack(service, config), rate

    def test_100k_request_run_bounded_and_aggregate_identical(self, tmp_path):
        """A 100k-request serve run streams under a hard span cap, and the
        windowed aggregate is byte-identical to the unbounded in-memory path."""
        num_requests = 100_000
        simulator, rate = self._simulator()
        arrivals = poisson_arrivals(rate, num_requests, seed=0)

        # Streaming leg: tiny in-memory cap, bounded windows.
        cap = 256
        sink = StreamingSpanSink(
            path=str(tmp_path / "spans.jsonl"),
            reservoir=64,
            seed=0,
            window_s=0.05,
            max_windows=8,
        )
        tracer = Tracer(max_spans=cap)
        tracer.attach_sink(sink)
        obs.set_tracer(tracer)
        report_streamed = simulator.run(arrivals)
        sink.close()

        assert report_streamed.arrived == num_requests
        # The cap would have tripped without the sink: far more spans flowed
        # through than the tracer may hold, and none were retained.
        assert sink.emitted > cap
        assert len(tracer.spans) == 0
        assert sink.aggregator.live_windows <= 8

        # In-memory leg: same seeded run, unbounded retention.
        simulator2, _ = self._simulator()
        unbounded = Tracer()
        obs.set_tracer(unbounded)
        report_memory = simulator2.run(arrivals)
        aggregator = WindowedAggregator(window_s=0.05, max_windows=10**9)
        for span in unbounded.spans:
            aggregator.observe_span(span)

        assert len(unbounded.spans) == sink.emitted
        assert report_memory.goodput == report_streamed.goodput
        assert sink.aggregator.to_json() == aggregator.to_json()
