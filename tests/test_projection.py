"""Tests for the approximate projection (repro.screening.projection)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.screening.projection import (
    DEFAULT_PROJECTION_SCALE,
    ProjectionMatrix,
    project,
)


class TestCreation:
    def test_default_scale_is_quarter(self):
        assert DEFAULT_PROJECTION_SCALE == 0.25
        proj = ProjectionMatrix.create(1024)
        assert proj.output_dim == 256

    def test_rounding_of_small_dims(self):
        assert ProjectionMatrix.create(10, scale=0.25).output_dim == 2
        assert ProjectionMatrix.create(2, scale=0.25).output_dim == 1

    def test_entries_are_scaled_signs(self):
        proj = ProjectionMatrix.create(64, seed=1)
        expected = 1.0 / np.sqrt(proj.output_dim)
        assert set(np.unique(np.abs(proj.matrix))) == {np.float32(expected)}

    def test_deterministic_per_seed(self):
        a = ProjectionMatrix.create(64, seed=5)
        b = ProjectionMatrix.create(64, seed=5)
        c = ProjectionMatrix.create(64, seed=6)
        assert np.array_equal(a.matrix, b.matrix)
        assert not np.array_equal(a.matrix, c.matrix)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ProjectionMatrix.create(0)
        with pytest.raises(WorkloadError):
            ProjectionMatrix.create(64, scale=0.0)
        with pytest.raises(WorkloadError):
            ProjectionMatrix.create(64, scale=1.5)

    def test_rejects_expanding_matrix(self):
        with pytest.raises(WorkloadError):
            ProjectionMatrix(matrix=np.zeros((4, 8), dtype=np.float32))

    def test_rejects_wrong_rank(self):
        with pytest.raises(WorkloadError):
            ProjectionMatrix(matrix=np.zeros(8, dtype=np.float32))


class TestProject:
    def test_shapes(self):
        proj = ProjectionMatrix.create(128, seed=0)
        out = project(np.ones((5, 128), dtype=np.float32), proj)
        assert out.shape == (5, 32)

    def test_dim_mismatch_rejected(self):
        proj = ProjectionMatrix.create(128)
        with pytest.raises(WorkloadError):
            project(np.ones((5, 64)), proj)

    def test_linear(self):
        proj = ProjectionMatrix.create(64, seed=2)
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=(2, 64)).astype(np.float32)
        lhs = project((x + y)[None], proj)
        rhs = project(x[None], proj) + project(y[None], proj)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-4, atol=1e-5)

    @given(st.integers(min_value=32, max_value=256))
    @settings(max_examples=20, deadline=None)
    def test_inner_products_preserved_in_expectation(self, dim):
        """Johnson-Lindenstrauss sanity: projected inner products track the
        originals well enough for screening (correlation, not exactness)."""
        proj = ProjectionMatrix.create(dim, scale=0.5, seed=7)
        rng = np.random.default_rng(dim)
        a = rng.normal(size=(200, dim)).astype(np.float32)
        b = rng.normal(size=(200, dim)).astype(np.float32)
        exact = (a * b).sum(axis=1)
        approx = (project(a, proj) * project(b, proj)).sum(axis=1)
        corr = np.corrcoef(exact, approx)[0, 1]
        # Theory for K = D/2 sign projections: corr ~ 1/sqrt(3) ~ 0.577.
        assert corr > 0.4
