"""Tests for the discrete-event engine (repro.ssd.events)."""

import pytest

from repro.errors import SimulationError
from repro.ssd.events import EventQueue, Resource, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.push(3.0, lambda: order.append("c"))
        while q:
            _, cb = q.pop()
            cb()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        q = EventQueue()
        order = []
        for name in "abc":
            q.push(1.0, lambda n=name: order.append(n))
        while q:
            q.pop()[1]()
        assert order == ["a", "b", "c"]

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    @pytest.mark.parametrize("bad", [float("inf"), float("-inf"), float("nan")])
    def test_rejects_non_finite_time(self, bad):
        with pytest.raises(SimulationError, match="non-finite"):
            EventQueue().push(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("inf"), float("nan")])
    def test_simulator_rejects_non_finite_schedule(self, bad):
        # NaN slips past the `delay < 0` guard (every comparison with NaN is
        # False); the queue-level finiteness check must still catch it.
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(bad, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(bad, lambda: None)

    def test_len(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        sim.schedule(1.5, lambda: None)
        assert sim.run() == 1.5
        assert sim.now == 1.5

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_rejects_negative_delay(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_rejects_scheduling_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestResource:
    def test_immediate_acquire(self):
        r = Resource()
        assert r.acquire(0.0, 2.0) == (0.0, 2.0)

    def test_serializes_back_to_back(self):
        r = Resource()
        r.acquire(0.0, 2.0)
        start, end = r.acquire(1.0, 3.0)
        assert start == 2.0
        assert end == 5.0

    def test_idle_gap_respected(self):
        r = Resource()
        r.acquire(0.0, 1.0)
        start, end = r.acquire(10.0, 1.0)
        assert start == 10.0
        assert end == 11.0

    def test_busy_time_accumulates(self):
        r = Resource()
        r.acquire(0.0, 2.0)
        r.acquire(0.0, 3.0)
        assert r.busy_time == 5.0
        assert r.acquisitions == 2

    def test_utilization(self):
        r = Resource()
        r.acquire(0.0, 2.0)
        assert r.utilization(4.0) == pytest.approx(0.5)
        assert r.utilization(0.0) == 0.0
        # Clamped at 1 even if elapsed under-measures.
        assert r.utilization(1.0) == 1.0

    def test_zero_duration_allowed(self):
        r = Resource()
        start, end = r.acquire(1.0, 0.0)
        assert start == end == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Resource().acquire(0.0, -1.0)

    def test_reset(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        r.reset()
        assert r.free_at == 0.0
        assert r.busy_time == 0.0
        assert r.acquisitions == 0
