"""Chaos tests for the fault-injection subsystem (repro.faults).

Pins the subsystem's four contracts:

* **replayability** — plans and injectors are pure functions of the seed;
* **zero overhead when disabled** — a run with no injector (or a
  ``FaultConfig.disabled()`` injector) is bit-identical to the seed;
* **monotonicity** — more injected RBER never makes reads faster or
  accuracy better;
* **conservation / no-hang** — every attempted read lands in exactly one
  ECC tier, and bounded retries mean every fault class terminates.
"""

import numpy as np
import pytest

from repro.config import ECSSDConfig, FlashConfig
from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.faults import (
    EccConfig,
    EccModel,
    EccTier,
    FaultConfig,
    FaultInjector,
    FaultPlan,
    NULL_INJECTOR,
    RberModel,
    ScrubConfig,
    ScrubPolicy,
    get_injector,
    hash_uniform,
    installed,
)
from repro.faults.harness import FAULT_CLASSES, config_for_class, run_fault_matrix
from repro.layout.placement import WeightPlacement
from repro.layout.remapper import evacuate_channels
from repro.serve.degrade import DegradationLadder
from repro.ssd.device import SSDDevice
from repro.ssd.ftl import FlashTranslationLayer
from repro.units import us


def tiny_config(**overrides) -> ECSSDConfig:
    flash = dict(
        channels=2,
        packages_per_channel=1,
        dies_per_package=2,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=8,
    )
    flash.update(overrides)
    return ECSSDConfig(flash=FlashConfig(**flash))


def aged_config(**overrides) -> FaultConfig:
    """An operating point with real wear so the ECC ladder is exercised."""
    params = dict(
        mean_pe_cycles=3000.0,
        deployment_age=180.0 * 24.0 * 3600.0,
        horizon=0.05,
    )
    params.update(overrides)
    return FaultConfig(**params)


class TestHashUniform:
    def test_range_and_determinism(self):
        values = [hash_uniform(i, seed=7, salt=3) for i in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [hash_uniform(i, seed=7, salt=3) for i in range(1000)]

    def test_seed_and_salt_decorrelate(self):
        base = [hash_uniform(i, seed=0) for i in range(100)]
        assert base != [hash_uniform(i, seed=1) for i in range(100)]
        assert base != [hash_uniform(i, seed=0, salt=5) for i in range(100)]


class TestConfigValidation:
    def test_disabled_is_inert_and_valid(self):
        config = FaultConfig.disabled()
        assert not config.enabled
        assert FaultInjector(config, channels=4).enabled is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rber_base=0.0),
            dict(rber_scale=-1.0),
            dict(timeout_rate=1.0),
            dict(offline_windows=-1),
            dict(dram_flips=-2),
            dict(max_command_retries=-1),
            dict(horizon=0.0),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultConfig(**kwargs)

    def test_ecc_config_validated(self):
        with pytest.raises(ConfigurationError):
            EccConfig(fast_limit_bits=100, soft_limit_bits=72)
        with pytest.raises(ConfigurationError):
            EccConfig(retry_gain=1.5)


class TestEccLadder:
    def test_tier_boundaries(self):
        model = EccModel(EccConfig())
        bits = model.config.codeword_bits
        assert model.outcome_for(1.0 / bits).tier is EccTier.FAST
        assert model.outcome_for(16.0 / bits).tier is EccTier.FAST
        assert model.outcome_for(40.0 / bits).tier is EccTier.SOFT
        retried = model.outcome_for(100.0 / bits)
        assert retried.tier is EccTier.RETRY
        assert retried.retries >= 1
        dead = model.outcome_for(10000.0 / bits)
        assert dead.tier is EccTier.UNCORRECTABLE
        assert not dead.correctable
        assert dead.extra_latency == pytest.approx(model.ladder_latency)

    def test_latency_monotone_in_rber(self):
        model = EccModel(EccConfig())
        rbers = np.logspace(-7, -1, 60)
        latencies = [model.outcome_for(r).extra_latency for r in rbers]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))

    def test_uncorrectable_fraction_monotone(self):
        model = EccModel(EccConfig())
        rbers = np.logspace(-7, -1, 60)
        tails = [model.uncorrectable_fraction(r) for r in rbers]
        assert all(0.0 <= t <= 1.0 for t in tails)
        assert all(b >= a for a, b in zip(tails, tails[1:]))
        assert tails[-1] > tails[0]

    def test_rber_surface_monotone(self):
        model = RberModel()
        assert model.rber(0, 0) == pytest.approx(model.base)
        assert model.rber(6000, 0) > model.rber(3000, 0)
        assert model.rber(0, 1e7) > model.rber(0, 1e6)


class TestPlanReplay:
    def test_two_builds_are_identical(self):
        config = FaultConfig(
            seed=11, offline_windows=6, dram_flips=5, timeout_rate=0.1
        )
        a = FaultPlan.build(config, channels=8)
        b = FaultPlan.build(config, channels=8)
        assert a.to_dict() == b.to_dict()
        assert a.windows == b.windows
        np.testing.assert_array_equal(a.dram_flip_fractions, b.dram_flip_fractions)

    def test_seeds_differ(self):
        base = dict(offline_windows=6, dram_flips=5)
        a = FaultPlan.build(FaultConfig(seed=0, **base), channels=8)
        b = FaultPlan.build(FaultConfig(seed=1, **base), channels=8)
        assert a.to_dict() != b.to_dict()

    def test_offline_release_skips_windows(self):
        config = FaultConfig(offline_windows=3, offline_duration=1e-3, seed=2)
        plan = FaultPlan.build(config, channels=4)
        window = plan.windows[0]
        inside = (window.start + window.end) / 2
        assert plan.offline_release(window.channel, inside) >= window.end
        assert plan.offline_release(window.channel, window.end) == window.end
        # A channel with no windows never stalls.
        quiet = next(
            c for c in range(4) if c not in {w.channel for w in plan.windows}
        ) if len({w.channel for w in plan.windows}) < 4 else None
        if quiet is not None:
            assert plan.offline_release(quiet, inside) == inside

    def test_flipped_labels_sorted_unique_in_range(self):
        plan = FaultPlan.build(FaultConfig(dram_flips=16, seed=3), channels=2)
        labels = plan.flipped_labels(100)
        assert labels.size > 0
        assert np.all(labels == np.unique(labels))
        assert labels.min() >= 0 and labels.max() < 100


class TestInjector:
    def test_conservation_ledger(self):
        injector = FaultInjector(aged_config(rber_scale=20.0), channels=2)
        for page in range(500):
            injector.read_outcome(0.0, page_id=page)
        injector.check_conservation()
        assert injector.reads_attempted == 500
        assert sum(injector.tier_counts.values()) == 500

    def test_ledger_imbalance_detected(self):
        injector = FaultInjector(aged_config(), channels=2)
        injector.reads_attempted = 1
        with pytest.raises(SimulationError):
            injector.check_conservation()

    def test_unreadable_labels_nest_across_rber_sweep(self):
        previous: set = set()
        for scale in (1.0, 3.0, 10.0, 30.0):
            injector = FaultInjector(aged_config(rber_scale=scale), channels=2)
            dropped = set(injector.unreadable_labels(4096).tolist())
            assert previous <= dropped
            previous = dropped
        assert previous  # the harshest point drops something

    def test_surcharge_monotone_in_rber(self):
        surcharges = [
            FaultInjector(
                aged_config(rber_scale=s), channels=2
            ).page_read_surcharge()
            for s in (0.5, 1.0, 2.0, 5.0, 10.0, 50.0)
        ]
        assert all(b >= a for a, b in zip(surcharges, surcharges[1:]))
        assert surcharges[-1] > surcharges[0]

    def test_fault_pressure_tracks_offline_windows(self):
        config = aged_config(offline_windows=2, offline_duration=1e-3, seed=5)
        injector = FaultInjector(config, channels=4)
        window = injector.plan.windows[0]
        inside = (window.start + window.end) / 2
        assert injector.fault_pressure(inside) >= 0.5
        assert 0.0 <= injector.fault_pressure(window.end + 1.0) <= 1.0

    def test_timeout_ordinals_bounded_rate(self):
        injector = FaultInjector(aged_config(timeout_rate=0.2, seed=1), channels=2)
        hits = sum(injector.next_command_times_out() for _ in range(2000))
        assert 0.1 < hits / 2000 < 0.3

    def test_installed_restores_previous(self):
        assert get_injector() is NULL_INJECTOR
        live = FaultInjector(aged_config(), channels=2)
        with installed(live) as active:
            assert active is live
            assert get_injector() is live
        assert get_injector() is NULL_INJECTOR


class TestZeroOverheadWhenDisabled:
    """Satellite: a disabled run is bit-identical to the seed (no injector)."""

    def _storm(self):
        device = SSDDevice(tiny_config())
        lpas = list(range(12))
        write = device.host_write(lpas)
        read = device.host_read(lpas)
        addresses = [device.ftl.lookup(lpa) for lpa in lpas]
        fetch = device.fetch_pages(addresses, start=read)
        return (write, read, fetch.makespan, tuple(fetch.channel_finish))

    def test_disabled_injector_is_bit_identical_to_no_injector(self):
        baseline = self._storm()
        with installed(FaultInjector(FaultConfig.disabled(), channels=2)):
            disabled = self._storm()
        assert disabled == baseline

    def test_null_injector_costs_nothing(self):
        assert NULL_INJECTOR.page_read_surcharge() == 0.0
        assert NULL_INJECTOR.offline_release(0, 1.25) == 1.25
        assert not NULL_INJECTOR.next_command_times_out()
        assert NULL_INJECTOR.unreadable_labels(100).size == 0
        assert NULL_INJECTOR.fault_pressure(0.0) == 0.0

    def test_zero_rber_injector_adds_no_latency(self):
        baseline = self._storm()
        config = FaultConfig(rber_scale=0.0)
        with installed(FaultInjector(config, channels=2)) as injector:
            live = self._storm()
            injector.check_conservation()
        assert live == baseline
        assert injector.tier_counts["fast"] == injector.reads_attempted


class TestEventPathInjection:
    def _run(self, config: FaultConfig):
        device_config = tiny_config()
        with installed(
            FaultInjector(config, channels=device_config.flash.channels)
        ) as injector:
            device = SSDDevice(device_config)
            lpas = list(range(16))
            device.host_write(lpas)
            read_done = device.host_read(lpas)
            addresses = [device.ftl.lookup(lpa) for lpa in lpas]
            fetch = device.fetch_pages(addresses, start=read_done)
            injector.check_conservation()
        return injector, fetch

    def test_ecc_latency_lands_on_reads(self):
        clean_fetch = self._run(FaultConfig(rber_scale=0.0))[1]
        worn, worn_fetch = self._run(aged_config(rber_scale=5.0))
        assert worn_fetch.makespan > clean_fetch.makespan
        slow = (
            worn.tier_counts["soft"]
            + worn.tier_counts["retry"]
            + worn.tier_counts["uncorrectable"]
        )
        assert slow > 0

    def test_timeouts_retry_and_terminate(self):
        injector, _fetch = self._run(aged_config(timeout_rate=0.4, seed=9))
        assert injector.timeouts_injected > 0
        # Bounded attempts: no command consumed more than retries+1 ordinals.
        commands = injector.reads_attempted + 16  # reads twice + programs
        budget = injector.config.max_command_retries + 1
        assert injector._command_ordinal <= commands * budget

    def test_offline_windows_stall_reads(self):
        config = aged_config(
            rber_scale=0.0,
            offline_windows=4,
            offline_duration=5e-3,
            horizon=1e-3,
            seed=4,
        )
        injector, _fetch = self._run(config)
        assert injector.offline_stalls > 0

    def test_storm_class_survives(self):
        config = config_for_class("storm", rber_scale=10.0, seed=0)
        injector, fetch = self._run(config)
        assert fetch.makespan > 0.0
        injector.check_conservation()

    def test_wear_binding_uses_ftl_erase_counts(self):
        device_config = tiny_config()
        with installed(
            FaultInjector(aged_config(), channels=2)
        ) as injector:
            device = SSDDevice(device_config)
            assert injector._wear_source is not None
            lpas = list(range(8))
            device.host_write(lpas)
            address = device.ftl.lookup(lpas[0])
            assert injector._wear_source(address) == device.ftl.block_erase_count(
                address
            )


class TestScrub:
    def test_refresh_migrates_and_rewinds_retention(self):
        config = tiny_config()
        fault_config = FaultConfig(
            rber_scale=50.0,
            mean_pe_cycles=0.0,
            deployment_age=365.0 * 24.0 * 3600.0,
        )
        with installed(FaultInjector(fault_config, channels=2)) as injector:
            device = SSDDevice(config)
            lpas = list(range(24))
            device.host_write(lpas)
            policy = ScrubPolicy(device.ftl, injector, ScrubConfig())
            report = policy.scan_and_refresh(now=1.0)
            assert report.scanned > 0
            assert report.refreshed > 0
            assert report.pages_migrated > 0
            # Mapping survives the migration.
            for lpa in lpas:
                device.ftl.lookup(lpa)
            # Refreshed blocks re-entered the wear heap with bumped wear.
            _lo, hi, _mean = device.ftl.wear_stats()
            assert hi >= 1

    def test_budget_bounds_one_pass(self):
        config = tiny_config()
        fault_config = FaultConfig(
            rber_scale=50.0, deployment_age=365.0 * 24.0 * 3600.0
        )
        with installed(FaultInjector(fault_config, channels=2)) as injector:
            device = SSDDevice(config)
            device.host_write(list(range(24)))
            policy = ScrubPolicy(
                device.ftl, injector, ScrubConfig(max_refreshes=1)
            )
            report = policy.scan_and_refresh(now=1.0)
            assert report.refreshed <= 1
            if report.scanned > 1:
                assert report.skipped_budget >= 0

    def test_scrub_config_validated(self):
        with pytest.raises(ConfigurationError):
            ScrubConfig(refresh_margin=0.0)
        with pytest.raises(ConfigurationError):
            ScrubConfig(max_refreshes=-1)


class TestEvacuation:
    def _placement(self, vectors=16, channels=4):
        channel_of = np.arange(vectors, dtype=np.int64) % channels
        slot_of = np.arange(vectors, dtype=np.int64) // channels
        return WeightPlacement(
            num_vectors=vectors,
            num_channels=channels,
            vector_bytes=128,
            page_size=4096,
            channel_of=channel_of,
            slot_of=slot_of,
            strategy_name="test",
        )

    def test_failed_channels_emptied_hottest_first(self):
        placement = self._placement()
        scores = np.arange(16, dtype=np.float64)
        channel_of, plan = evacuate_channels(placement, scores, [1])
        assert not np.any(channel_of == 1)
        stranded = np.flatnonzero(placement.channel_of == 1)
        moved = [m.vector for m in plan.moves]
        assert sorted(moved) == sorted(stranded.tolist())
        # Hottest stranded vector moved first.
        assert moved[0] == stranded[np.argmax(scores[stranded])]

    def test_bounded_window_moves_hottest(self):
        placement = self._placement()
        scores = np.arange(16, dtype=np.float64)
        _channel_of, plan = evacuate_channels(placement, scores, [1], max_moves=2)
        assert len(plan.moves) == 2
        stranded = np.flatnonzero(placement.channel_of == 1)
        top2 = stranded[np.argsort(-scores[stranded])][:2]
        assert {m.vector for m in plan.moves} == set(top2.tolist())

    def test_all_channels_failed_raises(self):
        placement = self._placement()
        with pytest.raises(WorkloadError):
            evacuate_channels(
                placement, np.ones(16), failed_channels=[0, 1, 2, 3]
            )

    def test_deterministic(self):
        placement = self._placement()
        scores = np.ones(16, dtype=np.float64)
        a = evacuate_channels(placement, scores, [0, 2])
        b = evacuate_channels(placement, scores, [0, 2])
        np.testing.assert_array_equal(a[0], b[0])
        assert a[1].moves == b[1].moves


class TestServingPressure:
    def test_fault_pressure_escalates_ladder(self):
        ladder = DegradationLadder()
        assert ladder.update(0.0, fault_pressure=0.0) == 0
        level = ladder.update(0.0, fault_pressure=1.0)
        assert level == 1
        assert ladder.update(0.0, fault_pressure=1.0) == 2

    def test_negative_fault_pressure_rejected(self):
        ladder = DegradationLadder()
        with pytest.raises(ConfigurationError):
            ladder.update(0.0, fault_pressure=-0.1)


class TestFaultMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_fault_matrix(
            num_labels=256,
            num_queries=4,
            seed=0,
            rber_scales=(1.0, 5.0, 10.0),
            fault_classes=("rber", "storm"),
            storm_pages=16,
        )

    def test_replayable(self, matrix):
        again = run_fault_matrix(
            num_labels=256,
            num_queries=4,
            seed=0,
            rber_scales=(1.0, 5.0, 10.0),
            fault_classes=("rber", "storm"),
            storm_pages=16,
        )
        assert again.to_dict() == matrix.to_dict()

    def test_latency_monotone_retention_nonincreasing(self, matrix):
        for fault_class in ("rber", "storm"):
            cells = [matrix.cell(fault_class, s) for s in (1.0, 5.0, 10.0)]
            latencies = [c["latency_s"] for c in cells]
            retentions = [c["retention"] for c in cells]
            assert all(b >= a for a, b in zip(latencies, latencies[1:]))
            assert all(b <= a for a, b in zip(retentions, retentions[1:]))

    def test_every_configured_class_builds(self):
        for fault_class in FAULT_CLASSES:
            config = config_for_class(fault_class, rber_scale=2.0, seed=1)
            assert config.rber_scale == 2.0
        with pytest.raises(WorkloadError):
            config_for_class("meteor", rber_scale=1.0, seed=0)

    def test_unknown_class_rejected_up_front(self):
        with pytest.raises(WorkloadError):
            run_fault_matrix(num_labels=64, fault_classes=("meteor",))
