"""Tests for per-request causal tracing + tail attribution (repro.obs.causal).

The two properties the module exists for:

* **Conservation** — every request's stage durations telescope exactly to
  its end-to-end latency (the collector itself raises on violation; the
  tests re-check the invariant from the emitted traces).
* **Zero overhead when disabled** — a run with the collector installed is
  bit-identical (latencies, report JSON, run ID, digest track) to the same
  run without it, including under the sim-sanitizer.
"""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.cluster import (
    ClusterConfig,
    build_cluster,
    cluster_saturating_rate,
)
from repro.faults import ClusterFaultConfig
from repro.lint.simsan import SimSanitizer
from repro.lint.simsan import installed as simsan_installed
from repro.obs import DigestRecorder, RunManifest, Tracer, diverge_runs
from repro.obs.causal import (
    FAULT_CLASSES,
    STAGES,
    AttributionReport,
    CausalCollector,
    NullCausalCollector,
    RequestTrace,
    TailExemplarStore,
    get_collector,
    installed,
    set_collector,
    trace_spans,
    trace_to_chrome,
)
from repro.obs.profile import FleetProfileReport, profile_trace
from repro.serve import (
    AffineServiceModel,
    ServingConfig,
    build_serving_stack,
    saturating_rate,
)
from repro.workloads.streams import poisson_arrivals

#: Fast pure-Python service model (same shape as tests/test_cluster.py).
SERVICE = AffineServiceModel(base=5e-4, per_query=2e-5, knee=16)
CONFIG = ClusterConfig(
    data_nodes=8,
    service_nodes=2,
    shards=4,
    replicas=12,
    racks=2,
    slots_per_node=2,
    slo=0.05,
)


@pytest.fixture(autouse=True)
def _restore_collector():
    previous = get_collector()
    yield
    set_collector(previous if previous.enabled else None)


def run_fleet(
    multiplier=0.8,
    seed=7,
    num_requests=4000,
    config=CONFIG,
    fault_config=None,
    collector=None,
    recorder=None,
):
    """Fresh fleet replaying a Poisson stream; optionally collected."""
    rate = multiplier * cluster_saturating_rate(SERVICE, config)
    arrivals = poisson_arrivals(rate, num_requests, seed=seed)
    if fault_config is None:
        fault_config = ClusterFaultConfig.disabled()
    simulator = build_cluster(
        SERVICE, config, seed=seed, fault_config=fault_config,
        digest_recorder=recorder,
    )
    if collector is None:
        return simulator.run(arrivals)
    with installed(collector):
        return simulator.run(arrivals)


def faulted_config(seed=7, horizon=0.05):
    return ClusterFaultConfig.from_spec(
        "node-crash=2,partition=1,slow-node=2", seed=seed, horizon=horizon
    )


class TestCollectorGuard:
    def test_default_collector_is_null_and_disabled(self):
        set_collector(None)
        collector = get_collector()
        assert isinstance(collector, NullCausalCollector)
        assert not collector.enabled

    def test_installed_restores_previous(self):
        set_collector(None)
        live = CausalCollector()
        with installed(live):
            assert get_collector() is live
        assert not get_collector().enabled

    def test_null_hooks_are_noops(self):
        null = NullCausalCollector()
        null.on_dispatch(0, 0, 0.0, 0, (1,), (0.0,))
        null.on_task_route(0, 0, 0, 1e-3, 0.0, 0.0, 0)
        null.on_merge(0, 1.0)
        null.on_serve_complete(0, 0.0, 0.5, 1.0)
        null.on_ecc("slow", 1e-6, 1)


class TestConservation:
    def test_stage_sums_equal_latency_under_faults(self):
        collector = CausalCollector(seed=7, keep_traces=True)
        report = run_fleet(
            multiplier=1.1, fault_config=faulted_config(), collector=collector
        )
        attribution = collector.report()
        assert attribution.completed == report.completed
        traces = list(collector.traces())
        assert len(traces) == report.completed
        for trace in traces:
            total = math.fsum(seconds for _, seconds in trace.stages)
            assert total == pytest.approx(trace.latency, rel=1e-9, abs=1e-12)

    def test_stage_names_are_from_taxonomy(self):
        collector = CausalCollector(seed=7, keep_traces=True)
        run_fleet(fault_config=faulted_config(), collector=collector)
        for trace in collector.traces():
            for name, seconds in trace.stages:
                assert name in STAGES
                assert seconds >= 0.0

    def test_fault_classes_partition_requests(self):
        collector = CausalCollector(seed=7)
        report = run_fleet(
            multiplier=1.1, fault_config=faulted_config(), collector=collector
        )
        attribution = collector.report()
        assert set(attribution.fault_classes) <= set(FAULT_CLASSES)
        assert (
            sum(b["count"] for b in attribution.fault_classes.values())
            == report.completed
        )

    def test_shares_sum_to_one(self):
        collector = CausalCollector(seed=7)
        run_fleet(fault_config=faulted_config(), collector=collector)
        attribution = collector.report()
        total_share = math.fsum(
            block["share"] for block in attribution.stages.values()
        )
        assert total_share == pytest.approx(1.0, rel=1e-9)


class TestBitIdentity:
    def test_traced_run_matches_untraced(self):
        plain = run_fleet(multiplier=1.1, fault_config=faulted_config())
        traced = run_fleet(
            multiplier=1.1,
            fault_config=faulted_config(),
            collector=CausalCollector(seed=7),
        )
        assert np.array_equal(plain.latencies, traced.latencies)
        a = json.dumps(plain.to_dict(), sort_keys=True)
        b = json.dumps(traced.to_dict(), sort_keys=True)
        assert a == b

    def test_digest_tracks_do_not_diverge(self):
        recorder_a = DigestRecorder(interval=64, label="fleet")
        recorder_b = DigestRecorder(interval=64, label="fleet")
        run_fleet(fault_config=faulted_config(), recorder=recorder_a)
        run_fleet(
            fault_config=faulted_config(),
            recorder=recorder_b,
            collector=CausalCollector(seed=7),
        )
        manifest_a = RunManifest.build(
            "plain", 7, {"mode": "cluster"}, {"requests": 4000},
            digests=recorder_a.entries,
        )
        manifest_b = RunManifest.build(
            "traced", 7, {"mode": "cluster"}, {"requests": 4000},
            digests=recorder_b.entries,
        )
        assert manifest_a.run_id == manifest_b.run_id
        divergence = diverge_runs(manifest_a, manifest_b)
        assert not divergence.diverged
        assert divergence.compared == len(recorder_a.entries)

    def test_bit_identity_holds_under_simsan(self):
        # A fresh sanitizer per run: each run restarts the sim clock at
        # zero, which a shared monotone-time check would flag.
        with simsan_installed(SimSanitizer()) as sanitizer_plain:
            plain = run_fleet(multiplier=1.1, fault_config=faulted_config())
        with simsan_installed(SimSanitizer()) as sanitizer_traced:
            traced = run_fleet(
                multiplier=1.1,
                fault_config=faulted_config(),
                collector=CausalCollector(seed=7),
            )
        assert np.array_equal(plain.latencies, traced.latencies)
        assert not sanitizer_plain.violations
        assert not sanitizer_traced.violations


class TestExemplars:
    def _trace(self, request_id, arrival, latency):
        return RequestTrace(
            trace_id=f"t{request_id}",
            request_id=request_id,
            kind="serve",
            arrival=arrival,
            completion=arrival + latency,
            fault_class="clean",
            stages=(("queue_wait", latency / 2), ("service", latency / 2)),
            boundaries=(
                ("arrival", arrival),
                ("dispatch", arrival + latency / 2),
                ("completion", arrival + latency),
            ),
        )

    def test_slowest_k_ordering(self):
        store = TailExemplarStore(slowest_k=3, sample_size=0, seed=0)
        for rid in range(10):
            store.offer(self._trace(rid, rid * 0.1, 1e-3 * (rid % 5 + 1)))
        slowest = store.slowest()
        assert len(slowest) == 3
        latencies = [t.latency for t in slowest]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] == pytest.approx(5e-3)

    def test_slowest_ties_break_deterministically(self):
        store = TailExemplarStore(slowest_k=2, sample_size=0, seed=0)
        for rid in (5, 1, 9):
            store.offer(self._trace(rid, 0.0, 2e-3))
        ids = [t.request_id for t in store.slowest()]
        assert ids == [1, 5]  # equal latency: smaller request id wins

    def test_reservoir_is_seed_deterministic(self):
        def fill(seed):
            store = TailExemplarStore(slowest_k=2, sample_size=4, seed=seed)
            for rid in range(100):
                store.offer(self._trace(rid, rid * 0.01, 1e-3))
            return [t.request_id for t in store.sampled()]

        assert fill(3) == fill(3)
        assert fill(3) != fill(4)

    def test_sampled_excludes_slowest(self):
        store = TailExemplarStore(slowest_k=4, sample_size=16, seed=0)
        for rid in range(20):
            store.offer(self._trace(rid, rid * 0.01, 1e-3 * (rid + 1)))
        slow_ids = {t.request_id for t in store.slowest()}
        assert not slow_ids & {t.request_id for t in store.sampled()}

    def test_report_is_byte_identical_per_seed(self):
        def attribution_json():
            collector = CausalCollector(slowest_k=4, sample_size=8, seed=7)
            run_fleet(fault_config=faulted_config(), collector=collector)
            return json.dumps(collector.report().to_dict(), sort_keys=True)

        assert attribution_json() == attribution_json()


class TestChromeExport:
    def test_trace_spans_link_causally(self):
        collector = CausalCollector(seed=7)
        run_fleet(
            multiplier=1.1, fault_config=faulted_config(), collector=collector
        )
        exemplar = collector.report().slowest[0]
        spans = trace_spans(exemplar)
        assert len(spans) == len(exemplar.stages)
        names = [s.attrs["stage"] for s in spans]
        assert names == [name for name, _ in exemplar.stages]
        # every span after the first is causally linked to its predecessor
        assert spans[0].attrs["after"] is None
        for prev, span in zip(spans, spans[1:]):
            assert span.attrs["after"] == prev.attrs["stage"]

    def test_chrome_document_shape(self):
        collector = CausalCollector(seed=7)
        run_fleet(fault_config=faulted_config(), collector=collector)
        exemplar = collector.report().slowest[0]
        document = trace_to_chrome(exemplar)
        assert document["traceEvents"]
        assert document["displayTimeUnit"] == "ns"
        json.dumps(document)  # JSON-safe


class TestServeDecomposition:
    def test_queue_wait_plus_service_equals_latency(self):
        config = ServingConfig(replicas=2, slo=0.02)
        rate = 0.8 * saturating_rate(SERVICE, config)
        arrivals = poisson_arrivals(rate, 2000, seed=5)
        driver = build_serving_stack(SERVICE, config)
        collector = CausalCollector(seed=5, keep_traces=True)
        with installed(collector):
            report = driver.run(arrivals)
        traces = list(collector.traces())
        assert len(traces) == len(report.completed)
        for trace in traces:
            assert trace.kind == "serve"
            total = math.fsum(seconds for _, seconds in trace.stages)
            assert total == pytest.approx(trace.latency, rel=1e-9, abs=1e-12)


class TestQuantileSurfaces:
    def test_histogram_quantiles_include_p999(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("latency")
        for value in range(1000):
            histogram.observe(value / 1000.0)
        quantiles = histogram.quantiles()
        assert "p99.9" in quantiles
        assert quantiles["p99.9"] >= quantiles["p99"]

    def test_cluster_report_exposes_p999(self):
        report = run_fleet()
        payload = report.to_dict()
        assert payload["p999_s"] is not None
        assert payload["p999_s"] >= payload["p99_s"]

    def test_serving_report_exposes_p999(self):
        config = ServingConfig(replicas=2, slo=0.02)
        rate = 0.5 * saturating_rate(SERVICE, config)
        driver = build_serving_stack(SERVICE, config)
        report = driver.run(poisson_arrivals(rate, 500, seed=3))
        payload = report.to_dict()
        assert payload["p999_s"] is not None
        assert payload["p999_s"] >= payload["p99_s"]


class TestFleetProfile:
    def test_profile_trace_routes_cluster_spans(self):
        previous = obs.get_tracer()
        tracer = Tracer()
        obs.set_tracer(tracer)
        try:
            run_fleet()
        finally:
            obs.set_tracer(previous)
        report = profile_trace(tracer.spans, None)
        assert isinstance(report, FleetProfileReport)
        assert report.batches > 0
        assert report.requests > 0
        payload = report.to_dict()
        assert payload["duration_quantiles_s"]["p99.9"] >= (
            payload["duration_quantiles_s"]["p50"]
        )
        assert report.render()


class TestAttributionReport:
    def test_stage_metrics_names_hit_scoring_patterns(self):
        collector = CausalCollector(seed=7)
        run_fleet(fault_config=faulted_config(), collector=collector)
        metrics = collector.report().stage_metrics()
        assert "stage_queue_wait_p99_ms" in metrics
        assert "latency_p999_ms" in metrics
        assert any(key.startswith("tail_") for key in metrics)

    def test_empty_run_reports_cleanly(self):
        attribution = CausalCollector(seed=0).report()
        assert isinstance(attribution, AttributionReport)
        assert attribution.completed == 0
        assert attribution.stages == {}
        json.dumps(attribution.to_dict())
        assert attribution.render()


class TestTraceAttributeCli:
    def test_small_run_produces_report_and_exemplar(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "attribution.json"
        exemplar = tmp_path / "exemplar.json"
        code = main([
            "trace", "attribute",
            "--requests", "800",
            "--seed", "3",
            "--out", str(out),
            "--exemplar-out", str(exemplar),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "p99.9" in captured
        payload = json.loads(out.read_text())
        assert payload["attribution"]["completed"] > 0
        stages = payload["attribution"]["stages"]
        assert set(stages) <= set(STAGES)
        chrome = json.loads(exemplar.read_text())
        assert chrome["traceEvents"]
