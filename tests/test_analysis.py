"""Tests for the analysis layer: roofline, metrics, reporting."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    geometric_mean,
    speedup,
    utilization_timeline,
    weighted_utilization,
)
from repro.analysis.reporting import format_ratio, format_seconds, render_table
from repro.analysis.roofline import RooflineModel, RooflinePoint
from repro.errors import ConfigurationError, WorkloadError


class TestRoofline:
    def test_operational_intensity(self):
        model = RooflineModel(peak_bandwidth_gbs=8.0, batch=8)
        assert model.operational_intensity == 4.0  # 2 * 8 / 4 bytes

    def test_point_a_is_compute_bound(self):
        """Fig. 1: the naive in-storage baseline sits under the roof.

        Utilization here is the bandwidth the *layout* could deliver if
        compute kept up (uniform interleaving ~0.72); point A's 29.2 GFLOPS
        ceiling sits below that line, so it is compute-bound.
        """
        model = RooflineModel(batch=16)
        a = model.point("A", compute_gflops=29.2, bandwidth_utilization=0.72)
        assert a.is_compute_bound
        assert a.attained_gflops == 29.2

    def test_point_b_becomes_memory_bound(self):
        model = RooflineModel(batch=16)
        b = model.point("B", compute_gflops=50.0, bandwidth_utilization=0.72)
        assert not b.is_compute_bound
        assert b.attained_gflops == pytest.approx(8 * 0.72 * 8.0)

    def test_point_c_approaches_corner(self):
        model = RooflineModel(batch=16)
        b = model.point("B", 50.0, 0.72)
        c = model.point("C", 50.0, 0.95)
        assert c.attained_gflops > b.attained_gflops

    def test_paper_points_trajectory(self):
        points = RooflineModel(batch=16).paper_points(
            baseline_utilization=0.72, final_utilization=0.95
        )
        assert [p.label[0] for p in points] == ["A", "B", "C"]
        attained = [p.attained_gflops for p in points]
        assert attained == sorted(attained)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RooflineModel(peak_bandwidth_gbs=0)
        model = RooflineModel()
        with pytest.raises(ConfigurationError):
            model.point("x", 50.0, 1.5)


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(WorkloadError):
            speedup(0.0, 1.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)
        with pytest.raises(WorkloadError):
            geometric_mean([])
        with pytest.raises(WorkloadError):
            geometric_mean([1.0, -1.0])

    def test_utilization_timeline(self):
        series = [np.array([2, 2, 2, 2]), np.array([4, 0, 0, 0]), np.zeros(4)]
        out = utilization_timeline(series)
        assert out == [1.0, 0.25, 1.0]

    def test_weighted_utilization(self):
        series = [np.array([2, 2]), np.array([4, 0])]
        # total pages 8, channel-time 2 * (2 + 4) = 12.
        assert weighted_utilization(series) == pytest.approx(8 / 12)
        assert weighted_utilization([]) == 1.0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(
            ["name", "value"], [["a", 1.0], ["longer", 123456.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_render_table_arity_checked(self):
        with pytest.raises(WorkloadError):
            render_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = render_table(["x"], [[0.000123456]])
        assert "0.000123" in text

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.5 s"
        assert format_seconds(2.5e-3) == "2.5 ms"
        assert format_seconds(2.5e-6) == "2.5 us"
        assert format_seconds(2.5e-9) == "2.5 ns"

    def test_format_ratio(self):
        assert format_ratio(3.238) == "3.24x"
