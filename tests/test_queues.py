"""Tests for the NVMe multi-queue front end (repro.ssd.queues)."""

import pytest

from repro.config import ECSSDConfig, FlashConfig
from repro.errors import ProtocolError, SimulationError
from repro.ssd.device import SSDDevice
from repro.ssd.queues import (
    Arbitration,
    Completion,
    IoKind,
    IoRequest,
    NvmeFrontEnd,
    QueuePair,
)


def small_device() -> SSDDevice:
    flash = FlashConfig(
        channels=2,
        packages_per_channel=2,
        dies_per_package=2,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=16,
    )
    return SSDDevice(ECSSDConfig(flash=flash))


def front_end(**kwargs) -> NvmeFrontEnd:
    return NvmeFrontEnd(device=small_device(), **kwargs)


class TestQueuePair:
    def test_submit_assigns_command_ids(self):
        queue = QueuePair(queue_id=0, depth=4)
        a = queue.submit(IoKind.WRITE, 0)
        b = queue.submit(IoKind.READ, 1)
        assert (a.command_id, b.command_id) == (0, 1)
        assert queue.outstanding == 2

    def test_depth_enforced(self):
        queue = QueuePair(queue_id=0, depth=2)
        queue.submit(IoKind.WRITE, 0)
        queue.submit(IoKind.WRITE, 1)
        with pytest.raises(ProtocolError):
            queue.submit(IoKind.WRITE, 2)

    def test_mean_latency_requires_completions(self):
        queue = QueuePair(queue_id=0)
        with pytest.raises(SimulationError):
            queue.mean_latency()


class TestFrontEnd:
    def test_write_then_read_roundtrip(self):
        fe = front_end(num_queues=2)
        fe.submit(0, IoKind.WRITE, 10)
        fe.submit(1, IoKind.READ, 10)
        completions = fe.process()
        assert len(completions) == 2
        assert completions[0].request.kind is IoKind.WRITE
        assert all(c.latency >= 0 for c in completions)
        assert fe.device.ftl.is_mapped(10)

    def test_per_queue_ordering_preserved(self):
        fe = front_end(num_queues=2)
        for page in range(6):
            fe.submit(0, IoKind.WRITE, page)
        completions = fe.process()
        q0 = [c.request.command_id for c in completions if c.request.queue_id == 0]
        assert q0 == sorted(q0)

    def test_round_robin_interleaves_queues(self):
        fe = front_end(num_queues=2)
        for page in range(4):
            fe.submit(0, IoKind.WRITE, page)
            fe.submit(1, IoKind.WRITE, 100 + page)
        completions = fe.process()
        first_four = [c.request.queue_id for c in completions[:4]]
        assert first_four == [0, 1, 0, 1]

    def test_weighted_arbitration_favors_heavy_queue(self):
        fe = front_end(
            num_queues=2,
            arbitration=Arbitration.WEIGHTED,
            weights=[3, 1],
        )
        for page in range(6):
            fe.submit(0, IoKind.WRITE, page)
            fe.submit(1, IoKind.WRITE, 100 + page)
        completions = fe.process(max_commands=4)
        q0_share = sum(1 for c in completions if c.request.queue_id == 0)
        assert q0_share == 3

    def test_no_starvation_under_round_robin(self):
        fe = front_end(num_queues=4)
        for page in range(8):
            fe.submit(0, IoKind.WRITE, page)
        fe.submit(3, IoKind.WRITE, 200)
        completions = fe.process(max_commands=5)
        assert any(c.request.queue_id == 3 for c in completions)

    def test_fairness_index(self):
        fe = front_end(num_queues=2)
        for page in range(4):
            fe.submit(0, IoKind.WRITE, page)
            fe.submit(1, IoKind.WRITE, 100 + page)
        fe.process()
        assert fe.fairness_index() == pytest.approx(1.0)
        assert front_end().fairness_index() == 1.0  # no traffic yet

    def test_max_commands_budget(self):
        fe = front_end()
        for page in range(10):
            fe.submit(0, IoKind.WRITE, page)
        completions = fe.process(max_commands=3)
        assert len(completions) == 3
        assert fe.queue(0).outstanding == 7

    def test_latencies_grow_with_queue_position(self):
        fe = front_end(num_queues=1)
        for page in range(8):
            fe.submit(0, IoKind.WRITE, page)
        completions = fe.process()
        latencies = [c.latency for c in completions]
        assert latencies[-1] > latencies[0]

    def test_validation(self):
        with pytest.raises(SimulationError):
            NvmeFrontEnd(device=small_device(), num_queues=0)
        with pytest.raises(SimulationError):
            NvmeFrontEnd(device=small_device(), queue_depth=0)
        with pytest.raises(SimulationError):
            NvmeFrontEnd(device=small_device(), weights=[1])  # wrong arity
        with pytest.raises(SimulationError):
            NvmeFrontEnd(device=small_device(), num_queues=1, weights=[0])
        fe = front_end()
        with pytest.raises(ProtocolError):
            fe.queue(99)
