"""Property-based invariants of the tile pipeline timing model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cfp32.circuits import MacDesign
from repro.core.accelerator import AcceleratorModel
from repro.core.pipeline import PipelineFeatures, TilePipelineModel, TileWorkload


def tile(pages, int4_pages=None, batch=8, candidates=100):
    return TileWorkload(
        tile_vectors=1024,
        shrunk_dim=256,
        hidden_dim=1024,
        batch=batch,
        candidates=candidates,
        fp32_pages_per_channel=np.asarray(pages, dtype=np.int64),
        int4_pages_per_channel=(
            None if int4_pages is None else np.asarray(int4_pages, dtype=np.int64)
        ),
        int4_bytes=128 * 1024,
    )


def model(mac=MacDesign.ALIGNMENT_FREE, hetero=True, overlap=True):
    return TilePipelineModel(
        features=PipelineFeatures(
            mac_design=mac, heterogeneous=hetero, overlap=overlap
        ),
        accelerator=AcceleratorModel(fp32_design=mac),
    )


PAGES = st.lists(st.integers(min_value=0, max_value=200), min_size=8, max_size=8)


class TestPipelineInvariants:
    @given(PAGES)
    @settings(max_examples=60, deadline=None)
    def test_cost_monotone_in_page_load(self, pages):
        """Adding a page to the busiest channel never reduces tile cost."""
        if max(pages) == 0:
            pages[0] = 1
        m = model()
        base = m.tile_timing(tile(pages)).cost
        heavier = list(pages)
        heavier[int(np.argmax(pages))] += 1
        assert m.tile_timing(tile(heavier)).cost >= base

    @given(PAGES)
    @settings(max_examples=60, deadline=None)
    def test_hetero_never_slower_than_homo(self, pages):
        """Removing INT4 interference can only help (same tile)."""
        hetero = model(hetero=True).tile_timing(tile(pages)).cost
        homo = model(hetero=False).tile_timing(
            tile(pages, int4_pages=[4] * 8)
        ).cost
        assert hetero <= homo + 1e-15

    @given(PAGES)
    @settings(max_examples=60, deadline=None)
    def test_overlap_never_slower_than_serial_when_heterogeneous(self, pages):
        """With the heterogeneous layout, the §4.5 dual-module overlap can
        only hide work.  (In the *homogeneous* layout overlap forces the
        INT4 and candidate streams to interleave on the channels, and for
        candidate-heavy tiles the mixing penalty can exceed the overlap
        benefit — exactly the interference §4.3's layout eliminates.)"""
        overlap = model(hetero=True, overlap=True).tile_timing(tile(pages))
        serial_model = TilePipelineModel(
            features=PipelineFeatures(
                mac_design=MacDesign.ALIGNMENT_FREE,
                heterogeneous=True,
                overlap=False,
            ),
        )
        serial = serial_model.tile_timing(tile(pages))
        assert overlap.cost <= serial.cost * (1 + 1e-12)

    @given(PAGES)
    @settings(max_examples=60, deadline=None)
    def test_alignment_free_never_slower_than_naive(self, pages):
        af = model(mac=MacDesign.ALIGNMENT_FREE).tile_timing(tile(pages)).cost
        naive = model(mac=MacDesign.NAIVE).tile_timing(tile(pages)).cost
        assert af <= naive + 1e-15

    @given(PAGES, st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_cost_monotone_in_batch(self, pages, batch):
        """More queries per batch never reduce per-tile time."""
        m = model()
        small = m.tile_timing(tile(pages, batch=batch)).cost
        large = m.tile_timing(tile(pages, batch=batch + 1)).cost
        assert large >= small - 1e-15

    @given(PAGES)
    @settings(max_examples=40, deadline=None)
    def test_utilization_bounded(self, pages):
        m = model()
        result = m.simulate([tile(pages)])
        assert 0.0 <= result.fp32_channel_utilization <= 1.0 + 1e-9

    @given(st.lists(PAGES, min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_total_is_sum_of_costs_plus_overhead(self, tile_pages):
        m = model()
        tiles = [tile(p) for p in tile_pages]
        result = m.simulate(tiles, keep_timings=True)
        assert result.total_time == pytest.approx(
            sum(t.cost for t in result.tile_timings) + result.overhead_time
        )

    @given(PAGES)
    @settings(max_examples=40, deadline=None)
    def test_balanced_is_fastest_arrangement(self, pages):
        """For a fixed page total, the perfectly balanced arrangement is
        never slower than any other distribution of the same pages."""
        total = sum(pages)
        if total == 0:
            return
        m = model()
        arbitrary = m.tile_timing(tile(pages)).cost
        base = total // 8
        balanced = [base] * 8
        for i in range(total % 8):
            balanced[i] += 1
        assert m.tile_timing(tile(balanced)).cost <= arbitrary + 1e-15
