"""Tests for the FTL: mapping, GC, wear leveling, channel ranges."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FlashConfig
from repro.errors import AddressError, CapacityError, SimulationError
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import PhysicalAddress


def tiny_config(**overrides) -> FlashConfig:
    params = dict(
        channels=2,
        packages_per_channel=1,
        dies_per_package=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=4,
    )
    params.update(overrides)
    return FlashConfig(**params)


class TestChannelRanges:
    def test_ranges_are_disjoint_and_ordered(self):
        ftl = FlashTranslationLayer(tiny_config())
        r0 = ftl.channel_logical_range(0)
        r1 = ftl.channel_logical_range(1)
        assert r0.stop == r1.start
        assert len(r0) == len(r1) == ftl.user_pages_per_channel

    def test_user_capacity_excludes_overprovisioning(self):
        cfg = tiny_config()
        ftl = FlashTranslationLayer(cfg, op_ratio=0.25)
        assert ftl.user_pages_per_channel == int(cfg.pages_per_channel * 0.75)

    def test_channel_of_logical_matches_ranges(self):
        ftl = FlashTranslationLayer(tiny_config())
        for channel in range(2):
            for lpa in ftl.channel_logical_range(channel):
                assert ftl.channel_of_logical(lpa) == channel

    def test_out_of_range_rejected(self):
        ftl = FlashTranslationLayer(tiny_config())
        with pytest.raises(AddressError):
            ftl.channel_of_logical(ftl.user_pages)
        with pytest.raises(AddressError):
            ftl.channel_logical_range(5)


class TestMapping:
    def test_write_lands_on_assigned_channel(self):
        ftl = FlashTranslationLayer(tiny_config())
        for channel in range(2):
            lpa = ftl.channel_logical_range(channel).start
            assert ftl.write(lpa).channel == channel

    def test_lookup_returns_written_address(self):
        ftl = FlashTranslationLayer(tiny_config())
        addr = ftl.write(3)
        assert ftl.lookup(3) == addr

    def test_unmapped_lookup_fails(self):
        ftl = FlashTranslationLayer(tiny_config())
        with pytest.raises(AddressError):
            ftl.lookup(0)

    def test_overwrite_moves_physical_page(self):
        ftl = FlashTranslationLayer(tiny_config())
        first = ftl.write(0)
        second = ftl.write(0)
        assert first != second
        assert ftl.lookup(0) == second
        assert ftl.mapped_pages == 1

    def test_trim_unmaps(self):
        ftl = FlashTranslationLayer(tiny_config())
        ftl.write(0)
        ftl.trim(0)
        assert not ftl.is_mapped(0)
        ftl.trim(0)  # idempotent

    def test_distinct_lpas_get_distinct_ppas(self):
        ftl = FlashTranslationLayer(tiny_config())
        seen = set()
        for lpa in range(10):
            addr = ftl.write(lpa)
            flat = ftl.geometry.to_flat(addr)
            assert flat not in seen
            seen.add(flat)


class TestGarbageCollection:
    def test_overwrite_churn_triggers_gc(self):
        ftl = FlashTranslationLayer(tiny_config(), gc_threshold=2)
        # Hammer a small working set far beyond one plane's capacity.
        for i in range(200):
            ftl.write(i % 3)
        assert ftl.gc_events, "GC never ran under overwrite churn"
        # All live data still resolvable.
        for lpa in range(3):
            ftl.lookup(lpa)

    def test_gc_preserves_mapping_contents(self):
        ftl = FlashTranslationLayer(tiny_config(), gc_threshold=2)
        stable = {10, 11}
        for lpa in stable:
            ftl.write(lpa)
        before = {lpa: ftl.geometry.to_flat(ftl.lookup(lpa)) for lpa in stable}
        for i in range(300):
            ftl.write(i % 4)
        # The stable pages are still mapped (possibly relocated).
        for lpa in stable:
            assert ftl.is_mapped(lpa)
        assert ftl.mapped_pages == len(stable | {0, 1, 2, 3})
        assert before  # silence unused warning; relocation is allowed

    def test_gc_victim_relocation_counted(self):
        ftl = FlashTranslationLayer(tiny_config(), gc_threshold=2)
        for i in range(300):
            ftl.write(i % 4)
        assert ftl.pages_relocated >= 0
        total_relocated = sum(e.relocated_pages for e in ftl.gc_events)
        assert total_relocated == ftl.pages_relocated

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            FlashTranslationLayer(tiny_config(), gc_threshold=0)
        with pytest.raises(SimulationError):
            FlashTranslationLayer(tiny_config(), op_ratio=0.9)


class TestWearLeveling:
    def test_erases_spread_across_blocks(self):
        ftl = FlashTranslationLayer(tiny_config(), gc_threshold=2)
        for i in range(600):
            ftl.write(i % 3)
        lo, hi, mean = ftl.wear_stats()
        assert hi >= 1, "no erases happened"
        # Min-wear allocation keeps the spread tight.
        assert hi - lo <= max(3, hi // 2)

    def test_wear_stats_empty_device(self):
        ftl = FlashTranslationLayer(tiny_config())
        assert ftl.wear_stats() == (0, 0, 0.0)


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_mapping_always_consistent(self, writes):
        """After any write sequence, every written LPA resolves to a unique
        physical page on its statically assigned channel."""
        ftl = FlashTranslationLayer(tiny_config(), gc_threshold=2)
        for lpa in writes:
            ftl.write(lpa)
        live = set(writes)
        flats = set()
        for lpa in live:
            addr = ftl.lookup(lpa)
            assert addr.channel == ftl.channel_of_logical(lpa)
            flat = ftl.geometry.to_flat(addr)
            assert flat not in flats
            flats.add(flat)
        assert ftl.mapped_pages == len(live)


class TestCapacityExhaustion:
    """The exhausted-plane error carries enough state to diagnose it."""

    def exhaust(self):
        ftl = FlashTranslationLayer(tiny_config(), gc_threshold=1, op_ratio=0.0)
        for lpa in ftl.channel_logical_range(0):
            ftl.write(lpa)
        with pytest.raises(CapacityError) as excinfo:
            # Every page is valid, so GC has no victim and the overwrite's
            # relocation target cannot be allocated.
            ftl.write(ftl.channel_logical_range(0).start)
        return ftl, str(excinfo.value)

    def test_overfilled_plane_raises(self):
        self.exhaust()

    def test_error_reports_plane_state(self):
        ftl, message = self.exhaust()
        assert "no free blocks" in message
        assert f"/{ftl.config.blocks_per_plane} blocks touched" in message
        assert "valid pages pinned" in message
        assert "erase counts" in message
        assert "gc_threshold=1" in message
        assert "op_ratio=0.0" in message


class TestReliabilityHooks:
    def test_block_erase_count_ground_truth(self):
        ftl = FlashTranslationLayer(tiny_config())
        addr = ftl.write(0)
        assert ftl.block_erase_count(addr) == 0
        virgin = PhysicalAddress(1, 0, 0, 0, 7, 0)
        assert ftl.block_erase_count(virgin) == 0

    def test_refreshable_blocks_sorted_and_full(self):
        ftl = FlashTranslationLayer(tiny_config())
        for lpa in range(12):
            ftl.write(lpa)
        refreshable = ftl.iter_refreshable_blocks()
        assert refreshable == sorted(refreshable)
        for plane_key, block_index in refreshable:
            block = ftl._planes[plane_key].blocks[block_index]
            assert block.is_full and block.valid_pages > 0

    def test_refresh_preserves_mapping_and_bumps_wear(self):
        ftl = FlashTranslationLayer(tiny_config())
        lpas = list(range(12))
        for lpa in lpas:
            ftl.write(lpa)
        refreshable = ftl.iter_refreshable_blocks()
        assert refreshable
        plane_key, block_index = refreshable[0]
        before = ftl._planes[plane_key].blocks[block_index].valid_pages
        migrated = ftl.refresh_block(plane_key, block_index)
        assert migrated == before
        for lpa in lpas:
            ftl.lookup(lpa)
        assert ftl._planes[plane_key].blocks[block_index].erase_count >= 1

    def test_refresh_rejects_unwritten_or_open_blocks(self):
        ftl = FlashTranslationLayer(tiny_config())
        with pytest.raises(AddressError):
            ftl.refresh_block((0, 0, 0, 0), 5)
        ftl.write(0)  # opens (but does not fill) the active block
        active = ftl._planes[(0, 0, 0, 0)].active
        with pytest.raises(SimulationError):
            ftl.refresh_block((0, 0, 0, 0), active.block)
