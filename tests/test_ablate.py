"""Tests for the ablation campaign engine (repro.ablate).

The contracts pinned here are the ones the subsystem exists for:

* matrix generation is deterministic — the same spec yields the same cell
  run IDs, in the same order, every time;
* a killed campaign resumes idempotently from the run registry with zero
  re-executed cells;
* a parallel (multi-process) campaign's report is byte-identical to a
  serial one;
* importance scoring recovers the sign and rank of known synthetic
  effects.
"""

import json

import pytest

from repro.ablate import (
    Axis,
    CampaignSpec,
    axis,
    build_report,
    builtin_campaign,
    campaign_names,
    cell_identity,
    generate_matrix,
    metric_direction,
    metric_harm,
    register_runner,
    report_from_registry,
    run_campaign,
    runner_names,
    score_importance,
    smoke_campaign,
)
from repro.errors import AblationError, ConfigurationError
from repro.obs.runs import RunRegistry, derive_run_id

#: Synthetic campaign with declared effects: naive MAC hurts a lot, the
#: homogeneous layout hurts some, and the "boost" level actually *helps*.
EFFECTS = {
    "mac=naive": {"goodput": -0.40, "p99": 0.50},
    "layout=homo": {"goodput": -0.10, "p99": 0.10},
    "cache=boost": {"goodput": 0.20, "p99": -0.10},
}


def synthetic_spec(mode="one-factor", seed=3, challenger=None):
    return CampaignSpec(
        name="synthetic-test",
        runner="synthetic",
        mode=mode,
        seed=seed,
        axes=(
            Axis("mac", ("cfp32", "naive"), "cfp32"),
            Axis("layout", ("hetero", "homo"), "hetero"),
            Axis("cache", ("on", "boost"), "on"),
        ),
        params={"effects": EFFECTS},
        challenger=challenger,
    )


class TestSpec:
    def test_axis_validation(self):
        with pytest.raises(ConfigurationError):
            Axis("a", ("only",), "only")
        with pytest.raises(ConfigurationError):
            Axis("a", ("x", "x"), "x")
        with pytest.raises(ConfigurationError):
            Axis("a", ("x", "y"), "z")

    def test_axis_helper_defaults_champion_to_first_level(self):
        built = axis("mac", ("cfp32", "naive"))
        assert built.champion == "cfp32"
        assert built.ablations == ("naive",)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_spec(mode="nonsense")
        with pytest.raises(ConfigurationError):
            synthetic_spec(challenger={"mac": "naive"})  # not ab mode
        with pytest.raises(ConfigurationError):
            synthetic_spec(mode="ab")  # ab needs a challenger
        with pytest.raises(ConfigurationError):
            synthetic_spec(mode="ab", challenger={"bogus": "x"})
        with pytest.raises(ConfigurationError):
            synthetic_spec(mode="ab", challenger={"mac": "unknown"})

    def test_spec_json_round_trip(self):
        spec = synthetic_spec(mode="ab", challenger={"mac": "naive"})
        clone = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone == spec

    def test_champion_assignment(self):
        assert synthetic_spec().champion_assignment == {
            "mac": "cfp32", "layout": "hetero", "cache": "on",
        }


class TestMatrix:
    def test_same_spec_same_cell_ids(self):
        first = generate_matrix(synthetic_spec())
        second = generate_matrix(synthetic_spec())
        assert first.cell_ids() == second.cell_ids()
        assert [c.assignment for c in first.cells] == [
            c.assignment for c in second.cells
        ]

    def test_cell_id_is_manifest_identity(self):
        spec = synthetic_spec()
        matrix = generate_matrix(spec)
        for cell in matrix.cells:
            config, workload = cell_identity(spec, cell.assignment)
            assert cell.cell_id == derive_run_id(config, spec.seed, workload)

    def test_one_factor_shape(self):
        matrix = generate_matrix(synthetic_spec())
        assert len(matrix.cells) == 4  # champion + one ablation per axis
        assert matrix.cells[0].is_champion
        assert matrix.champion is matrix.cells[0]
        ablations = [
            (c.ablated_axis, c.ablated_level)
            for c in matrix.cells
            if not c.is_champion
        ]
        assert ablations == [
            ("mac", "naive"), ("layout", "homo"), ("cache", "boost"),
        ]

    def test_factorial_shape(self):
        matrix = generate_matrix(synthetic_spec(mode="factorial"))
        assert len(matrix.cells) == 8
        assert matrix.cells[0].is_champion
        assert len(set(matrix.cell_ids())) == 8

    def test_ab_shape(self):
        spec = synthetic_spec(mode="ab", challenger={"mac": "naive"})
        matrix = generate_matrix(spec)
        assert len(matrix.cells) == 2
        assert matrix.cells[1].assignment["mac"] == "naive"

    def test_ab_identical_challenger_rejected(self):
        spec = synthetic_spec(mode="ab", challenger={"mac": "cfp32"})
        with pytest.raises(AblationError):
            generate_matrix(spec)

    def test_seed_changes_every_cell_id(self):
        a = set(generate_matrix(synthetic_spec(seed=1)).cell_ids())
        b = set(generate_matrix(synthetic_spec(seed=2)).cell_ids())
        assert not a & b


class TestImportance:
    def test_directions(self):
        assert metric_direction("p99_ms") == "higher_is_worse"
        assert metric_direction("goodput_qps") == "lower_is_worse"
        assert metric_direction("mystery_count") is None

    def test_harm_sign_and_bounds(self):
        assert metric_harm("p99_ms", 10.0, 20.0) == pytest.approx(0.5)
        assert metric_harm("goodput_qps", 100.0, 50.0) == pytest.approx(0.5)
        assert metric_harm("shed_rate", 0.0, 1.0) == pytest.approx(1.0)
        assert metric_harm("shed_rate", 0.0, 0.0) == pytest.approx(0.0)
        assert metric_harm("mystery_count", 1.0, 2.0) is None

    def test_known_effects_recovered(self):
        result = run_campaign(synthetic_spec())
        ranking = result.report.ranking
        assert [(e.axis, e.level) for e in ranking] == [
            ("mac", "naive"), ("layout", "homo"), ("cache", "boost"),
        ]
        assert [e.rank for e in ranking] == [1, 2, 3]
        assert ranking[0].sign == +1
        assert ranking[1].sign == +1
        assert ranking[2].sign == -1  # the boost level helps
        assert ranking[0].harm_score > ranking[1].harm_score > 0
        assert ranking[2].harm_score < 0

    def test_factorial_averages_matched_pairs(self):
        result = run_campaign(synthetic_spec(mode="factorial"))
        entry = result.report.entry("mac", "naive")
        assert entry.pairs == 4  # every (layout, cache) context
        assert entry.sign == +1

    def test_ab_multi_axis_challenger_scored(self):
        spec = synthetic_spec(
            mode="ab", challenger={"mac": "naive", "layout": "homo"}
        )
        result = run_campaign(spec)
        assert len(result.report.ranking) == 1
        entry = result.report.ranking[0]
        assert entry.axis == "layout+mac"
        assert entry.sign == +1

    def test_missing_cells_raise_without_allow_partial(self):
        matrix = generate_matrix(synthetic_spec())
        with pytest.raises(AblationError):
            build_report(matrix, {})
        results = {matrix.champion.cell_id: {"goodput": 1.0}}
        partial = build_report(matrix, results, allow_partial=True)
        assert partial.ranking == []

    def test_score_importance_skips_absent_pairs(self):
        matrix = generate_matrix(synthetic_spec())
        results = {
            c.cell_id: {"goodput": 1.0}
            for c in matrix.cells
            if c.is_champion or c.ablated_axis == "mac"
        }
        entries = score_importance(matrix, results)
        assert [(e.axis, e.level) for e in entries] == [("mac", "naive")]


class TestEngine:
    def test_cell_manifests_registered_with_cell_ids(self, tmp_path):
        spec = synthetic_spec()
        result = run_campaign(spec, run_dir=str(tmp_path))
        registry = RunRegistry(str(tmp_path))
        for cell in result.matrix.cells:
            manifest = registry.get(cell.cell_id)
            assert manifest.run_id == cell.cell_id
            assert manifest.label == "campaign/synthetic-test/cell"
        campaign = registry.get(result.campaign_id)
        assert campaign.workload["cells"] == list(result.matrix.cell_ids())
        assert len(campaign.digests) == len(result.matrix.cells)

    def test_resume_after_kill_reexecutes_nothing_extra(self, tmp_path):
        spec = synthetic_spec()
        calls = []

        def flaky(assignment, params, seed):
            if len(calls) >= 2:
                raise RuntimeError("simulated mid-campaign kill")
            calls.append(dict(assignment))
            return {"goodput": 100.0 - 10.0 * len(calls)}

        register_runner("flaky-test", flaky, replace=True)
        killed = CampaignSpec(
            name="flaky", runner="flaky-test", seed=3,
            axes=synthetic_spec().axes, params={},
        )
        with pytest.raises(RuntimeError):
            run_campaign(killed, run_dir=str(tmp_path))
        # Two cells landed before the kill; their manifests survived.
        assert len(RunRegistry(str(tmp_path)).run_ids()) == 2

        def steady(assignment, params, seed):
            calls.append(dict(assignment))
            return {"goodput": 100.0 - 10.0 * len(calls)}

        register_runner("flaky-test", steady, replace=True)
        resumed = run_campaign(killed, run_dir=str(tmp_path))
        assert len(resumed.resumed) == 2
        assert len(resumed.executed) == 2  # only the missing cells ran
        again = run_campaign(killed, run_dir=str(tmp_path))
        assert len(again.resumed) == 4
        assert again.executed == []
        assert again.report.cells == resumed.report.cells
        assert [e.to_dict() for e in again.report.ranking] == [
            e.to_dict() for e in resumed.report.ranking
        ]

    def test_parallel_report_byte_identical_to_serial(self, tmp_path):
        spec = smoke_campaign()
        serial = run_campaign(spec, run_dir=str(tmp_path / "serial"))
        parallel = run_campaign(
            spec, run_dir=str(tmp_path / "parallel"), workers=2
        )
        assert parallel.report.to_json() == serial.report.to_json()
        assert parallel.campaign_id == serial.campaign_id

    def test_no_resume_reexecutes(self, tmp_path):
        spec = synthetic_spec()
        run_campaign(spec, run_dir=str(tmp_path))
        fresh = run_campaign(spec, run_dir=str(tmp_path), resume=False)
        assert len(fresh.executed) == len(fresh.matrix.cells)

    def test_report_from_registry(self, tmp_path):
        spec = synthetic_spec()
        executed = run_campaign(spec, run_dir=str(tmp_path))
        rebuilt = report_from_registry(spec, str(tmp_path))
        assert rebuilt.cells == executed.report.cells
        with pytest.raises(AblationError):
            report_from_registry(
                synthetic_spec(seed=99), str(tmp_path)
            )  # nothing registered for that seed
        partial = report_from_registry(
            spec, str(tmp_path), allow_partial=True
        )
        assert partial.ranking

    def test_unknown_runner_raises(self):
        spec = CampaignSpec(
            name="x", runner="no-such-runner",
            axes=(Axis("a", ("x", "y"), "x"),), params={},
        )
        with pytest.raises(AblationError):
            run_campaign(spec)

    def test_builtin_runners_registered(self):
        assert {"pipeline", "serve", "faults", "cluster", "synthetic"} <= set(
            runner_names()
        )


class TestCampaigns:
    def test_builtins_resolve_and_plan(self):
        for name in campaign_names():
            matrix = generate_matrix(builtin_campaign(name))
            assert matrix.cells[0].is_champion
            assert len(matrix.cells) >= 2

    def test_unknown_campaign_raises(self):
        with pytest.raises(AblationError):
            builtin_campaign("nope")

    def test_overrides_change_identity(self):
        base = generate_matrix(builtin_campaign("smoke"))
        reseeded = generate_matrix(builtin_campaign("smoke", {"seed": 11}))
        assert set(base.cell_ids()) != set(reseeded.cell_ids())

    def test_fleet_policy_campaign_is_full_factorial(self):
        matrix = generate_matrix(builtin_campaign("fleet-policy"))
        assert len(matrix.cells) == 3 * 3 * 2

    def test_smoke_campaign_effects_have_expected_signs(self):
        result = run_campaign(smoke_campaign())
        for entry in result.report.ranking:
            assert entry.sign == +1


class TestCli:
    def test_plan_run_report(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["ablate", "plan", "--campaign", "smoke"]) == 0
        assert "champion" in capsys.readouterr().out
        run_dir = str(tmp_path / "runs")
        out = str(tmp_path / "report.json")
        assert main([
            "ablate", "run", "--campaign", "smoke",
            "--run-dir", run_dir, "--out", out,
        ]) == 0
        capsys.readouterr()
        payload = json.loads(open(out, encoding="utf-8").read())
        assert payload["campaign"] == "smoke"
        assert payload["ranking"]
        assert main([
            "ablate", "report", "--campaign", "smoke", "--run-dir", run_dir,
        ]) == 0
        assert "Component importance" in capsys.readouterr().out

    def test_set_override_changes_cells(self, capsys):
        from repro.cli import main

        assert main(["ablate", "plan", "--campaign", "smoke"]) == 0
        base = capsys.readouterr().out
        assert main([
            "ablate", "plan", "--campaign", "smoke",
            "--set", "base_goodput=2000.0",
        ]) == 0
        assert capsys.readouterr().out != base
