"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a front door that requires no Python:

* ``python -m repro benchmarks`` — print the Table 3 registry;
* ``python -m repro quickstart`` — run a small end-to-end inference
  (``--trace-out``/``--metrics-out`` additionally emit telemetry);
* ``python -m repro figure <fig8|fig9|fig10|fig11|fig12|fig13>`` — regenerate
  one paper figure and print the ours-vs-paper table;
* ``python -m repro report`` — write the full reproduction report;
* ``python -m repro trace`` — run an instrumented inference and export a
  Chrome/Perfetto trace, Prometheus metrics, and JSON-lines telemetry;
* ``python -m repro validate`` — cross-check the analytic and event timing
  backends;
* ``python -m repro serve`` — replay a Poisson arrival stream through the
  SLO-aware serving layer (admission, deadline batching, degradation,
  replica routing) and print goodput / shed rate / latency percentiles;
* ``python -m repro cluster`` — simulate a whole fleet (stateless service
  nodes over replicated data nodes) with placement, failover, work stealing,
  autoscaling, and injectable node/interconnect faults;
* ``python -m repro faults`` — sweep the fault-injection matrix (RBER scales
  x fault classes) and report top-k retention, latency, and SSD read cost;
* ``python -m repro ablate`` — plan, execute (serial or multi-process,
  resumable), and score ablation campaigns over component axes, ranking
  per-component importance against the champion configuration;
* ``python -m repro profile`` — run an instrumented inference and print the
  critical-path attribution report (per-resource time, channel balance,
  transfer interference); ``--out`` writes the JSON form;
* ``python -m repro perf-diff`` — compare two bench/metrics JSON files under
  per-metric tolerance bands; exits nonzero on regression
  (``--update-baseline`` rewrites the checked-in baseline instead);
* ``python -m repro runs`` — list, show, compare, and divergence-check the
  run manifests registered by ``serve``/``faults``/``profile --run-dir``;
* ``python -m repro lint`` — run the reprolint determinism checks
  (``python -m repro.lint`` is the standalone equivalent).

``-v``/``-vv`` (before or after the subcommand) raise the logging level of
the ``repro`` logger tree to INFO/DEBUG.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

import numpy as np


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    from .analysis.reporting import render_table
    from .units import pretty_bytes
    from .workloads.benchmarks import list_benchmarks

    rows = [
        [s.name, s.model, s.dataset, f"{s.num_labels:,}", s.hidden_dim,
         pretty_bytes(s.int4_matrix_bytes), pretty_bytes(s.fp32_matrix_bytes)]
        for s in list_benchmarks()
    ]
    print(render_table(
        ["benchmark", "model", "dataset", "categories", "D",
         "4-bit matrix", "32-bit matrix"],
        rows, title="Table 3 benchmarks",
    ))
    return 0


def _session_from_args(args: argparse.Namespace):
    """Build+install an observability session when any output flag is set."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    jsonl_out = getattr(args, "jsonl_out", None)
    stream_out = getattr(args, "jsonl_stream_out", None)
    if not (trace_out or metrics_out or jsonl_out or stream_out):
        return None
    from . import obs
    from .config import ObservabilityConfig

    return obs.configure(
        ObservabilityConfig(
            trace_out=trace_out,
            metrics_out=metrics_out,
            jsonl_out=jsonl_out,
            jsonl_stream_out=stream_out,
            span_seed=getattr(args, "seed", 0) or 0,
        )
    )


def _register_run(
    run_dir: str,
    label: str,
    seed: int,
    config: dict,
    workload: dict,
    metrics: dict,
    digests=None,
    artifacts: Optional[dict] = None,
) -> str:
    """Build+register a run manifest; prints and returns its path."""
    from .obs.runs import RunManifest, RunRegistry

    manifest = RunManifest.build(
        label=label,
        seed=seed,
        config=config,
        workload=workload,
        metrics=metrics,
        digests=digests,
    )
    for name, path in sorted((artifacts or {}).items()):
        manifest.add_artifact(name, path)
    registry = RunRegistry(run_dir)
    path = registry.register(manifest)
    print(f"registered run {manifest.run_id} -> {path}")
    return path


def _replay_flash_commands(session, cap_per_channel: int = 48) -> int:
    """Replay the run's per-channel page loads through the event simulator.

    The analytic pipeline knows how many pages each channel moved but not
    when each flash command ran; this replay issues the same per-channel
    page counts (capped, to keep traces small) as real READ commands through
    a :class:`~repro.ssd.trace.TracingController` so the exported timeline
    carries per-command ``flash/ch<N>`` slices next to the tile spans.
    """
    from .config import ECSSDConfig
    from .ssd.controller import CommandKind, FlashCommand
    from .ssd.device import SSDDevice
    from .ssd.trace import CommandTrace, TracingController

    counter = session.registry.get("ecssd_pages_fetched_total")
    config = ECSSDConfig()
    per_channel = {c: 8 for c in range(config.flash.channels)}
    if counter is not None:
        for labels, value in counter.samples():
            channel = int(dict(labels).get("channel", 0))
            per_channel[channel] = min(int(value), cap_per_channel)
    device = SSDDevice(config)
    trace = CommandTrace()
    for channel, pages in sorted(per_channel.items()):
        if pages <= 0:
            continue
        base = device.ftl.channel_logical_range(channel).start
        lpas = [base + i for i in range(pages)]
        for lpa in lpas:
            device.ftl.write(lpa)
        commands = [
            FlashCommand(CommandKind.READ, device.ftl.lookup(lpa)) for lpa in lpas
        ]
        TracingController(device.controllers[channel], trace).submit(0.0, commands)
    return session.tracer.add_command_trace(trace)


def _finish_session(session, replay_flash: bool = True) -> None:
    """Replay flash slices, write configured outputs, restore recorders.

    ``replay_flash=False`` skips the synthetic flash replay for commands
    (like ``serve``) whose telemetry has no per-channel page story to tell.
    """
    if session is None:
        return
    if replay_flash and session.tracer.enabled:
        _replay_flash_commands(session)
    for path in session.flush():
        print(f"wrote {path}")
    session.uninstall()


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_seconds
    from .core.api import ECSSD
    from .workloads.synthetic import make_workload

    session = _session_from_args(args)
    try:
        workload = make_workload(
            num_labels=args.labels, hidden_dim=256, num_queries=48, seed=args.seed
        )
        device = ECSSD()
        device.ecssd_enable()
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        queries = workload.features[32:40]
        device.int4_input_send(queries)
        device.cfp32_input_send(device.pre_align(queries))
        device.int4_screen()
        device.cfp32_classify()
        labels = device.get_results()
    finally:
        _finish_session(session)
    exact = queries @ workload.weights.T
    agreement = float((labels[:, 0] == exact.argmax(axis=1)).mean())
    report = device.last_report
    print(f"labels (8 queries x top-5):\n{labels}")
    print(f"top-1 agreement with exact FP32: {agreement:.0%}")
    print(f"device batch latency: {format_seconds(report.scaled_total_time)}")
    print(f"fp32 channel utilization: {report.fp32_channel_utilization:.1%}")
    return 0


def _cmd_trace_attribute(args: argparse.Namespace) -> int:
    """Causally-traced fleet run answering "where does tail latency live"."""
    import json

    from .obs.causal import CausalCollector, installed, trace_to_chrome

    (
        simulator, arrivals, rate, capacity, service, fault_config
    ) = _build_cluster_from_args(args)
    collector = CausalCollector(
        slowest_k=args.slowest, sample_size=args.sample, seed=args.seed
    )
    with _simsan_context(args) as sanitizer:
        with installed(collector):
            simulator.run(arrivals)
    attribution = collector.report()
    print(
        f"fleet at {rate:,.0f} q/s ({rate / capacity:.2f}x saturation), "
        f"fault plan: {args.fault_plan or 'none'}"
    )
    print(attribution.render())
    if args.out:
        payload = {
            "benchmark": args.benchmark,
            "seed": args.seed,
            "rate_qps": rate,
            "requests": args.requests,
            "fault_plan": args.fault_plan,
            "attribution": attribution.to_dict(),
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.exemplar_out:
        exemplars = list(attribution.slowest) + list(attribution.sampled)
        if not exemplars:
            print("no exemplars captured; skipping Chrome-trace export")
        else:
            chosen = exemplars[0]
            if args.exemplar is not None:
                matches = [
                    t for t in exemplars if t.request_id == args.exemplar
                ]
                if not matches:
                    known = ", ".join(t.trace_id for t in exemplars)
                    print(
                        f"request {args.exemplar} is not a captured "
                        f"exemplar (have: {known})"
                    )
                    return 1
                chosen = matches[0]
            with open(args.exemplar_out, "w", encoding="utf-8") as fh:
                json.dump(trace_to_chrome(chosen), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(
                f"wrote {chosen.trace_id} causal graph "
                f"({chosen.latency * 1e3:.3f} ms, {chosen.fault_class}) "
                f"to {args.exemplar_out}"
            )
    return _simsan_finish(sanitizer)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Instrumented inference whose sole product is the telemetry files."""
    if getattr(args, "trace_command", None) == "attribute":
        return _cmd_trace_attribute(args)

    from .core.api import ECSSD
    from .workloads.synthetic import make_workload

    args.trace_out = args.out
    session = _session_from_args(args)
    try:
        workload = make_workload(
            num_labels=args.labels, hidden_dim=256, num_queries=48, seed=args.seed
        )
        device = ECSSD()
        device.ecssd_enable()
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        device.int4_input_send(workload.features[32:40])
        device.cfp32_input_send(device.pre_align(workload.features[32:40]))
        device.int4_screen()
        spans = len(session.tracer.spans)
        tracks = session.tracer.tracks()
    finally:
        _finish_session(session)
    print(f"recorded {spans} pipeline spans across tracks: {', '.join(tracks)}")
    print("open the trace file in https://ui.perfetto.dev or chrome://tracing")
    return 0


_FIGURES = ("fig8", "fig9", "fig10", "fig11", "fig12", "fig13")


def _cmd_figure(args: argparse.Namespace) -> int:
    from .analysis import experiments as exp
    from .analysis.reporting import render_table

    name = args.name
    if name == "fig8":
        steps = exp.fig8_breakdown(queries=16, sample_tiles=8)
        rows = [
            [s.label, f"{s.speedup_vs_baseline:.2f}x",
             "-" if s.paper_speedup is None else f"{s.paper_speedup:.2f}x",
             f"{s.fp32_utilization:.1%}"]
            for s in steps
        ]
        print(render_table(
            ["technique", "speedup", "paper", "fp32 util"], rows, title="Fig. 8"
        ))
    elif name == "fig9":
        rows = [
            [r.design, f"{r.area_ratio:.2f}x", f"{r.paper_area_ratio:.2f}x",
             f"{r.power_ratio:.2f}x", f"{r.paper_power_ratio:.2f}x"]
            for r in exp.fig9_mac_comparison()
        ]
        print(render_table(
            ["design", "area", "paper", "power", "paper"], rows, title="Fig. 9"
        ))
    elif name == "fig10":
        points = exp.fig10_hetero_layout(queries=16, sample_tiles=8)
        rows = [[f"{p.candidate_ratio:.0%}", f"{p.speedup:.2f}x"] for p in points]
        print(render_table(
            ["candidate ratio", "hetero speedup"], rows, title="Fig. 10"
        ))
    elif name == "fig11":
        uniform, learned = exp.fig11_access_pattern()
        rows = [
            [f"ch{c}", int(uniform.pages_per_channel[c]),
             int(learned.pages_per_channel[c])]
            for c in range(len(uniform.pages_per_channel))
        ]
        print(render_table(
            ["channel", "uniform", "learned"], rows, title="Fig. 11"
        ))
    elif name == "fig12":
        results = exp.fig12_interleaving(queries=16, sample_tiles=8)
        rows = [
            [r.benchmark, f"{r.speedup('uniform', 'learned'):.2f}x",
             f"{r.speedup('sequential', 'learned'):.2f}x"]
            for r in results
        ]
        print(render_table(
            ["benchmark", "learned/uniform", "learned/sequential"],
            rows, title="Fig. 12",
        ))
    elif name == "fig13":
        results = exp.fig13_end_to_end(queries=8, sample_tiles=8)
        rows = [
            [r.architecture, f"{r.mean_slowdown_vs_ecssd:.2f}x",
             "-" if r.paper_slowdown is None else f"{r.paper_slowdown:.2f}x"]
            for r in results
        ]
        print(render_table(
            ["architecture", "slowdown", "paper"], rows, title="Fig. 13"
        ))
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown figure {name}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report_builder import build_report

    session = _session_from_args(args)
    try:
        text = build_report(queries=args.queries, sample_tiles=args.tiles)
    finally:
        _finish_session(session)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({len(text)} chars)")
    return 0


def _cmd_validate(_args: argparse.Namespace) -> int:
    from .analysis.reporting import format_seconds, render_table
    from .analysis.validation import cross_validate

    report = cross_validate(tiles=2)
    rows = [
        [row.strategy, format_seconds(row.analytic_flash),
         format_seconds(row.event_flash), f"{row.ratio:.2f}x"]
        for row in report.rows
    ]
    print(render_table(
        ["strategy", "analytic flash time", "event flash time", "event/analytic"],
        rows, title="Backend cross-validation",
    ))
    ok = report.ordering_agrees() and report.within_envelope()
    print(f"ordering agrees: {report.ordering_agrees()};"
          f" within envelope {report.envelope}: {report.within_envelope()}")
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Replay an arrival stream through the deterministic serving layer."""
    import json

    from .analysis.reporting import format_seconds, render_table
    from .core.batching import BatchingAnalyzer
    from .serve import (
        AffineServiceModel,
        ServingConfig,
        build_serving_stack,
        saturating_rate,
        shard_hot_degrees,
    )
    from .workloads.benchmarks import get_benchmark
    from .workloads.streams import poisson_arrivals
    from .workloads.traces import CandidateTraceGenerator, LabelHotnessModel

    spec = get_benchmark(args.benchmark)
    slo = args.slo_ms / 1000.0

    # Calibrate the affine service model from a real batch sweep so the
    # serving layer and the batching ablation agree on the roofline knee.
    hotness = LabelHotnessModel(
        num_labels=spec.num_labels, run_length=1, seed=args.seed
    )
    generator = CandidateTraceGenerator(
        hotness, candidate_ratio=0.10, query_noise=0.05
    )
    analyzer = BatchingAnalyzer(spec, generator, sample_tiles=args.tiles)
    points = analyzer.sweep((1, 2, 4, 8, 16, 32))
    service = AffineServiceModel.from_batch_points(points)

    config = ServingConfig(
        slo=slo, shards=args.shards, replicas=args.replicas
    )
    degrees = shard_hot_degrees(generator, args.shards, tile_size=512)
    recorder = None
    if args.run_dir:
        from .obs.digest import DigestRecorder

        recorder = DigestRecorder(interval=args.digest_interval, label="serve")
    simulator = build_serving_stack(
        service, config, hot_degrees=degrees, digest_recorder=recorder
    )

    capacity = saturating_rate(service, config)
    rate = args.rate if args.rate is not None else capacity
    num_queries = max(1, int(round(rate * args.duration)))
    arrivals = poisson_arrivals(rate, num_queries, seed=args.seed)
    # The session brackets only the serving run, so the exported telemetry
    # carries batch/shed spans without the calibration sweep's tile spans.
    session = _session_from_args(args)
    try:
        with _simsan_context(args) as sanitizer:
            report = simulator.run(arrivals)
    finally:
        _finish_session(session, replay_flash=False)

    summary = report.to_dict()
    rows = [
        ["offered load", f"{rate:,.0f} q/s ({rate / capacity:.2f}x saturation)"],
        ["arrived / admitted / shed",
         f"{report.arrived} / {report.admitted} / {report.shed_count}"],
        ["shed rate", f"{report.shed_rate:.1%}"],
        ["goodput", f"{report.goodput:,.0f} q/s within SLO"],
        ["SLO attainment", f"{report.slo_attainment:.1%} of admitted"],
    ]
    for label, key in (
        ("p50", "p50_s"),
        ("p95", "p95_s"),
        ("p99", "p99_s"),
        ("p99.9", "p999_s"),
    ):
        value = summary[key]
        rows.append([
            f"{label} latency",
            "-" if value is None
            else f"{format_seconds(value)} (SLO {format_seconds(slo)})",
        ])
    rows.append(["batches", f"{len(report.batches)} "
                 f"(mean size {report.mean_batch_size:.1f}, "
                 f"knee {service.knee})"])
    rows.append(["max degrade level", str(report.max_degrade_level)])
    if session is not None:
        waits = session.registry.histogram(
            "serve_queue_wait_seconds",
            "time each request waited in queue before dispatch",
        ).quantiles_or_none()
        if waits is not None:
            rows.append([
                "queue wait p50/p99/p99.9",
                f"{format_seconds(waits['p50'])} / "
                f"{format_seconds(waits['p99'])} / "
                f"{format_seconds(waits['p99.9'])}",
            ])
    print(render_table(
        ["quantity", "value"], rows,
        title=f"Serving {args.benchmark}: {args.shards} shards x "
              f"{args.replicas} replicas, SLO {args.slo_ms:g}ms",
    ))

    if args.out:
        payload = {
            "benchmark": args.benchmark,
            "seed": args.seed,
            "duration_s": args.duration,
            "rate_qps": rate,
            "saturating_rate_qps": capacity,
            "shards": args.shards,
            "replicas": args.replicas,
            "service": {
                "base_s": service.base,
                "per_query_s": service.per_query,
                "knee": service.knee,
            },
            "report": summary,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.run_dir:
        artifacts = {}
        if args.out:
            artifacts["summary"] = args.out
        stream_out = getattr(args, "jsonl_stream_out", None)
        if stream_out:
            artifacts["spans"] = stream_out
        _register_run(
            args.run_dir,
            label=f"serve/{args.benchmark}",
            seed=args.seed,
            config={
                "benchmark": args.benchmark,
                "slo_ms": args.slo_ms,
                "shards": args.shards,
                "replicas": args.replicas,
                "tiles": args.tiles,
                "duration_s": args.duration,
                "rate_qps": rate,
            },
            workload={
                "kind": "poisson",
                "rate_qps": rate,
                "num_queries": num_queries,
            },
            metrics=summary,
            digests=recorder.entries if recorder is not None else None,
            artifacts=artifacts,
        )
    return _simsan_finish(sanitizer)


def _build_cluster_from_args(args: argparse.Namespace, recorder=None):
    """Calibrate the service model and assemble the fleet a CLI run drives.

    Shared by ``repro cluster`` and ``repro trace attribute`` so both
    commands simulate the exact same fleet for the same flags (same
    calibration sweep, placement, fault plan, and arrival stream).
    Returns ``(simulator, arrivals, rate, capacity, service, fault_config)``.
    """
    from .cluster import ClusterConfig, build_cluster, cluster_saturating_rate
    from .core.batching import BatchingAnalyzer
    from .faults import ClusterFaultConfig
    from .serve import AffineServiceModel, shard_hot_degrees
    from .workloads.benchmarks import get_benchmark
    from .workloads.streams import poisson_arrivals
    from .workloads.traces import CandidateTraceGenerator, LabelHotnessModel

    spec = get_benchmark(args.benchmark)

    # Same calibration path as ``serve``: fit the affine service model from
    # a real batch sweep so fleet timing rests on measured tile costs.
    hotness = LabelHotnessModel(
        num_labels=spec.num_labels, run_length=1, seed=args.seed
    )
    generator = CandidateTraceGenerator(
        hotness, candidate_ratio=0.10, query_noise=0.05
    )
    analyzer = BatchingAnalyzer(spec, generator, sample_tiles=args.tiles)
    points = analyzer.sweep((1, 2, 4, 8, 16, 32))
    service = AffineServiceModel.from_batch_points(points)

    config = ClusterConfig(
        data_nodes=args.nodes,
        service_nodes=args.service_nodes,
        shards=args.shards,
        replicas=args.replicas,
        racks=args.racks,
        slots_per_node=args.slots,
        slo=args.slo_ms / 1000.0,
        placement_strategy=args.placement,
        steal_policy=args.steal,
        autoscale=not args.no_autoscale,
        autoscale_min=args.autoscale_min,
        autoscale_interval=args.autoscale_interval,
    )
    degrees = shard_hot_degrees(generator, args.shards, tile_size=512)

    capacity = cluster_saturating_rate(service, config)
    rate = args.rate if args.rate is not None else capacity
    arrivals = poisson_arrivals(rate, args.requests, seed=args.seed)
    horizon = float(arrivals[-1])

    fault_config = None
    if args.fault_plan:
        fault_config = ClusterFaultConfig.from_spec(
            args.fault_plan, seed=args.seed, horizon=horizon
        )

    simulator = build_cluster(
        service,
        config,
        seed=args.seed,
        fault_config=fault_config,
        hot_degrees=degrees,
        digest_recorder=recorder,
    )
    return simulator, arrivals, rate, capacity, service, fault_config


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Simulate a fleet of service/data nodes under load and faults."""
    import json

    from .analysis.reporting import format_seconds, render_table

    slo = args.slo_ms / 1000.0
    recorder = None
    if args.run_dir:
        from .obs.digest import DigestRecorder

        recorder = DigestRecorder(interval=args.digest_interval, label="cluster")
    (
        simulator, arrivals, rate, capacity, service, fault_config
    ) = _build_cluster_from_args(args, recorder=recorder)

    collector = None
    if args.attribution_out:
        from .obs.causal import CausalCollector, installed

        collector = CausalCollector(seed=args.seed)

    session = _session_from_args(args)
    try:
        with _simsan_context(args) as sanitizer:
            if collector is not None:
                with installed(collector):
                    report = simulator.run(arrivals)
            else:
                report = simulator.run(arrivals)
    finally:
        _finish_session(session, replay_flash=False)

    if collector is not None:
        attribution = collector.report()
        with open(args.attribution_out, "w", encoding="utf-8") as fh:
            json.dump(attribution.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.attribution_out}")

    summary = report.to_dict()
    rows = [
        ["offered load", f"{rate:,.0f} q/s ({rate / capacity:.2f}x saturation)"],
        ["fleet", f"{args.service_nodes} service + {args.nodes} data nodes, "
                  f"{args.racks} racks, {args.slots} slots/node"],
        ["placement", f"{args.shards} shards x "
                      f"{simulator.placement.total_replicas / args.shards:.1f} "
                      f"mean replicas ({args.placement})"],
        ["policies", f"steal={args.steal}, autoscale="
                     f"{'off' if args.no_autoscale else 'on'}"],
        ["arrived / completed / shed",
         f"{report.arrived} / {report.completed} / {report.shed}"],
        ["shed rate", f"{report.shed_rate:.2%}"],
        ["cache hit rate", f"{report.cache_hit_rate:.2%}"],
        ["goodput", f"{report.goodput:,.0f} q/s within SLO"],
        ["SLO attainment", f"{report.slo_attainment:.2%} of completed"],
    ]
    for label, key in (
        ("p50", "p50_s"),
        ("p95", "p95_s"),
        ("p99", "p99_s"),
        ("p99.9", "p999_s"),
    ):
        value = summary[key]
        rows.append([
            f"{label} latency",
            "-" if value is None
            else f"{format_seconds(value)} (SLO {format_seconds(slo)})",
        ])
    rows.append(["batches / shard tasks",
                 f"{report.batches} / {report.tasks_done}"])
    rows.append(["work stealing",
                 f"{report.steals} tasks ({report.steal_rate:.2%})"])
    rows.append(["failover",
                 f"{report.redispatches} redispatched, "
                 f"{report.parked_events} parked "
                 f"({format_seconds(report.parked_time)} total)"])
    rows.append(["shard outage",
                 f"{format_seconds(report.failover_downtime)} with no live "
                 f"replica"])
    rows.append(["autoscaling",
                 f"{report.scale_ups} up / {report.scale_downs} down "
                 f"(peak {report.peak_active_service_nodes} active)"])
    rows.append(["utilization skew", f"{report.utilization_skew:.2f}x"])
    print(render_table(
        ["quantity", "value"], rows,
        title=f"Fleet {args.benchmark}: {args.nodes} data nodes, "
              f"{args.replicas} replicas, SLO {args.slo_ms:g}ms",
    ))

    if args.out:
        payload = {
            "benchmark": args.benchmark,
            "seed": args.seed,
            "rate_qps": rate,
            "saturating_rate_qps": capacity,
            "requests": args.requests,
            "fault_plan": (
                simulator.fault_plan.to_dict() if fault_config else None
            ),
            "service": {
                "base_s": service.base,
                "per_query_s": service.per_query,
                "knee": service.knee,
            },
            "placement": simulator.placement.to_dict(),
            "report": summary,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.run_dir:
        artifacts = {}
        if args.out:
            artifacts["summary"] = args.out
        stream_out = getattr(args, "jsonl_stream_out", None)
        if stream_out:
            artifacts["spans"] = stream_out
        if args.attribution_out:
            artifacts["attribution"] = args.attribution_out
        _register_run(
            args.run_dir,
            label=f"cluster/{args.benchmark}",
            seed=args.seed,
            config={
                "benchmark": args.benchmark,
                "slo_ms": args.slo_ms,
                "data_nodes": args.nodes,
                "service_nodes": args.service_nodes,
                "shards": args.shards,
                "replicas": args.replicas,
                "racks": args.racks,
                "slots_per_node": args.slots,
                "placement_strategy": args.placement,
                "steal_policy": args.steal,
                "autoscale": not args.no_autoscale,
                "fault_plan": args.fault_plan,
                "rate_qps": rate,
            },
            workload={
                "kind": "poisson",
                "rate_qps": rate,
                "num_queries": args.requests,
            },
            metrics=summary,
            digests=recorder.entries if recorder is not None else None,
            artifacts=artifacts,
        )
    return _simsan_finish(sanitizer)


def _cmd_faults(args: argparse.Namespace) -> int:
    """Run the fault-injection matrix and print/write its report."""
    import json

    from .analysis.reporting import format_seconds, render_table
    from .faults.harness import FAULT_CLASSES, run_fault_matrix

    classes = args.classes.split(",") if args.classes else list(FAULT_CLASSES)
    scales = [float(s) for s in args.scales.split(",")]
    recorder = None
    if args.run_dir:
        from .obs.digest import DigestRecorder

        recorder = DigestRecorder(label="faults")
    session = _session_from_args(args)
    try:
        with _simsan_context(args) as sanitizer:
            report = run_fault_matrix(
                num_labels=args.labels,
                num_queries=args.queries,
                seed=args.seed,
                rber_scales=scales,
                fault_classes=classes,
                digest_recorder=recorder,
            )
    finally:
        _finish_session(session)
    rows = []
    for fault_class in classes:
        for scale in scales:
            cell = report.cell(fault_class, scale)
            rows.append([
                fault_class,
                f"{scale:g}x",
                f"{cell['retention']:.1%}",
                f"{cell['latency_vs_clean']:.3f}x",
                format_seconds(cell["storm"]["mean_read_latency_s"]),
                int(cell["storm"]["failed_reads"]),
            ])
    print(render_table(
        ["fault class", "rber", "top-k retention", "latency vs clean",
         "ssd read latency", "failed reads"],
        rows,
        title=f"Fault matrix: {report.num_labels} labels, "
              f"{report.queries} queries, seed {report.seed}",
    ))
    if session is not None:
        tiles = session.registry.histogram(
            "ecssd_tile_latency_seconds",
            "steady-state cost of one pipeline tile",
        ).quantiles_or_none()
        if tiles is not None:
            print(
                f"tile latency p50/p95/p99/p99.9 across the matrix: "
                f"{format_seconds(tiles['p50'])} / "
                f"{format_seconds(tiles['p95'])} / "
                f"{format_seconds(tiles['p99'])} / "
                f"{format_seconds(tiles['p99.9'])}"
            )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.run_dir:
        _register_run(
            args.run_dir,
            label="faults",
            seed=args.seed,
            config={
                "labels": args.labels,
                "queries": args.queries,
                "scales": args.scales,
                "classes": ",".join(classes),
            },
            workload={"kind": "fault-matrix", "cells": len(classes) * len(scales)},
            metrics=report.to_dict(),
            digests=recorder.entries if recorder is not None else None,
            artifacts={"matrix": args.out} if args.out else None,
        )
    return _simsan_finish(sanitizer)


def _cmd_profile(args: argparse.Namespace) -> int:
    """Instrumented inference + critical-path attribution over its trace."""
    import json

    from . import obs
    from .core.api import ECSSD
    from .obs.profile import profile_trace
    from .workloads.synthetic import make_workload

    if getattr(args, "spans", None):
        # Offline mode: profile a recorded span stream (e.g. the
        # --jsonl-stream-out file of a serve/cluster run) instead of
        # running a fresh instrumented inference.
        from .obs.export import read_jsonl_spans

        report = profile_trace(read_jsonl_spans(args.spans), None)
        print(report.render())
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.out}")
        return 0

    # Recorders live in memory; outputs (if any) flow through the usual
    # session flush.  The report itself is computed before uninstall so it
    # can read the session's registry.
    session = _session_from_args(args) or obs.configure(None)
    try:
        workload = make_workload(
            num_labels=args.labels, hidden_dim=256, num_queries=48, seed=args.seed
        )
        device = ECSSD()
        device.ecssd_enable()
        device.weight_deploy(workload.weights, train_features=workload.features[:32])
        device.int4_input_send(workload.features[32:40])
        device.cfp32_input_send(device.pre_align(workload.features[32:40]))
        device.int4_screen()
        if session.tracer.enabled:
            _replay_flash_commands(session)
        report = profile_trace(session.tracer.spans, session.registry)
    finally:
        _finish_session(session, replay_flash=False)
    print(report.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.run_dir:
        _register_run(
            args.run_dir,
            label="profile",
            seed=args.seed,
            config={"labels": args.labels},
            workload={"kind": "instrumented-inference"},
            metrics=report.to_dict(),
            artifacts={"profile": args.out} if args.out else None,
        )
    return 0


def _cmd_perf_diff(args: argparse.Namespace) -> int:
    """Compare two metrics JSON files; exit nonzero on regression."""
    import json

    from .obs.perfdiff import diff_files, parse_tolerance_spec, update_baseline

    extra = tuple(parse_tolerance_spec(spec) for spec in args.tolerance)
    report = diff_files(
        args.baseline,
        args.candidate,
        extra_tolerances=extra,
        default_rel_tol=args.default_rel_tol,
    )
    print(report.render(show_ok=args.show_ok))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.update_baseline:
        manifest_path = update_baseline(
            args.baseline, args.candidate, run_dir=args.run_dir
        )
        print(f"updated baseline {args.baseline} from {args.candidate}")
        if manifest_path:
            print(f"recorded baseline update -> {manifest_path}")
        return 0
    return report.exit_code


def _coerce_override(value: str) -> object:
    """CLI ``--set key=value`` values: JSON when it parses, else a string."""
    import json

    try:
        return json.loads(value)
    except json.JSONDecodeError:
        return value


def _cmd_ablate(args: argparse.Namespace) -> int:
    """Plan, execute, or re-score an ablation campaign."""
    from .ablate import (
        builtin_campaign,
        campaign_names,
        generate_matrix,
        report_from_registry,
        run_campaign,
    )
    from .analysis.reporting import render_table

    overrides: Dict[str, object] = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    for item in args.set:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"--set needs key=value, got {item!r}", file=sys.stderr)
            return 2
        overrides[key] = _coerce_override(value)
    spec = builtin_campaign(args.campaign, overrides)
    matrix = generate_matrix(spec)

    if args.ablate_command == "plan":
        rows = [
            [
                str(cell.index),
                cell.cell_id[:16],
                "champion" if cell.is_champion
                else (f"{cell.ablated_axis}={cell.ablated_level}"
                      if cell.ablated_axis else "variant"),
                ", ".join(f"{k}={v}" for k, v in cell.assignment.items()),
            ]
            for cell in matrix.cells
        ]
        print(render_table(
            ["cell", "run id", "role", "assignment"], rows,
            title=f"Campaign {spec.name}: {spec.mode}, runner "
                  f"{spec.runner}, seed {spec.seed} "
                  f"({len(matrix.cells)} cells; built-ins: "
                  f"{', '.join(campaign_names())})",
        ))
        return 0

    if args.ablate_command == "run":
        result = run_campaign(
            spec,
            run_dir=args.run_dir,
            workers=args.workers,
            resume=not args.no_resume,
        )
        report = result.report
        print(
            f"campaign {spec.name}: {len(matrix.cells)} cells "
            f"({len(result.executed)} executed, {len(result.resumed)} "
            f"resumed)"
            + (f", campaign manifest {result.campaign_id}"
               if result.campaign_id else "")
        )
    else:  # report
        if not args.run_dir:
            print("ablate report needs --run-dir", file=sys.stderr)
            return 2
        report = report_from_registry(
            spec, args.run_dir, allow_partial=args.allow_partial
        )

    rows = [
        [
            str(entry.rank),
            entry.axis,
            entry.champion_level,
            entry.level,
            f"{entry.harm_score:+.4f}",
            f"{entry.sign:+d}",
            str(entry.pairs),
        ]
        for entry in report.ranking
    ]
    print(render_table(
        ["rank", "axis", "champion", "ablated to", "harm", "sign", "pairs"],
        rows,
        title=f"Component importance: {spec.name} "
              f"(champion {report.champion_id[:16]})",
    ))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.out}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(report.render_markdown())
        print(f"wrote {args.markdown}")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    """Inspect, compare, and divergence-check registered run manifests."""
    from .errors import ObservabilityError
    from .obs.perfdiff import parse_tolerance_spec
    from .obs.runs import RunRegistry, compare_many, diverge_runs

    registry = RunRegistry(args.run_dir)
    command = args.runs_command
    if command == "list":
        manifests = registry.query(label=args.label, seed=args.seed)
        for manifest in manifests:
            print(manifest.summary_line())
        if not manifests:
            print(f"no runs registered under {args.run_dir}")
        return 0
    if command == "show":
        print(registry.get(args.run_id).to_json(), end="")
        return 0
    if command == "compare":
        extra = tuple(parse_tolerance_spec(spec) for spec in args.tolerance)
        # First run is the baseline; every later run diffs against it.
        # --missing-ok skips unresolvable IDs (e.g. campaign cells whose
        # optional artifacts were never produced) instead of raising.
        resolved = []
        for run_id in args.run_ids:
            try:
                resolved.append(registry.get(run_id))
            except ObservabilityError as exc:
                if not args.missing_ok:
                    raise
                print(f"skipping {run_id}: {exc}")
        if len(resolved) < 2:
            print("need a baseline and at least one comparable run")
            return 0 if args.missing_ok else 2
        baseline, candidates = resolved[0], resolved[1:]
        exit_code = 0
        for candidate, report in compare_many(
            baseline,
            candidates,
            tolerances=extra,
            default_rel_tol=args.default_rel_tol,
        ):
            if len(candidates) > 1:
                print(f"== {baseline.run_id} vs {candidate.run_id} "
                      f"({candidate.label or 'unlabelled'}) ==")
            print(report.render(show_ok=args.show_ok))
            exit_code = max(exit_code, report.exit_code)
        return exit_code
    if command == "diverge":
        manifest_a = registry.get(args.run_a)
        manifest_b = registry.get(args.run_b)
        report = diverge_runs(manifest_a, manifest_b)
        print(report.render())
        if report.divergence is not None and args.context > 0:
            _print_divergence_context(manifest_a, report, args.context)
        return 1 if report.diverged else 0
    print(f"unknown runs subcommand {command!r}", file=sys.stderr)
    return 2


def _print_divergence_context(manifest, report, limit: int) -> None:
    """Print spans bracketing the first divergence, from the spans artifact."""
    from .obs.digest import spans_in_window
    from .obs.export import read_jsonl_spans

    artifact = manifest.artifacts.get("spans")
    if artifact is None:
        return
    try:
        spans = read_jsonl_spans(artifact["path"])
    except OSError:
        print(f"(spans artifact {artifact['path']} unreadable; no context)")
        return
    divergence = report.divergence
    window = spans_in_window(
        spans, divergence.last_match_sim_time, divergence.sim_time_a
    )
    if not window:
        return
    print(f"spans between last match and divergence ({report.run_a}):")
    for span in window[-limit:]:
        print(
            f"  [{span.sim_start:.6g}s - {span.sim_end:.6g}s] "
            f"{span.track}/{span.name}"
        )


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run

    return run(args)


def _add_verbose(parser: argparse.ArgumentParser, dest: str = "verbose") -> None:
    parser.add_argument(
        "-v",
        "--verbose",
        dest=dest,
        action="count",
        default=0,
        help="-v for INFO, -vv for DEBUG logging",
    )


def _add_cluster_flags(parser: argparse.ArgumentParser) -> None:
    """Fleet-shape flags shared by ``cluster`` and ``trace attribute``."""
    from .cluster import PLACEMENT_STRATEGIES, STEAL_POLICIES

    parser.add_argument(
        "--benchmark", default="GNMT-E32K", help="Table 3 benchmark name"
    )
    parser.add_argument(
        "--nodes", type=int, default=8, help="data (storage) nodes in the fleet"
    )
    parser.add_argument(
        "--service-nodes", type=int, default=4,
        help="stateless service (request-plane) nodes",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="label-space shards"
    )
    parser.add_argument(
        "--replicas", type=int, default=24,
        help="total shard-replica instances placed on data nodes",
    )
    parser.add_argument(
        "--racks", type=int, default=2, help="racks (fault domains)"
    )
    parser.add_argument(
        "--slots", type=int, default=2,
        help="concurrent shard tasks per data node",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="offered load in queries/s (default: the fleet saturating rate)",
    )
    parser.add_argument(
        "--requests", type=int, default=1_000_000,
        help="arrivals to replay through the fleet",
    )
    parser.add_argument(
        "--slo-ms", type=float, default=50.0, help="latency SLO in milliseconds"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--placement", choices=PLACEMENT_STRATEGIES,
        default=PLACEMENT_STRATEGIES[0],
        help="replica placement strategy (default: rack-spread)",
    )
    parser.add_argument(
        "--steal", choices=STEAL_POLICIES, default=STEAL_POLICIES[0],
        help="work-steal victim-queue policy (default: newest)",
    )
    parser.add_argument(
        "--no-autoscale", action="store_true",
        help="pin every service node active (disable the autoscaler)",
    )
    parser.add_argument(
        "--autoscale-min", type=int, default=1,
        help="minimum active service nodes when autoscaling",
    )
    parser.add_argument(
        "--autoscale-interval", type=float, default=0.05,
        help="autoscaler control interval in seconds",
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="cluster fault classes to inject, e.g. "
             "'node-crash=2,partition=1,slow-node=2'",
    )
    parser.add_argument(
        "--tiles", type=int, default=4,
        help="sample tiles for service-model calibration",
    )


def _add_simsan(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--simsan",
        action="store_true",
        help="enable the runtime sim-sanitizer (monotone pops, finite "
             "times, RNG stream discipline); also enabled by REPRO_SIMSAN=1",
    )


def _simsan_context(args: argparse.Namespace):
    """A ``simsan.installed`` context when requested, else a no-op context.

    The sanitizer only observes — it changes no arithmetic and consumes no
    RNG state — so an instrumented run produces byte-identical digests and
    the same run id as a plain run at the same seed.
    """
    from contextlib import nullcontext

    from .lint.simsan import SimSanitizer, env_enabled, installed

    if getattr(args, "simsan", False) or env_enabled():
        return installed(SimSanitizer())
    return nullcontext(None)


def _simsan_finish(sanitizer) -> int:
    """Print the sanitizer report; nonzero when violations were recorded."""
    if sanitizer is None:
        return 0
    print(sanitizer.report())
    return 1 if sanitizer.violations else 0


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace-event JSON file (Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write Prometheus text-exposition metrics",
    )
    parser.add_argument(
        "--jsonl-out",
        default=None,
        help="write spans and metric samples as JSON lines",
    )
    parser.add_argument(
        "--jsonl-stream-out",
        default=None,
        help="stream finished spans incrementally to this JSONL file "
             "(bounded memory: spans bypass the in-memory tracer)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ECSSD (ISCA 2023) reproduction command line",
    )
    # -v works on both sides of the subcommand; the two counts are summed
    # (subparser defaults would clobber a pre-subcommand value otherwise).
    _add_verbose(parser, dest="verbose_global")
    sub = parser.add_subparsers(dest="command", required=True)

    benchmarks = sub.add_parser("benchmarks", help="print the Table 3 registry")
    _add_verbose(benchmarks)

    quickstart = sub.add_parser("quickstart", help="run a small end-to-end inference")
    quickstart.add_argument("--labels", type=int, default=4096)
    quickstart.add_argument("--seed", type=int, default=42)
    _add_observability_flags(quickstart)
    _add_verbose(quickstart)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=_FIGURES)
    _add_verbose(figure)

    report = sub.add_parser("report", help="write a full reproduction report")
    report.add_argument("--output", default="REPORT.md")
    report.add_argument("--queries", type=int, default=16)
    report.add_argument("--tiles", type=int, default=6)
    _add_observability_flags(report)
    _add_verbose(report)

    trace = sub.add_parser(
        "trace", help="run an instrumented inference and export its telemetry"
    )
    trace.add_argument("--labels", type=int, default=4096)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument(
        "--out", default="trace.json", help="Chrome trace-event output path"
    )
    trace.add_argument("--metrics-out", default=None)
    trace.add_argument("--jsonl-out", default=None)
    _add_verbose(trace)
    trace_sub = trace.add_subparsers(dest="trace_command")
    attribute = trace_sub.add_parser(
        "attribute",
        help="run a causally-traced fleet simulation and print where "
             "p50/p95/p99/p99.9 latency lives, per stage and fault class",
    )
    _add_cluster_flags(attribute)
    attribute.set_defaults(
        requests=100_000,
        fault_plan="node-crash=2,partition=1,slow-node=2",
    )
    attribute.add_argument(
        "--slowest", type=int, default=8,
        help="exact K slowest end-to-end requests kept as tail exemplars",
    )
    attribute.add_argument(
        "--sample", type=int, default=16,
        help="size of the seeded Algorithm-R exemplar sample",
    )
    attribute.add_argument(
        "--out", default=None,
        help="write the attribution report (stages, fault classes, "
             "exemplars) as JSON",
    )
    attribute.add_argument(
        "--exemplar-out", default=None,
        help="export one exemplar's causal graph as a Chrome trace",
    )
    attribute.add_argument(
        "--exemplar", type=int, default=None, metavar="REQUEST_ID",
        help="which exemplar to export (default: the slowest request)",
    )
    _add_simsan(attribute)
    _add_verbose(attribute)

    validate = sub.add_parser(
        "validate", help="cross-check analytic vs event backends"
    )
    _add_verbose(validate)

    serve = sub.add_parser(
        "serve", help="simulate the SLO-aware serving layer under load"
    )
    serve.add_argument(
        "--benchmark", default="GNMT-E32K", help="Table 3 benchmark name"
    )
    serve.add_argument(
        "--rate", type=float, default=None,
        help="offered load in queries/s (default: the saturating rate)",
    )
    serve.add_argument(
        "--duration", type=float, default=1.0,
        help="simulated seconds of arrivals to generate",
    )
    serve.add_argument(
        "--slo-ms", type=float, default=20.0, help="latency SLO in milliseconds"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--shards", type=int, default=2, help="label shards per replica group"
    )
    serve.add_argument(
        "--replicas", type=int, default=1, help="replica groups"
    )
    serve.add_argument(
        "--tiles", type=int, default=4,
        help="sample tiles for service-model calibration",
    )
    serve.add_argument(
        "--out", default=None, help="write the run summary as JSON"
    )
    serve.add_argument(
        "--run-dir", default=None,
        help="register a run manifest (with a digest track) in this directory",
    )
    serve.add_argument(
        "--digest-interval", type=int, default=256,
        help="event-loop steps between state digests (with --run-dir)",
    )
    _add_simsan(serve)
    _add_observability_flags(serve)
    _add_verbose(serve)

    cluster = sub.add_parser(
        "cluster",
        help="simulate a fleet of service/data nodes with replica failover",
    )
    _add_cluster_flags(cluster)
    cluster.add_argument(
        "--out", default=None, help="write the run summary as JSON"
    )
    cluster.add_argument(
        "--attribution-out", default=None,
        help="run with causal tracing and write the tail-latency "
             "attribution report as JSON (observe-only: same run id)",
    )
    cluster.add_argument(
        "--run-dir", default=None,
        help="register a run manifest (with a digest track) in this directory",
    )
    cluster.add_argument(
        "--digest-interval", type=int, default=4096,
        help="event-loop steps between state digests (with --run-dir)",
    )
    _add_simsan(cluster)
    _add_observability_flags(cluster)
    _add_verbose(cluster)

    profile = sub.add_parser(
        "profile",
        help="run an instrumented inference and print its critical-path "
             "attribution",
    )
    profile.add_argument("--labels", type=int, default=4096)
    profile.add_argument("--seed", type=int, default=42)
    profile.add_argument(
        "--spans", default=None, metavar="PATH",
        help="profile a recorded span stream (a --jsonl-stream-out file "
             "from serve/cluster) instead of running a fresh inference",
    )
    profile.add_argument(
        "--out", default=None,
        help="write the attribution report as JSON (sim-clock only: "
             "byte-identical for a given seed)",
    )
    profile.add_argument(
        "--run-dir", default=None,
        help="register a run manifest in this directory",
    )
    _add_observability_flags(profile)
    _add_verbose(profile)

    perf_diff = sub.add_parser(
        "perf-diff",
        help="compare two bench/metrics JSON files; exit nonzero on regression",
    )
    perf_diff.add_argument("baseline", help="baseline metrics JSON path")
    perf_diff.add_argument("candidate", help="candidate metrics JSON path")
    perf_diff.add_argument(
        "--tolerance", action="append", default=[], metavar="PATTERN=REL[:DIR]",
        help="extra tolerance band (first match wins; DIR is higher_is_worse, "
             "lower_is_worse, or both)",
    )
    perf_diff.add_argument(
        "--default-rel-tol", type=float, default=0.05,
        help="band for metrics no tolerance pattern matches",
    )
    perf_diff.add_argument(
        "--show-ok", action="store_true",
        help="also print metrics that stayed within their bands",
    )
    perf_diff.add_argument(
        "--out", default=None, help="write the diff report as JSON"
    )
    perf_diff.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline JSON in place from the candidate "
             "(exit 0 regardless of the diff verdict)",
    )
    perf_diff.add_argument(
        "--run-dir", default=None,
        help="with --update-baseline: record the update as a run manifest",
    )
    _add_verbose(perf_diff)

    faults = sub.add_parser(
        "faults", help="sweep the fault-injection matrix (RBER x fault class)"
    )
    faults.add_argument("--labels", type=int, default=2048)
    faults.add_argument("--queries", type=int, default=16)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--scales", default="1,5,10",
        help="comma-separated RBER scale multipliers to sweep",
    )
    faults.add_argument(
        "--classes", default=None,
        help="comma-separated fault classes (default: all)",
    )
    faults.add_argument(
        "--out", default=None, help="write the matrix report as JSON"
    )
    faults.add_argument(
        "--run-dir", default=None,
        help="register a run manifest (with a digest track) in this directory",
    )
    _add_simsan(faults)
    _add_observability_flags(faults)
    _add_verbose(faults)

    ablate = sub.add_parser(
        "ablate",
        help="plan/run/score ablation campaigns over component axes",
    )
    _add_verbose(ablate)
    ablate_sub = ablate.add_subparsers(dest="ablate_command", required=True)

    def _ablate_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--campaign", default="smoke",
            help="built-in campaign name (see `repro ablate plan`)",
        )
        parser.add_argument(
            "--seed", type=int, default=None, help="override the spec seed"
        )
        parser.add_argument(
            "--set", action="append", default=[], metavar="KEY=VALUE",
            help="override a runner param (JSON value or bare string)",
        )

    ablate_plan = ablate_sub.add_parser(
        "plan", help="print the campaign's cell matrix without executing"
    )
    _ablate_common(ablate_plan)
    ablate_run = ablate_sub.add_parser(
        "run", help="execute every cell and print the importance ranking"
    )
    _ablate_common(ablate_run)
    ablate_run.add_argument(
        "--run-dir", default=None,
        help="register per-cell + campaign manifests here (enables resume)",
    )
    ablate_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for cell execution (1 = serial)",
    )
    ablate_run.add_argument(
        "--no-resume", action="store_true",
        help="re-execute cells even when their manifests already exist",
    )
    ablate_run.add_argument(
        "--out", default=None, help="write the ranked report as JSON"
    )
    ablate_run.add_argument(
        "--markdown", default=None, help="write the ranked report as markdown"
    )
    ablate_report = ablate_sub.add_parser(
        "report", help="re-score a campaign from registered cell manifests"
    )
    _ablate_common(ablate_report)
    ablate_report.add_argument(
        "--run-dir", required=True,
        help="registry holding the campaign's cell manifests",
    )
    ablate_report.add_argument(
        "--allow-partial", action="store_true",
        help="score whatever cells exist (champion still required)",
    )
    ablate_report.add_argument(
        "--out", default=None, help="write the ranked report as JSON"
    )
    ablate_report.add_argument(
        "--markdown", default=None, help="write the ranked report as markdown"
    )

    runs = sub.add_parser(
        "runs", help="inspect, compare, and divergence-check registered runs"
    )
    runs.add_argument(
        "--run-dir", default="runs",
        help="directory holding run manifests (default: runs/)",
    )
    _add_verbose(runs)
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list registered runs")
    runs_list.add_argument("--label", default=None, help="exact label filter")
    runs_list.add_argument("--seed", type=int, default=None, help="seed filter")
    runs_show = runs_sub.add_parser("show", help="print one run manifest")
    runs_show.add_argument("run_id", help="run ID (unambiguous prefix ok)")
    runs_compare = runs_sub.add_parser(
        "compare",
        help="perf-diff runs' summary metrics (first run is the baseline)",
    )
    runs_compare.add_argument(
        "run_ids", nargs="+", metavar="RUN_ID",
        help="baseline followed by one or more candidate runs",
    )
    runs_compare.add_argument(
        "--missing-ok", action="store_true",
        help="skip run IDs that don't resolve instead of failing",
    )
    runs_compare.add_argument(
        "--tolerance", action="append", default=[],
        metavar="PATTERN=REL[:DIR]", help="extra tolerance band",
    )
    runs_compare.add_argument("--default-rel-tol", type=float, default=0.05)
    runs_compare.add_argument("--show-ok", action="store_true")
    runs_diverge = runs_sub.add_parser(
        "diverge", help="find the first state divergence between two runs"
    )
    runs_diverge.add_argument("run_a")
    runs_diverge.add_argument("run_b")
    runs_diverge.add_argument(
        "--context", type=int, default=8,
        help="max spans of context to print around the divergence",
    )

    from .lint.cli import configure_parser as configure_lint_parser

    lint = sub.add_parser(
        "lint", help="run the reprolint determinism static-analysis suite"
    )
    configure_lint_parser(lint)
    _add_verbose(lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from .obs import configure_logging

    args = build_parser().parse_args(argv)
    verbosity = getattr(args, "verbose_global", 0) + getattr(args, "verbose", 0)
    configure_logging(verbosity)
    handlers = {
        "benchmarks": _cmd_benchmarks,
        "quickstart": _cmd_quickstart,
        "figure": _cmd_figure,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "validate": _cmd_validate,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "faults": _cmd_faults,
        "ablate": _cmd_ablate,
        "profile": _cmd_profile,
        "perf-diff": _cmd_perf_diff,
        "runs": _cmd_runs,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
