"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a front door that requires no Python:

* ``python -m repro benchmarks`` — print the Table 3 registry;
* ``python -m repro quickstart`` — run a small end-to-end inference;
* ``python -m repro figure <fig8|fig9|fig10|fig11|fig12|fig13>`` — regenerate
  one paper figure and print the ours-vs-paper table;
* ``python -m repro validate`` — cross-check the analytic and event timing
  backends.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    from .analysis.reporting import render_table
    from .units import pretty_bytes
    from .workloads.benchmarks import list_benchmarks

    rows = [
        [s.name, s.model, s.dataset, f"{s.num_labels:,}", s.hidden_dim,
         pretty_bytes(s.int4_matrix_bytes), pretty_bytes(s.fp32_matrix_bytes)]
        for s in list_benchmarks()
    ]
    print(render_table(
        ["benchmark", "model", "dataset", "categories", "D",
         "4-bit matrix", "32-bit matrix"],
        rows, title="Table 3 benchmarks",
    ))
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from .analysis.reporting import format_seconds
    from .core.api import ECSSD
    from .workloads.synthetic import make_workload

    workload = make_workload(
        num_labels=args.labels, hidden_dim=256, num_queries=48, seed=args.seed
    )
    device = ECSSD()
    device.ecssd_enable()
    device.weight_deploy(workload.weights, train_features=workload.features[:32])
    queries = workload.features[32:40]
    device.int4_input_send(queries)
    device.cfp32_input_send(device.pre_align(queries))
    device.int4_screen()
    device.cfp32_classify()
    labels = device.get_results()
    exact = queries @ workload.weights.T
    agreement = float((labels[:, 0] == exact.argmax(axis=1)).mean())
    report = device.last_report
    print(f"labels (8 queries x top-5):\n{labels}")
    print(f"top-1 agreement with exact FP32: {agreement:.0%}")
    print(f"device batch latency: {format_seconds(report.scaled_total_time)}")
    print(f"fp32 channel utilization: {report.fp32_channel_utilization:.1%}")
    return 0


_FIGURES = ("fig8", "fig9", "fig10", "fig11", "fig12", "fig13")


def _cmd_figure(args: argparse.Namespace) -> int:
    from .analysis import experiments as exp
    from .analysis.reporting import render_table

    name = args.name
    if name == "fig8":
        steps = exp.fig8_breakdown(queries=16, sample_tiles=8)
        rows = [
            [s.label, f"{s.speedup_vs_baseline:.2f}x",
             "-" if s.paper_speedup is None else f"{s.paper_speedup:.2f}x",
             f"{s.fp32_utilization:.1%}"]
            for s in steps
        ]
        print(render_table(
            ["technique", "speedup", "paper", "fp32 util"], rows, title="Fig. 8"
        ))
    elif name == "fig9":
        rows = [
            [r.design, f"{r.area_ratio:.2f}x", f"{r.paper_area_ratio:.2f}x",
             f"{r.power_ratio:.2f}x", f"{r.paper_power_ratio:.2f}x"]
            for r in exp.fig9_mac_comparison()
        ]
        print(render_table(
            ["design", "area", "paper", "power", "paper"], rows, title="Fig. 9"
        ))
    elif name == "fig10":
        points = exp.fig10_hetero_layout(queries=16, sample_tiles=8)
        rows = [[f"{p.candidate_ratio:.0%}", f"{p.speedup:.2f}x"] for p in points]
        print(render_table(
            ["candidate ratio", "hetero speedup"], rows, title="Fig. 10"
        ))
    elif name == "fig11":
        uniform, learned = exp.fig11_access_pattern()
        rows = [
            [f"ch{c}", int(uniform.pages_per_channel[c]),
             int(learned.pages_per_channel[c])]
            for c in range(len(uniform.pages_per_channel))
        ]
        print(render_table(
            ["channel", "uniform", "learned"], rows, title="Fig. 11"
        ))
    elif name == "fig12":
        results = exp.fig12_interleaving(queries=16, sample_tiles=8)
        rows = [
            [r.benchmark, f"{r.speedup('uniform', 'learned'):.2f}x",
             f"{r.speedup('sequential', 'learned'):.2f}x"]
            for r in results
        ]
        print(render_table(
            ["benchmark", "learned/uniform", "learned/sequential"],
            rows, title="Fig. 12",
        ))
    elif name == "fig13":
        results = exp.fig13_end_to_end(queries=8, sample_tiles=8)
        rows = [
            [r.architecture, f"{r.mean_slowdown_vs_ecssd:.2f}x",
             "-" if r.paper_slowdown is None else f"{r.paper_slowdown:.2f}x"]
            for r in results
        ]
        print(render_table(
            ["architecture", "slowdown", "paper"], rows, title="Fig. 13"
        ))
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown figure {name}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report_builder import build_report

    text = build_report(queries=args.queries, sample_tiles=args.tiles)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({len(text)} chars)")
    return 0


def _cmd_validate(_args: argparse.Namespace) -> int:
    from .analysis.reporting import format_seconds, render_table
    from .analysis.validation import cross_validate

    report = cross_validate(tiles=2)
    rows = [
        [row.strategy, format_seconds(row.analytic_flash),
         format_seconds(row.event_flash), f"{row.ratio:.2f}x"]
        for row in report.rows
    ]
    print(render_table(
        ["strategy", "analytic flash time", "event flash time", "event/analytic"],
        rows, title="Backend cross-validation",
    ))
    ok = report.ordering_agrees() and report.within_envelope()
    print(f"ordering agrees: {report.ordering_agrees()};"
          f" within envelope {report.envelope}: {report.within_envelope()}")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ECSSD (ISCA 2023) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("benchmarks", help="print the Table 3 registry")

    quickstart = sub.add_parser("quickstart", help="run a small end-to-end inference")
    quickstart.add_argument("--labels", type=int, default=4096)
    quickstart.add_argument("--seed", type=int, default=42)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=_FIGURES)

    report = sub.add_parser("report", help="write a full reproduction report")
    report.add_argument("--output", default="REPORT.md")
    report.add_argument("--queries", type=int, default=16)
    report.add_argument("--tiles", type=int, default=6)

    sub.add_parser("validate", help="cross-check analytic vs event backends")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "benchmarks": _cmd_benchmarks,
        "quickstart": _cmd_quickstart,
        "figure": _cmd_figure,
        "report": _cmd_report,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
