"""Graceful degradation under overload: shrink fidelity before shedding.

The screener's candidate budget (§6.1) and the returned top-k are quality
knobs with direct service-time leverage: fewer candidates means fewer FP32
pages fetched per query (the dominant per-query cost), and a smaller top-k
shrinks the §7.1 merge.  The :class:`DegradationLadder` walks an ordered
sequence of :class:`DegradeStep` fidelity levels as queue pressure rises —
so under overload the layer first answers slightly-approximate queries
*fast*, and only sheds once the deepest step still cannot keep up.

Escalation is hysteretic and deterministic: the level rises one step each
dispatch while pressure (pending / admission depth limit) sits at or above
``high_watermark`` and falls one step when it drops below ``low_watermark``;
between the watermarks the level holds.  The §6.1 sensitivity study bounds
how far the ladder may reach: candidate budgets below ~25% of the calibrated
ratio start costing accuracy, so the default ladder stops there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DegradeStep:
    """One fidelity level: scales for the candidate budget and top-k."""

    name: str
    candidate_scale: float = 1.0
    top_k_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.candidate_scale <= 1.0:
            raise ConfigurationError("candidate_scale must be in (0, 1]")
        if not 0.0 < self.top_k_scale <= 1.0:
            raise ConfigurationError("top_k_scale must be in (0, 1]")


#: The default ladder: full fidelity, then §6.1-bounded candidate shrinks.
DEFAULT_LADDER_STEPS: Sequence[DegradeStep] = (
    DegradeStep("full", candidate_scale=1.0, top_k_scale=1.0),
    DegradeStep("trim-candidates", candidate_scale=0.6, top_k_scale=1.0),
    DegradeStep("half-candidates", candidate_scale=0.4, top_k_scale=0.6),
    DegradeStep("floor", candidate_scale=0.25, top_k_scale=0.4),
)


class DegradationLadder:
    """Hysteretic fidelity controller driven by queue pressure."""

    def __init__(
        self,
        steps: Sequence[DegradeStep] = DEFAULT_LADDER_STEPS,
        high_watermark: float = 0.6,
        low_watermark: float = 0.25,
    ) -> None:
        if not steps:
            raise ConfigurationError("ladder needs at least one step")
        if steps[0].candidate_scale < 1.0 or steps[0].top_k_scale < 1.0:
            raise ConfigurationError("ladder step 0 must be full fidelity")
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ConfigurationError(
                "watermarks must satisfy 0 <= low < high <= 1"
            )
        scales = [s.candidate_scale for s in steps]
        if any(b > a for a, b in zip(scales, scales[1:])):
            raise ConfigurationError(
                "candidate_scale must be non-increasing down the ladder"
            )
        self.steps: List[DegradeStep] = list(steps)
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.level = 0
        self.escalations = 0

    @property
    def step(self) -> DegradeStep:
        return self.steps[self.level]

    @property
    def candidate_scale(self) -> float:
        return self.step.candidate_scale

    @property
    def top_k_scale(self) -> float:
        return self.step.top_k_scale

    @property
    def max_level(self) -> int:
        return len(self.steps) - 1

    def update(self, pressure: float, fault_pressure: float = 0.0) -> int:
        """Advance the ladder one step for the observed pressure.

        ``pressure`` is pending work relative to the admission depth limit
        (0 = idle, 1 = at the shed threshold).  ``fault_pressure`` is the
        device-reliability signal from :mod:`repro.faults` (offline
        channels, uncorrectable-read tail): a degraded device has less
        bandwidth to give, so the ladder reacts to whichever signal is
        worse.  Returns the level to run the *next* batch at.
        """
        if pressure < 0:
            raise ConfigurationError(f"pressure cannot be negative: {pressure}")
        if fault_pressure < 0:
            raise ConfigurationError(
                f"fault_pressure cannot be negative: {fault_pressure}"
            )
        pressure = max(pressure, fault_pressure)
        if pressure >= self.high_watermark and self.level < self.max_level:
            self.level += 1
            self.escalations += 1
        elif pressure < self.low_watermark and self.level > 0:
            self.level -= 1
        return self.level
