"""One service node's request-plane state, extracted for reuse.

:class:`ServiceNodeCore` bundles the per-node request-plane components the
serving loop juggles — the tenant :class:`~repro.serve.queues.RequestQueue`,
the :class:`~repro.serve.admission.AdmissionController`, the
:class:`~repro.serve.scheduler.DeadlineBatcher`, and the
:class:`~repro.serve.degrade.DegradationLadder` — behind one object with the
exact call sequence :class:`~repro.serve.driver.ServingSimulator` performs.

The extraction exists so the same admission/batching/degradation machinery
can be instantiated *per node*: the single-deployment driver owns one core,
and the fleet simulator (:mod:`repro.cluster`) owns one per stateless
service node.  The core holds no event-loop state of its own (no heap, no
clock); every method is a pure state transition driven by the caller's
simulated time, so two identically-seeded runs make identical decisions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError
from .admission import AdmissionController
from .degrade import DegradationLadder
from .queues import RequestQueue
from .request import Request
from .scheduler import DeadlineBatcher


class ServiceNodeCore:
    """Admission + queue + deadline batching + degradation for one node.

    The ``waiting`` map mirrors the queue's membership by request id; the
    driver uses it to ignore stale deadline events for requests that already
    rode a batch out.
    """

    def __init__(
        self,
        admission: AdmissionController,
        batcher: DeadlineBatcher,
        ladder: DegradationLadder,
    ) -> None:
        self.admission = admission
        self.batcher = batcher
        self.ladder = ladder
        self.queue = RequestQueue()
        self.waiting: Dict[int, Request] = {}

    # -- derived state -------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests admitted but not yet dispatched."""
        return self.queue.depth

    def pending(self, inflight: int) -> int:
        """Queued plus in-flight requests this node is responsible for."""
        return self.queue.depth + inflight

    def pressure(self, inflight: int, fallback_limit: int) -> float:
        """Pending work relative to the admission depth limit.

        ``fallback_limit`` is used when the admission config carries no
        ``max_pending`` (the driver derives it from the knee and replica
        count so the ladder still sees a meaningful 0..1 signal).
        """
        limit = self.admission.config.max_pending
        if limit is None:
            limit = fallback_limit
        if limit <= 0:
            raise SimulationError(f"pressure limit must be positive, got {limit}")
        return self.pending(inflight) / limit

    def is_waiting(self, request_id: int) -> bool:
        """Whether ``request_id`` is still queued on this node."""
        return request_id in self.waiting

    # -- admission -----------------------------------------------------------
    def offer(self, request: Request, inflight: int, now: float) -> Optional[str]:
        """Admit ``request`` (enqueue, return ``None``) or return shed reason."""
        reason = self.admission.decide(request, self.pending(inflight), now)
        if reason is None:
            self.queue.push(request)
            self.waiting[request.request_id] = request
        return reason

    # -- batching ------------------------------------------------------------
    def close_time(self, request: Request) -> float:
        """Latest safe dispatch time for ``request`` (deadline batching)."""
        return self.batcher.close_time(request)

    def should_close(self, now: float) -> bool:
        """True when a batch must leave this node's queue at ``now``."""
        return self.batcher.should_close(self.queue, now)

    def dispatch_level(self, pressure: float, fault_pressure: float = 0.0) -> int:
        """Advance the degradation ladder for the next dispatch."""
        return self.ladder.update(pressure, fault_pressure)

    def form_batch(self) -> List[Request]:
        """Pop the next batch (≤ knee) and clear its waiting entries."""
        batch = self.batcher.form_batch(self.queue)
        for request in batch:
            del self.waiting[request.request_id]
        return batch

    # -- end-of-run ----------------------------------------------------------
    def verify_drained(self) -> None:
        """Raise :class:`SimulationError` unless the node finished empty."""
        if self.queue.depth != 0 or self.waiting:
            raise SimulationError(
                f"service node ended with work left behind: "
                f"{self.queue.depth} queued, {len(self.waiting)} waiting"
            )
