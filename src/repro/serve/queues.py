"""Per-tenant FIFO/priority queues with deterministic service order.

Each tenant gets its own FIFO; :meth:`RequestQueue.pop` serves the head
request with the highest priority, breaking ties by arrival time and then by
request id, so the drain order is a pure function of the admitted sequence —
no hashing, no insertion-order accidents.  The scheduler only ever touches
queue *heads*, which keeps per-tenant FIFO ordering intact while still
letting a high-priority tenant overtake between batches.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .request import Request


class RequestQueue:
    """Admitted-but-not-yet-dispatched requests, grouped by tenant."""

    def __init__(self) -> None:
        self._by_tenant: Dict[str, Deque[Request]] = {}
        #: tenants in first-seen order, so head scans are deterministic
        self._tenant_order: List[str] = []
        self._depth = 0

    @property
    def depth(self) -> int:
        return self._depth

    def __len__(self) -> int:
        return self._depth

    def depth_by_tenant(self) -> Dict[str, int]:
        return {t: len(q) for t, q in self._by_tenant.items() if q}

    def push(self, request: Request) -> None:
        queue = self._by_tenant.get(request.tenant)
        if queue is None:
            queue = deque()
            self._by_tenant[request.tenant] = queue
            self._tenant_order.append(request.tenant)
        queue.append(request)
        self._depth += 1

    def _best_head(self) -> Optional[Tuple[int, float, int, str]]:
        """Service key of the next request: (-priority, arrival, id, tenant)."""
        best: Optional[Tuple[int, float, int, str]] = None
        for tenant in self._tenant_order:
            queue = self._by_tenant[tenant]
            if not queue:
                continue
            head = queue[0]
            key = (-head.priority, head.arrival, head.request_id, tenant)
            if best is None or key < best:
                best = key
        return best

    def peek(self) -> Optional[Request]:
        """The request :meth:`pop` would return, without removing it."""
        best = self._best_head()
        if best is None:
            return None
        return self._by_tenant[best[3]][0]

    def oldest_arrival(self) -> Optional[float]:
        """Earliest arrival time over every queued request head."""
        arrivals = [
            q[0].arrival for q in self._by_tenant.values() if q
        ]
        return min(arrivals) if arrivals else None

    def earliest_deadline(self) -> Optional[float]:
        """Tightest absolute deadline over every queued request."""
        deadlines = [
            r.deadline for q in self._by_tenant.values() for r in q
        ]
        return min(deadlines) if deadlines else None

    def pop(self) -> Request:
        best = self._best_head()
        if best is None:
            raise SimulationError("pop from an empty request queue")
        request = self._by_tenant[best[3]].popleft()
        self._depth -= 1
        return request

    def pop_batch(self, limit: int) -> List[Request]:
        """Remove and return up to ``limit`` requests in service order."""
        if limit <= 0:
            raise SimulationError(f"batch limit must be positive, got {limit}")
        batch: List[Request] = []
        while self._depth > 0 and len(batch) < limit:
            batch.append(self.pop())
        return batch
