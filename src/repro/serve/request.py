"""Request lifecycle types for the serving layer.

A query enters the serving layer as a :class:`Request` (arrive), is either
admitted or shed (:class:`ShedRequest` with a machine-readable reason), waits
in a tenant queue, rides a batch to a replica, and leaves as a
:class:`CompletedRequest` carrying its full timeline.  :class:`ServingReport`
aggregates one run: goodput, shed rate, latency percentiles against the SLO,
and the degradation levels the ladder visited — the quantities the
``repro serve`` CLI prints and ``benchmarks/test_serving_slo.py`` tracks.

All timestamps are *simulated* seconds (the same clock the ECSSD timing
models emit); the serving layer never reads wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from ..errors import WorkloadError

#: Shed reasons recorded on :class:`ShedRequest` (machine-readable).
SHED_TOKEN_BUCKET = "token_bucket"
SHED_QUEUE_DEPTH = "queue_depth"


@dataclass(frozen=True)
class Request:
    """One query's identity and timing contract.

    ``deadline`` is absolute (``arrival + slo``); ``priority`` orders queue
    service (higher first) without affecting admission.
    """

    request_id: int
    arrival: float
    deadline: float
    tenant: str = "default"
    priority: int = 0

    def __post_init__(self) -> None:
        if self.deadline < self.arrival:
            raise WorkloadError(
                f"request {self.request_id}: deadline {self.deadline} precedes "
                f"arrival {self.arrival}"
            )

    @property
    def slo(self) -> float:
        """The latency budget this request arrived with."""
        return self.deadline - self.arrival


@dataclass(frozen=True)
class ShedRequest:
    """A request refused at admission, with the controller's reason."""

    request: Request
    reason: str
    shed_time: float


@dataclass(frozen=True)
class CompletedRequest:
    """A served request's full timeline through the layer."""

    request: Request
    dispatch_time: float  # when its batch closed and left the queue
    completion: float
    degrade_level: int  # ladder level its batch executed at
    replica: int

    @property
    def latency(self) -> float:
        return self.completion - self.request.arrival

    @property
    def queue_wait(self) -> float:
        return self.dispatch_time - self.request.arrival

    @property
    def within_deadline(self) -> bool:
        return self.completion <= self.request.deadline


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch: size, window, fidelity level, placement."""

    start: float
    end: float
    size: int
    degrade_level: int
    replica: int


@dataclass
class ServingReport:
    """Aggregate outcome of one serving run.

    The conservation invariant (``admitted + shed == arrived``) is checked by
    the driver before the report is returned; the report re-exposes the
    counts so tests and the bench can assert it independently.
    """

    slo: float
    arrived: int
    completed: List[CompletedRequest] = field(default_factory=list)
    shed: List[ShedRequest] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        return self.arrived - len(self.shed)

    @property
    def shed_count(self) -> int:
        return len(self.shed)

    @property
    def shed_rate(self) -> float:
        return len(self.shed) / self.arrived if self.arrived else 0.0

    def shed_by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.shed:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return counts

    @property
    def max_degrade_level(self) -> int:
        return max((b.degrade_level for b in self.batches), default=0)

    def latencies(self) -> np.ndarray:
        """Per-admitted-request latency samples, in completion order."""
        return np.array([c.latency for c in self.completed], dtype=np.float64)

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` (0-100) over admitted requests."""
        if not self.completed:
            raise WorkloadError(
                "serving report has no completed requests; "
                "percentiles are undefined (everything was shed?)"
            )
        if not 0.0 <= q <= 100.0:
            raise WorkloadError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.latencies(), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    @property
    def makespan(self) -> float:
        """First arrival to last completion, in simulated seconds."""
        if not self.completed:
            return 0.0
        start = min(c.request.arrival for c in self.completed)
        end = max(c.completion for c in self.completed)
        return end - start

    @property
    def goodput(self) -> float:
        """Requests completed *within their deadline* per simulated second."""
        span = self.makespan
        if span <= 0.0:
            return 0.0
        good = sum(1 for c in self.completed if c.within_deadline)
        return good / span

    @property
    def slo_attainment(self) -> float:
        """Fraction of admitted requests that met their deadline."""
        if not self.completed:
            return 0.0
        good = sum(1 for c in self.completed if c.within_deadline)
        return good / len(self.completed)

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return float(np.mean([b.size for b in self.batches]))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (the ``repro serve --out`` payload)."""
        has_completions = bool(self.completed)
        return {
            "slo_s": self.slo,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "shed": self.shed_count,
            "shed_rate": self.shed_rate,
            "shed_by_reason": self.shed_by_reason(),
            "completed": len(self.completed),
            "goodput_qps": self.goodput,
            "slo_attainment": self.slo_attainment,
            "p50_s": self.p50 if has_completions else None,
            "p95_s": self.p95 if has_completions else None,
            "p99_s": self.p99 if has_completions else None,
            "p999_s": self.p999 if has_completions else None,
            "batches": len(self.batches),
            "mean_batch_size": self.mean_batch_size,
            "max_degrade_level": self.max_degrade_level,
        }
