"""SLO/deadline-aware batch formation around the roofline knee.

The batching analyzer (:mod:`repro.core.batching`) locates the roofline
corner B* — the smallest batch within 2% of peak throughput.  Fixed-size
batching at B* maximizes throughput but lets the first request of a sparse
batch wait unboundedly; the :class:`DeadlineBatcher` instead closes a batch
when *either*

* the queue holds B* requests (the knee — never more, so operational
  intensity never overshoots the corner), or
* the oldest queued request's **slack** (time left before its deadline minus
  the service time it still needs) runs out, dispatching a partial batch.

:class:`AffineServiceModel` is the cost model both the batcher and the
driver consult: a least-squares affine fit (``base + per_query * B``) of
:class:`~repro.core.batching.BatchPoint` sweeps, carrying B* from
:func:`~repro.core.batching.optimal_batch` and a ``candidate_fraction``
splitting per-query cost into candidate-dependent work (shrinks under
degradation and sharding) and fixed work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.batching import BatchPoint, optimal_batch
from ..errors import ConfigurationError
from .queues import RequestQueue
from .request import Request


@dataclass(frozen=True)
class AffineServiceModel:
    """Batch service time as ``base + per_query * B``, knee-annotated.

    ``candidate_fraction`` is the share of per-query cost spent fetching and
    classifying FP32 candidates — the part that scales with the screener
    candidate budget (degradation) and with the shard's slice of the label
    space.  The remainder (INT4 screen, buffers, merge) is insensitive to
    both.
    """

    base: float
    per_query: float
    knee: int
    candidate_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.base < 0 or self.per_query <= 0:
            raise ConfigurationError(
                "service model needs base >= 0 and per_query > 0"
            )
        if self.knee <= 0:
            raise ConfigurationError("knee batch size must be positive")
        if not 0.0 <= self.candidate_fraction <= 1.0:
            raise ConfigurationError("candidate_fraction must be in [0, 1]")

    def batch_time(
        self,
        batch: int,
        candidate_scale: float = 1.0,
        work_fraction: float = 1.0,
    ) -> float:
        """Service time of one ``batch``-sized dispatch.

        ``candidate_scale`` multiplies the candidate-dependent share (the
        degradation ladder passes < 1, a hot shard passes > 1);
        ``work_fraction`` scales the whole per-query term (a shard holding
        1/S of the labels passes 1/S).
        """
        if batch <= 0:
            raise ConfigurationError("batch must be positive")
        if candidate_scale < 0 or work_fraction < 0:
            raise ConfigurationError("scales cannot be negative")
        variable = self.per_query * batch * work_fraction
        blended = (
            1.0 - self.candidate_fraction
        ) + self.candidate_fraction * candidate_scale
        return self.base + variable * blended

    @property
    def knee_batch_time(self) -> float:
        """Full-fidelity service time of a knee-sized batch."""
        return self.batch_time(self.knee)

    @property
    def peak_throughput(self) -> float:
        """Sustained queries/s of one replica running knee batches."""
        return self.knee / self.knee_batch_time

    @classmethod
    def from_batch_points(
        cls,
        points: Sequence[BatchPoint],
        candidate_fraction: float = 0.7,
    ) -> "AffineServiceModel":
        """Least-squares affine fit of a batch sweep, knee from the sweep.

        Reuses :func:`~repro.core.batching.optimal_batch` for the knee, so
        the serving layer and the batching ablation agree on where the
        roofline corner sits.
        """
        if not points:
            raise ConfigurationError("need at least one BatchPoint to fit")
        knee = optimal_batch(points).batch
        if len(points) == 1:
            only = points[0]
            return cls(
                base=0.0,
                per_query=only.batch_time / only.batch,
                knee=knee,
                candidate_fraction=candidate_fraction,
            )
        n = float(len(points))
        xs = [float(p.batch) for p in points]
        ys = [p.batch_time for p in points]
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        var_x = sum((x - mean_x) ** 2 for x in xs)
        if var_x <= 0:
            raise ConfigurationError("batch sweep needs distinct batch sizes")
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        per_query = cov / var_x
        base = mean_y - per_query * mean_x
        if per_query <= 0:
            # Degenerate sweep (flat or inverted): fall back to the knee
            # point's mean cost so the model stays usable.
            per_query = max(ys) / max(xs)
            base = 0.0
        return cls(
            base=max(0.0, base),
            per_query=per_query,
            knee=knee,
            candidate_fraction=candidate_fraction,
        )


class DeadlineBatcher:
    """Closes batches at the knee or when the oldest request runs out of slack.

    ``close_margin`` is the service-time estimate subtracted from a request's
    deadline to get its latest safe dispatch time; the driver sets it to the
    *worst-case* (slowest shard, full fidelity) knee batch time so a
    partial-batch dispatch still has a chance to finish inside the SLO.
    """

    def __init__(self, service: AffineServiceModel, close_margin: float) -> None:
        if close_margin < 0:
            raise ConfigurationError("close_margin cannot be negative")
        self.service = service
        self.close_margin = close_margin

    @property
    def knee(self) -> int:
        return self.service.knee

    def close_time(self, request: Request) -> float:
        """Latest dispatch time after which ``request`` would miss its SLO."""
        return request.deadline - self.close_margin

    def should_close(self, queue: RequestQueue, now: float) -> bool:
        """True when a batch must leave the queue at ``now``."""
        if queue.depth >= self.knee:
            return True
        head = queue.peek()
        return head is not None and now >= self.close_time(head)

    def next_close_time(self, queue: RequestQueue) -> Optional[float]:
        """When the current head's slack expires (None on an empty queue)."""
        head = queue.peek()
        if head is None:
            return None
        return self.close_time(head)

    def form_batch(self, queue: RequestQueue) -> List[Request]:
        """Pop the next batch — never more than the knee B*."""
        return queue.pop_batch(self.knee)
