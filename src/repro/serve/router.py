"""Replica routing for label-sharded, replicated ECSSD clusters.

The scale-out model (§7.1, :mod:`repro.core.scaleout`) partitions the label
space across S devices; every query must visit *all* shards of one replica
group and completes at the slowest shard plus the host-side top-k merge.  A
production deployment replicates that group R times for throughput.  The
router therefore places whole batches onto replica *groups*:

* **least-outstanding, hotness-weighted** — among groups with a free
  pipeline slot, pick the one minimizing ``(outstanding + 1) * speed``,
  where ``speed`` is the group's worst-shard service-time multiplier derived
  from per-shard hot degree (ties break to the lowest index, so placement is
  deterministic);
* **per-shard hot degree** comes from the layout package's
  :class:`~repro.layout.learned.HotnessPredictor` (§5.3): the same
  sum-of-|INT4-code| signal that drives adaptive interleaving, aggregated
  over each shard's slice of the label space and normalized to mean 1.

The router also owns the fan-out cost model: a batch's service time on a
group is the max over shards of the service model evaluated at that shard's
label fraction and hot degree, plus the §7.1 merge transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..layout.learned import HotnessPredictor
from ..units import gbps
from ..workloads.traces import CandidateTraceGenerator
from .scheduler import AffineServiceModel

#: Bytes per (label, score) result entry in the host merge (§7.1).
MERGE_ENTRY_BYTES = 12

#: Default host merge link, matching ScaleOutCluster's default.
DEFAULT_MERGE_BANDWIDTH = gbps(10.0)


@dataclass(frozen=True)
class ShardModel:
    """One device's slice of the label space, with its predicted heat."""

    index: int
    label_fraction: float
    hot_degree: float

    def __post_init__(self) -> None:
        if not 0.0 < self.label_fraction <= 1.0:
            raise ConfigurationError("label_fraction must be in (0, 1]")
        if self.hot_degree <= 0:
            raise ConfigurationError("hot_degree must be positive")


class ReplicaState:
    """One replica group: S shards that execute every batch in parallel."""

    def __init__(self, index: int, shards: List[ShardModel]) -> None:
        if not shards:
            raise ConfigurationError("a replica needs at least one shard")
        self.index = index
        self.shards = shards
        self.outstanding_batches = 0
        self.outstanding_requests = 0

    @property
    def speed_factor(self) -> float:
        """Relative service-time multiplier of the group's slowest shard."""
        return max(s.label_fraction * s.hot_degree for s in self.shards)


def shard_hot_degrees(
    generator: CandidateTraceGenerator,
    num_shards: int,
    tile_size: int,
    tiles_per_shard: int = 2,
) -> List[float]:
    """Per-shard hot degree from the §5.3 predictor signal.

    Samples ``tiles_per_shard`` tiles from each shard's contiguous slice of
    the label space, feeds their |INT4-code| sums through one
    :class:`~repro.layout.learned.HotnessPredictor` (so scores are
    comparable across shards), and returns each shard's share of the total
    predicted candidate load, normalized to mean 1.0.
    """
    if num_shards <= 0:
        raise ConfigurationError("num_shards must be positive")
    if tile_size <= 0 or tiles_per_shard <= 0:
        raise ConfigurationError("tile_size and tiles_per_shard must be positive")
    per_tile = [
        generator.predictor_abs_sums(
            shard * tiles_per_shard + sample, tile_size
        )
        for shard in range(num_shards)
        for sample in range(tiles_per_shard)
    ]
    predictor = HotnessPredictor(np.concatenate(per_tile))
    scores = predictor.scores
    span = tiles_per_shard * tile_size
    masses = np.array(
        [scores[s * span : (s + 1) * span].sum() for s in range(num_shards)]
    )
    mean_mass = masses.mean()
    if mean_mass <= 0:
        return [1.0] * num_shards
    return [float(m / mean_mass) for m in masses]


def build_replicas(
    num_replicas: int,
    hot_degrees: List[float],
) -> List[ReplicaState]:
    """R identical replica groups over the same label sharding."""
    if num_replicas <= 0:
        raise ConfigurationError("num_replicas must be positive")
    if not hot_degrees:
        raise ConfigurationError("need at least one shard hot degree")
    fraction = 1.0 / len(hot_degrees)
    shards = [
        ShardModel(index=i, label_fraction=fraction, hot_degree=degree)
        for i, degree in enumerate(hot_degrees)
    ]
    return [ReplicaState(index=r, shards=shards) for r in range(num_replicas)]


class Router:
    """Places batches on replica groups and prices their execution."""

    def __init__(
        self,
        replicas: List[ReplicaState],
        service: AffineServiceModel,
        pipeline_depth: int = 1,
        top_k: int = 5,
        merge_bandwidth: float = DEFAULT_MERGE_BANDWIDTH,
    ) -> None:
        if not replicas:
            raise ConfigurationError("router needs at least one replica")
        if pipeline_depth <= 0:
            raise ConfigurationError("pipeline_depth must be positive")
        if top_k <= 0:
            raise ConfigurationError("top_k must be positive")
        if merge_bandwidth <= 0:
            raise ConfigurationError("merge_bandwidth must be positive")
        self.replicas = replicas
        self.service = service
        self.pipeline_depth = pipeline_depth
        self.top_k = top_k
        self.merge_bandwidth = merge_bandwidth

    @property
    def inflight_requests(self) -> int:
        return sum(r.outstanding_requests for r in self.replicas)

    def has_capacity(self) -> bool:
        return any(
            r.outstanding_batches < self.pipeline_depth for r in self.replicas
        )

    def route(self) -> Optional[ReplicaState]:
        """Least-outstanding replica group, weighted by shard heat.

        Returns ``None`` when every group's pipeline is full.  The key
        ``((outstanding + 1) * speed_factor, index)`` sends work to the
        group that would finish it soonest; the index tie-break keeps the
        choice deterministic.
        """
        best: Optional[Tuple[float, int]] = None
        chosen: Optional[ReplicaState] = None
        for replica in self.replicas:
            if replica.outstanding_batches >= self.pipeline_depth:
                continue
            key = (
                (replica.outstanding_batches + 1) * replica.speed_factor,
                replica.index,
            )
            if best is None or key < best:
                best = key
                chosen = replica
        return chosen

    def merge_time(self, batch: int, top_k_scale: float = 1.0) -> float:
        """§7.1 host merge: per-device top-k lists over the host link."""
        shards = len(self.replicas[0].shards)
        effective_k = max(1, int(round(self.top_k * top_k_scale)))
        merge_bytes = batch * effective_k * MERGE_ENTRY_BYTES * shards
        return merge_bytes / self.merge_bandwidth

    def batch_time_on(
        self,
        replica: ReplicaState,
        batch: int,
        candidate_scale: float = 1.0,
        top_k_scale: float = 1.0,
    ) -> float:
        """Fan-out execution time: slowest shard + merge."""
        slowest = max(
            self.service.batch_time(
                batch,
                candidate_scale=candidate_scale * shard.hot_degree,
                work_fraction=shard.label_fraction,
            )
            for shard in replica.shards
        )
        return slowest + self.merge_time(batch, top_k_scale)

    def worst_batch_time(self, batch: int) -> float:
        """Full-fidelity upper bound over all replica groups."""
        return max(
            self.batch_time_on(replica, batch) for replica in self.replicas
        )

    def acquire(self, replica: ReplicaState, batch: int) -> None:
        if replica.outstanding_batches >= self.pipeline_depth:
            raise SimulationError(
                f"replica {replica.index} pipeline is full "
                f"({replica.outstanding_batches}/{self.pipeline_depth})"
            )
        replica.outstanding_batches += 1
        replica.outstanding_requests += batch

    def release(self, replica: ReplicaState, batch: int) -> None:
        if replica.outstanding_batches <= 0 or replica.outstanding_requests < batch:
            raise SimulationError(
                f"replica {replica.index} released more work than it holds"
            )
        replica.outstanding_batches -= 1
        replica.outstanding_requests -= batch
