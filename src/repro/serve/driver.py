"""The deterministic discrete-event serving loop.

:class:`ServingSimulator` replays an arrival-time sequence (from
:mod:`repro.workloads.streams`) through the full request lifecycle::

    arrive -> admit / shed -> queue -> deadline batch -> route -> complete

on a single event heap with three event kinds — completions, batch-close
deadlines, and arrivals — ordered by ``(time, kind, sequence)`` so ties
resolve identically on every run.  Completions sort first (a freed replica
can take work arriving at the same instant), then deadlines, then arrivals.

Dispatch policy: a batch leaves the queue when the :class:`DeadlineBatcher`
says it must (knee reached, or the head request's slack is gone) *or*, when
``eager_when_idle`` is set, as soon as any replica group sits completely
idle — the layer batches up to the roofline knee only under load, and stays
work-conserving otherwise.  Before each dispatch the
:class:`~repro.serve.degrade.DegradationLadder` observes queue pressure and
sets the fidelity level for that batch.

:func:`build_serving_stack` assembles the whole layer from a service model
and a :class:`ServingConfig`; :func:`saturating_rate` computes the offered
load at which the configured cluster saturates (the bench's 1x point).
"""

from __future__ import annotations

import heapq
import logging
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, SimulationError, WorkloadError
from ..lint.simsan import get_sanitizer
from ..obs import SERVE_TRACK, get_registry, get_tracer
from ..obs.causal import get_collector
from ..obs.digest import DigestRecorder
from .admission import AdmissionConfig, AdmissionController
from .degrade import DegradationLadder
from .node import ServiceNodeCore
from .request import (
    BatchRecord,
    CompletedRequest,
    Request,
    ServingReport,
    ShedRequest,
)
from .router import ReplicaState, Router, build_replicas
from .scheduler import AffineServiceModel, DeadlineBatcher

logger = logging.getLogger(__name__)

# Event kinds, in tie-break order at equal timestamps.
_KIND_COMPLETION = 0
_KIND_DEADLINE = 1
_KIND_ARRIVAL = 2


@dataclass(frozen=True)
class _InflightBatch:
    """A dispatched batch waiting for its completion event."""

    replica: ReplicaState
    requests: Tuple[Request, ...]
    dispatch_time: float
    completion: float
    degrade_level: int


class ServingSimulator:
    """Drives admission, batching, routing, and degradation over arrivals."""

    def __init__(
        self,
        service: AffineServiceModel,
        router: Router,
        admission: AdmissionController,
        batcher: DeadlineBatcher,
        ladder: DegradationLadder,
        slo: float,
        eager_when_idle: bool = True,
        fault_signal: Optional[Callable[[float], float]] = None,
        digest_recorder: Optional[DigestRecorder] = None,
    ) -> None:
        if slo <= 0:
            raise ConfigurationError("slo must be positive")
        self.service = service
        self.router = router
        self.admission = admission
        self.batcher = batcher
        self.ladder = ladder
        self.slo = slo
        self.eager_when_idle = eager_when_idle
        # Device-reliability pressure source (sim time -> [0, 1]); usually
        # FaultInjector.fault_pressure.  None means a healthy device.
        self.fault_signal = fault_signal
        # Optional provenance hook: ticked once per event-heap pop with the
        # loop's counter snapshot, so two same-seed runs can be checked for
        # state divergence after the fact (repro.obs.digest).
        self.digest_recorder = digest_recorder

    # -- helpers -------------------------------------------------------------
    def _pending(self, core: ServiceNodeCore) -> int:
        return core.pending(self.router.inflight_requests)

    def _pressure(self, core: ServiceNodeCore) -> float:
        fallback = self.batcher.knee * len(self.router.replicas) * 4
        return core.pressure(self.router.inflight_requests, fallback)

    def _has_idle_replica(self) -> bool:
        return any(r.outstanding_batches == 0 for r in self.router.replicas)

    def run(
        self,
        arrivals: Sequence[float],
        tenants: Optional[Sequence[str]] = None,
        priorities: Optional[Sequence[int]] = None,
    ) -> ServingReport:
        """Replay ``arrivals`` (sorted timestamps, seconds) to completion.

        ``tenants``/``priorities`` optionally label each arrival; defaults
        are a single tenant at priority 0.  Returns the
        :class:`~repro.serve.request.ServingReport`; raises
        :class:`~repro.errors.SimulationError` if the conservation invariant
        (admitted + shed == arrived) breaks or work is left behind.
        """
        times = np.asarray(arrivals, dtype=np.float64)
        if times.size == 0:
            raise WorkloadError("no arrivals to serve")
        if np.any(np.diff(times) < 0):
            raise WorkloadError("arrival times must be non-decreasing")
        if tenants is not None and len(tenants) != times.size:
            raise WorkloadError("tenants must align with arrivals")
        if priorities is not None and len(priorities) != times.size:
            raise WorkloadError("priorities must align with arrivals")

        core = ServiceNodeCore(self.admission, self.batcher, self.ladder)
        inflight: Dict[int, _InflightBatch] = {}
        completed: List[CompletedRequest] = []
        shed: List[ShedRequest] = []
        batches: List[BatchRecord] = []
        heap: List[Tuple[float, int, int, int]] = []
        seq = 0
        for index in range(int(times.size)):
            heapq.heappush(heap, (float(times[index]), _KIND_ARRIVAL, seq, index))
            seq += 1

        registry = get_registry()
        tracer = get_tracer()
        collector = get_collector()

        def dispatch(now: float) -> None:
            nonlocal seq
            replica = self.router.route()
            if replica is None:
                raise SimulationError("dispatch with no replica capacity")
            fault_pressure = (
                self.fault_signal(now) if self.fault_signal is not None else 0.0
            )
            level = core.dispatch_level(self._pressure(core), fault_pressure)
            batch = core.form_batch()
            if not batch:
                raise SimulationError("dispatch from an empty queue")
            duration = self.router.batch_time_on(
                replica,
                len(batch),
                candidate_scale=self.ladder.candidate_scale,
                top_k_scale=self.ladder.top_k_scale,
            )
            completion = now + duration
            self.router.acquire(replica, len(batch))
            inflight[seq] = _InflightBatch(
                replica=replica,
                requests=tuple(batch),
                dispatch_time=now,
                completion=completion,
                degrade_level=level,
            )
            heapq.heappush(heap, (completion, _KIND_COMPLETION, seq, seq))
            seq += 1
            if registry.enabled:
                registry.counter(
                    "serve_batches_total", "batches dispatched by the serving layer"
                ).inc(level=level, replica=replica.index)
                wait_histogram = registry.histogram(
                    "serve_queue_wait_seconds",
                    "time each request waited in queue before dispatch",
                )
                for request in batch:
                    wait_histogram.observe(now - request.arrival)
            if tracer.enabled:
                waits = [now - request.arrival for request in batch]
                tracer.add_span(
                    f"batch{len(batches)}",
                    now,
                    completion,
                    track=SERVE_TRACK,
                    attrs={
                        "size": len(batch),
                        "level": level,
                        "replica": replica.index,
                        "queue_wait_max": max(waits),
                        "queue_wait_mean": sum(waits) / len(waits),
                    },
                )
            batches.append(
                BatchRecord(
                    start=now,
                    end=completion,
                    size=len(batch),
                    degrade_level=level,
                    replica=replica.index,
                )
            )

        def drain(now: float) -> None:
            while core.depth > 0 and self.router.has_capacity():
                must = core.should_close(now)
                eager = self.eager_when_idle and self._has_idle_replica()
                if not (must or eager):
                    break
                dispatch(now)

        recorder = self.digest_recorder
        sanitizer = get_sanitizer()

        while heap:
            now, kind, order, payload = heapq.heappop(heap)
            if sanitizer.enabled:
                # The heap tuple IS the tie-breaking contract: (time, kind,
                # seq) must strictly increase across pops.
                sanitizer.observe_pop("serve", now, key=(now, kind, order))
            if recorder is not None:
                recorder.tick(
                    now,
                    kind=kind,
                    queue_depth=core.depth,
                    waiting=len(core.waiting),
                    inflight=len(inflight),
                    completed=len(completed),
                    shed=len(shed),
                    batches=len(batches),
                    degrade_level=self.ladder.level,
                    seq=seq,
                )
            if kind == _KIND_COMPLETION:
                batch_state = inflight.pop(payload)
                self.router.release(
                    batch_state.replica, len(batch_state.requests)
                )
                for request in batch_state.requests:
                    record = CompletedRequest(
                        request=request,
                        dispatch_time=batch_state.dispatch_time,
                        completion=batch_state.completion,
                        degrade_level=batch_state.degrade_level,
                        replica=batch_state.replica.index,
                    )
                    completed.append(record)
                    if collector.enabled:
                        collector.on_serve_complete(
                            request.request_id,
                            request.arrival,
                            batch_state.dispatch_time,
                            batch_state.completion,
                            batch_state.degrade_level,
                        )
                    if registry.enabled:
                        registry.histogram(
                            "serve_request_latency_seconds",
                            "admitted-request latency through the serving layer",
                        ).observe(record.latency, level=record.degrade_level)
                drain(now)
            elif kind == _KIND_DEADLINE:
                if core.is_waiting(payload):
                    drain(now)
            else:  # arrival
                arrival_time = float(times[payload])
                tenant = tenants[payload] if tenants is not None else "default"
                priority = priorities[payload] if priorities is not None else 0
                request = Request(
                    request_id=payload,
                    arrival=arrival_time,
                    deadline=arrival_time + self.slo,
                    tenant=tenant,
                    priority=priority,
                )
                reason = core.offer(
                    request, self.router.inflight_requests, now
                )
                if registry.enabled:
                    registry.counter(
                        "serve_requests_total", "requests offered to the serving layer"
                    ).inc(outcome="shed" if reason else "admitted")
                if reason is not None:
                    if collector.enabled:
                        collector.on_shed(reason)
                    shed.append(
                        ShedRequest(request=request, reason=reason, shed_time=now)
                    )
                    if tracer.enabled:
                        tracer.instant(
                            f"shed/{reason}", sim_time=now, track=SERVE_TRACK
                        )
                    continue
                heapq.heappush(
                    heap,
                    (
                        core.close_time(request),
                        _KIND_DEADLINE,
                        seq,
                        request.request_id,
                    ),
                )
                seq += 1
                drain(now)

        if core.depth != 0 or core.waiting or inflight:
            raise SimulationError(
                f"serving run ended with work left behind: "
                f"{core.depth} queued, {len(inflight)} batches in flight"
            )
        self.admission.verify_conservation()
        if len(completed) + len(shed) != int(times.size):
            raise SimulationError(
                f"request conservation violated at completion: "
                f"{len(completed)} completed + {len(shed)} shed "
                f"!= {times.size} arrived"
            )
        completed.sort(key=lambda c: (c.completion, c.request.request_id))
        if recorder is not None:
            # End-of-run checkpoint: catches tail perturbations shorter than
            # one digest interval.
            final_time = max(
                (c.completion for c in completed), default=float(times[-1])
            )
            recorder.capture(
                final_time,
                kind=-1,
                queue_depth=0,
                waiting=0,
                inflight=0,
                completed=len(completed),
                shed=len(shed),
                batches=len(batches),
                degrade_level=self.ladder.level,
                seq=seq,
            )
        report = ServingReport(
            slo=self.slo,
            arrived=int(times.size),
            completed=completed,
            shed=shed,
            batches=batches,
        )
        logger.info(
            "served %d/%d requests (%.1f%% shed) across %d batches, "
            "max degrade level %d",
            report.admitted,
            report.arrived,
            100.0 * report.shed_rate,
            len(batches),
            report.max_degrade_level,
        )
        return report


@dataclass(frozen=True)
class ServingConfig:
    """Shape of one serving stack, independent of the service model.

    ``safety`` feeds :meth:`AdmissionConfig.for_slo`; ``close_margin_factor``
    pads the worst-case knee batch time when computing each request's latest
    safe dispatch; ``token_rate`` (requests/s) optionally enables the bucket.
    """

    slo: float
    shards: int = 1
    replicas: int = 1
    safety: float = 0.75
    token_rate: Optional[float] = None
    pipeline_depth: int = 1
    top_k: int = 5
    eager_when_idle: bool = True
    close_margin_factor: float = 1.05

    def __post_init__(self) -> None:
        if self.slo <= 0:
            raise ConfigurationError("slo must be positive")
        if self.shards <= 0 or self.replicas <= 0:
            raise ConfigurationError("shards and replicas must be positive")
        if self.close_margin_factor < 1.0:
            raise ConfigurationError("close_margin_factor must be >= 1")


def build_serving_stack(
    service: AffineServiceModel,
    config: ServingConfig,
    hot_degrees: Optional[List[float]] = None,
    ladder: Optional[DegradationLadder] = None,
    fault_signal: Optional[Callable[[float], float]] = None,
    digest_recorder: Optional[DigestRecorder] = None,
) -> ServingSimulator:
    """Assemble admission, batching, routing, and degradation into one stack.

    ``hot_degrees`` (one per shard, mean ~1) comes from
    :func:`~repro.serve.router.shard_hot_degrees`; omitted means uniform
    shards.  Raises :class:`~repro.errors.ConfigurationError` when the SLO
    cannot fit even one knee-sized batch on the slowest shard.
    """
    degrees = hot_degrees if hot_degrees is not None else [1.0] * config.shards
    if len(degrees) != config.shards:
        raise ConfigurationError(
            f"{len(degrees)} hot degrees for {config.shards} shards"
        )
    replicas = build_replicas(config.replicas, degrees)
    router = Router(
        replicas,
        service,
        pipeline_depth=config.pipeline_depth,
        top_k=config.top_k,
    )
    worst = router.worst_batch_time(service.knee)
    close_margin = worst * config.close_margin_factor
    if close_margin >= config.slo:
        raise ConfigurationError(
            f"SLO {config.slo:.6f}s cannot fit one knee batch "
            f"({worst:.6f}s on the slowest shard); add shards, shrink the "
            f"knee, or relax the SLO"
        )
    admission = AdmissionController(
        AdmissionConfig.for_slo(
            slo=config.slo,
            worst_batch_time=worst,
            knee=service.knee,
            replicas=config.replicas * config.pipeline_depth,
            safety=config.safety,
            token_rate=config.token_rate,
        )
    )
    batcher = DeadlineBatcher(service, close_margin=close_margin)
    return ServingSimulator(
        service=service,
        router=router,
        admission=admission,
        batcher=batcher,
        ladder=ladder if ladder is not None else DegradationLadder(),
        slo=config.slo,
        eager_when_idle=config.eager_when_idle,
        fault_signal=fault_signal,
        digest_recorder=digest_recorder,
    )


def saturating_rate(service: AffineServiceModel, config: ServingConfig) -> float:
    """Offered load (queries/s) at which the configured cluster saturates.

    One replica group drains knee-sized batches every worst-shard knee batch
    time; R groups (x pipeline depth) drain in parallel.  The bench's "1x"
    operating point.
    """
    degrees = [1.0] * config.shards
    router = Router(
        build_replicas(config.replicas, degrees),
        service,
        pipeline_depth=config.pipeline_depth,
        top_k=config.top_k,
    )
    worst = router.worst_batch_time(service.knee)
    return config.replicas * config.pipeline_depth * service.knee / worst
