"""repro.serve: a deterministic SLO-aware serving layer over the ECSSD models.

The reproduction's timing models answer "how fast is one batch"; this
package answers the production question on top of them — "what latency do
*users* see at a given offered load, and what does the layer do when load
exceeds capacity?".  It is a discrete-event simulation of the full request
lifecycle:

* :mod:`repro.serve.request` — request/shed/completion records and the
  :class:`ServingReport` (goodput, shed rate, p50/p95/p99 vs SLO);
* :mod:`repro.serve.queues` — per-tenant FIFO/priority queues with a
  deterministic service order;
* :mod:`repro.serve.admission` — token-bucket + queue-depth admission with
  explicit shedding and the ``admitted + shed == arrived`` conservation
  invariant;
* :mod:`repro.serve.scheduler` — SLO/deadline-aware batch formation that
  never exceeds the roofline knee located by
  :func:`repro.core.batching.optimal_batch`;
* :mod:`repro.serve.router` — least-outstanding routing over replicated,
  label-sharded device groups, weighted by the §5.3 hot-degree predictor;
* :mod:`repro.serve.degrade` — the graceful-degradation ladder (shrink
  candidate budget and top-k before shedding);
* :mod:`repro.serve.driver` — the event loop, stack builder, and the
  ``repro serve`` CLI's engine.

Everything runs on simulated time with no randomness of its own: the same
seeded arrival stream produces bit-identical shed decisions, batch
boundaries, and latency percentiles on every run.
"""

from __future__ import annotations

from .admission import AdmissionConfig, AdmissionController, TokenBucket
from .degrade import DEFAULT_LADDER_STEPS, DegradationLadder, DegradeStep
from .driver import (
    SERVE_TRACK,
    ServingConfig,
    ServingSimulator,
    build_serving_stack,
    saturating_rate,
)
from .node import ServiceNodeCore
from .queues import RequestQueue
from .request import (
    SHED_QUEUE_DEPTH,
    SHED_TOKEN_BUCKET,
    BatchRecord,
    CompletedRequest,
    Request,
    ServingReport,
    ShedRequest,
)
from .router import (
    ReplicaState,
    Router,
    ShardModel,
    build_replicas,
    shard_hot_degrees,
)
from .scheduler import AffineServiceModel, DeadlineBatcher

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "TokenBucket",
    "DegradationLadder",
    "DegradeStep",
    "DEFAULT_LADDER_STEPS",
    "ServingConfig",
    "ServingSimulator",
    "build_serving_stack",
    "saturating_rate",
    "SERVE_TRACK",
    "ServiceNodeCore",
    "RequestQueue",
    "Request",
    "ShedRequest",
    "CompletedRequest",
    "BatchRecord",
    "ServingReport",
    "SHED_TOKEN_BUCKET",
    "SHED_QUEUE_DEPTH",
    "ReplicaState",
    "Router",
    "ShardModel",
    "build_replicas",
    "shard_hot_degrees",
    "AffineServiceModel",
    "DeadlineBatcher",
]
