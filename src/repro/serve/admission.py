"""Admission control: token bucket + queue-depth limit with explicit shedding.

Two independent gates, checked in order at every arrival:

1. **Token bucket** — caps the *sustained* admitted rate while allowing
   bursts up to the bucket capacity.  Refill is computed from elapsed
   simulated time, so admission decisions are a pure function of the arrival
   sequence (bit-identical run to run).
2. **Queue depth** — bounds the pending backlog (queued + in flight) so that
   an admitted request's *predicted* completion stays inside its SLO.
   :meth:`AdmissionConfig.for_slo` derives the depth limit from the knee
   batch time: with ``replicas`` groups draining ``knee``-sized batches every
   ``worst_batch_time`` seconds, ``depth`` pending requests wait about
   ``depth / (knee * replicas)`` batch times.

Every refusal is an explicit :data:`~repro.serve.request.SHED_TOKEN_BUCKET` /
:data:`~repro.serve.request.SHED_QUEUE_DEPTH` shed, and the controller keeps
the conservation invariant ``admitted + shed == arrived`` — violating it is a
:class:`~repro.errors.SimulationError`, not a statistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError, SimulationError
from .request import SHED_QUEUE_DEPTH, SHED_TOKEN_BUCKET, Request


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission gates for one serving stack.

    ``token_rate`` (requests/s) and ``token_burst`` size the bucket; a
    ``token_rate`` of ``None`` disables the bucket entirely.
    ``max_pending`` bounds queued + in-flight requests; ``None`` disables the
    depth gate.
    """

    token_rate: Optional[float] = None
    token_burst: float = 1.0
    max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.token_rate is not None and self.token_rate <= 0:
            raise ConfigurationError("token_rate must be positive (or None)")
        if self.token_burst <= 0:
            raise ConfigurationError("token_burst must be positive")
        if self.max_pending is not None and self.max_pending <= 0:
            raise ConfigurationError("max_pending must be positive (or None)")

    @classmethod
    def for_slo(
        cls,
        slo: float,
        worst_batch_time: float,
        knee: int,
        replicas: int = 1,
        safety: float = 0.75,
        token_rate: Optional[float] = None,
        token_burst: Optional[float] = None,
    ) -> "AdmissionConfig":
        """Depth limit such that predicted latency stays within ``slo``.

        A request admitted behind ``depth`` others waits roughly
        ``depth / (knee * replicas)`` knee-batch service times before its own
        batch runs, so the largest safe backlog satisfies
        ``(depth / (knee * replicas) + 1) * worst_batch_time <= slo * safety``.
        The limit never drops below one full batch per replica (the layer
        must be able to run at all).
        """
        if slo <= 0:
            raise ConfigurationError("slo must be positive")
        if worst_batch_time <= 0:
            raise ConfigurationError("worst_batch_time must be positive")
        if knee <= 0 or replicas <= 0:
            raise ConfigurationError("knee and replicas must be positive")
        if not 0.0 < safety <= 1.0:
            raise ConfigurationError("safety must be in (0, 1]")
        budget_batches = slo * safety / worst_batch_time - 1.0
        depth = int(math.floor(budget_batches * knee * replicas))
        depth = max(depth, knee * replicas)
        burst = token_burst if token_burst is not None else float(depth)
        return cls(
            token_rate=token_rate, token_burst=burst, max_pending=depth
        )


class TokenBucket:
    """Deterministic token bucket on the simulated clock."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError("token bucket rate must be positive")
        if burst <= 0:
            raise ConfigurationError("token bucket burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise SimulationError(
                f"token bucket time went backwards: {now} < {self._last_refill}"
            )
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    def try_take(self, now: float) -> bool:
        """Consume one token if available; refills up to ``now`` first."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class AdmissionController:
    """Applies the configured gates and keeps the conservation ledger."""

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self._bucket: Optional[TokenBucket] = None
        if config.token_rate is not None:
            self._bucket = TokenBucket(config.token_rate, config.token_burst)
        self.arrived = 0
        self.admitted = 0
        self.shed_by_reason: Dict[str, int] = {}

    @property
    def shed_total(self) -> int:
        return sum(self.shed_by_reason.values())

    def decide(self, request: Request, pending: int, now: float) -> Optional[str]:
        """Admit (``None``) or return the shed reason for ``request``.

        ``pending`` counts queued plus in-flight requests at arrival time.
        """
        if pending < 0:
            raise SimulationError(f"negative pending count {pending}")
        self.arrived += 1
        reason: Optional[str] = None
        if (
            self.config.max_pending is not None
            and pending >= self.config.max_pending
        ):
            reason = SHED_QUEUE_DEPTH
        elif self._bucket is not None and not self._bucket.try_take(now):
            reason = SHED_TOKEN_BUCKET
        if reason is None:
            self.admitted += 1
        else:
            self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        return reason

    def verify_conservation(self) -> None:
        """Raise :class:`SimulationError` unless admitted + shed == arrived."""
        if self.admitted + self.shed_total != self.arrived:
            raise SimulationError(
                f"request conservation violated: admitted={self.admitted} "
                f"+ shed={self.shed_total} != arrived={self.arrived}"
            )
