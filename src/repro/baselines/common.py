"""Shared scaffolding for the comparison-architecture models.

Every baseline reduces to a sequence (or overlap) of *stages* — bulk weight
streaming, screening, candidate fetching, compute — each with a bandwidth or
throughput bottleneck.  :class:`BaselineResult` keeps the per-stage times so
experiments can attribute wins/losses the way §6.7's analysis paragraphs do.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigurationError
from ..workloads.benchmarks import BenchmarkSpec


@dataclass
class BaselineResult:
    """Per-batch timing of one architecture on one benchmark."""

    architecture: str
    benchmark: str
    batch: int
    stages: Dict[str, float] = field(default_factory=dict)
    overlapped: bool = False

    @property
    def batch_time(self) -> float:
        """Time for one batch: stage sum, or the max when stages overlap."""
        if not self.stages:
            return 0.0
        if self.overlapped:
            return max(self.stages.values())
        return sum(self.stages.values())

    def time_for_queries(self, queries: int) -> float:
        """Total time to process ``queries`` inputs batch-by-batch."""
        if queries <= 0:
            raise ConfigurationError("queries must be positive")
        batches = -(-queries // self.batch)
        return batches * self.batch_time

    @property
    def bottleneck(self) -> str:
        """The stage that dominates this result."""
        if not self.stages:
            return "none"
        return max(self.stages, key=self.stages.get)


class ArchitectureModel(abc.ABC):
    """A named architecture that can time a benchmark batch."""

    name: str = "abstract"
    uses_screening: bool = False

    @abc.abstractmethod
    def estimate(self, spec: BenchmarkSpec, batch: int) -> BaselineResult:
        """Per-batch time estimate for ``spec``."""

    def time_for_queries(self, spec: BenchmarkSpec, queries: int, batch: int) -> float:
        return self.estimate(spec, batch).time_for_queries(queries)


def gemv_flops(spec: BenchmarkSpec, batch: int, screened: bool) -> float:
    """FP32 FLOPs of one classification batch (screened or full)."""
    if screened:
        return float(spec.fp32_flops_screened(batch))
    return float(spec.fp32_flops_full(batch))
