"""GPU (§7.2) and ENMC near-DRAM (§7.3) comparison models.

These reproduce the paper's power/cost-efficiency discussion rather than a
latency race:

* A single RTX 3090 (350 W, 24 GB) cannot hold the large classifiers; a
  model-parallel fleet sized to hold all parameters burns hundreds of times
  ECSSD's power (the paper quotes >=18 GPUs and >=573x power for 100M
  categories).
* ENMC (MICRO'21) is a 64-rank near-DRAM system: higher peak GFLOPS but far
  worse GFLOPS/dollar and slightly worse GFLOPS/W than ECSSD (the paper
  quotes 0.018 vs 0.002 GFLOPS/$ and 4.55 vs 3.805 GFLOPS/W).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GiB
from ..workloads.benchmarks import BenchmarkSpec

# ECSSD reference operating point (from the paper's §7.3 efficiency math):
# 50 GFLOPS peak at ~11 W device power and ~$2750 infrastructure.
ECSSD_PEAK_GFLOPS = 50.0
ECSSD_POWER_W = ECSSD_PEAK_GFLOPS / 4.55
ECSSD_COST_USD = ECSSD_PEAK_GFLOPS / 0.018


@dataclass(frozen=True)
class GpuComparison:
    """RTX-3090-class GPU fleet sized to hold a benchmark in HBM/GDDR."""

    gpu_memory_bytes: int = 24 * GiB
    gpu_power_w: float = 350.0
    # Usable fraction of device memory for weights (activations, runtime,
    # fragmentation take the rest).
    usable_memory_fraction: float = 0.9

    def gpus_needed(self, spec: BenchmarkSpec) -> int:
        """GPUs required to hold the FP32 matrix entirely in device memory."""
        usable = self.gpu_memory_bytes * self.usable_memory_fraction
        return max(1, -(-spec.fp32_matrix_bytes // int(usable)))

    def fleet_power_w(self, spec: BenchmarkSpec) -> float:
        return self.gpus_needed(spec) * self.gpu_power_w

    def power_ratio_vs_ecssd(self, spec: BenchmarkSpec) -> float:
        """How many times more power the GPU fleet burns than one ECSSD."""
        return self.fleet_power_w(spec) / ECSSD_POWER_W

    def single_gpu_power_ratio(self) -> float:
        """One 3090 vs one ECSSD (the paper's 32x)."""
        return self.gpu_power_w / ECSSD_POWER_W


@dataclass(frozen=True)
class EnmcComparison:
    """ENMC 512 GB near-DRAM accelerator vs ECSSD (§7.3)."""

    enmc_peak_gflops: float = 800.0
    enmc_gflops_per_watt: float = 3.805
    enmc_gflops_per_dollar: float = 0.002
    enmc_capacity_bytes: int = 512 * GiB

    @property
    def enmc_power_w(self) -> float:
        return self.enmc_peak_gflops / self.enmc_gflops_per_watt

    @property
    def enmc_cost_usd(self) -> float:
        return self.enmc_peak_gflops / self.enmc_gflops_per_dollar

    def energy_efficiency_ratio(self) -> float:
        """ECSSD GFLOPS/W over ENMC GFLOPS/W (paper: 1.19x)."""
        return 4.55 / self.enmc_gflops_per_watt

    def cost_efficiency_ratio(self) -> float:
        """ECSSD GFLOPS/$ over ENMC GFLOPS/$ (paper: ~8.87x)."""
        return 0.018 / self.enmc_gflops_per_dollar

    def fits(self, spec: BenchmarkSpec) -> bool:
        """Whether ENMC's DRAM can hold the benchmark's FP32 matrix at all."""
        return spec.fp32_matrix_bytes <= self.enmc_capacity_bytes
