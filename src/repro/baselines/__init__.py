"""Comparison architectures for Fig. 13 (§6.7) and §7 discussions.

Each baseline is a bottleneck model of a published data path:

* :mod:`repro.baselines.cpu` — CPU-N / CPU-AP: conventional host executes
  the classifier, streaming weights over the SSD's external I/O.
* :mod:`repro.baselines.genstore` — GenStore-N / GenStore-AP: in-storage
  per-channel accelerators (GenStore, ASPLOS'22 style) without ECSSD's
  circuit/layout techniques.
* :mod:`repro.baselines.smartssd` — SmartSSD-N / SmartSSD-AP and the 6 GB/s
  "H" variants: near-storage FPGA behind a PCIe switch.
* :mod:`repro.baselines.gpu_enmc` — the §7.2 GPU and §7.3 ENMC
  power/cost-efficiency comparisons.

All models consume a :class:`repro.workloads.BenchmarkSpec` and report a
stage-by-stage time breakdown, so tests can verify *why* a baseline loses,
not just that it does.
"""

from .common import BaselineResult, ArchitectureModel
from .cpu import CpuBaseline, CPU_N, CPU_AP
from .genstore import GenStoreBaseline, GENSTORE_N, GENSTORE_AP
from .smartssd import (
    SmartSSDBaseline,
    SMARTSSD_N,
    SMARTSSD_AP,
    SMARTSSD_H_N,
    SMARTSSD_H_AP,
)
from .gpu_enmc import GpuComparison, EnmcComparison

__all__ = [
    "BaselineResult",
    "ArchitectureModel",
    "CpuBaseline",
    "CPU_N",
    "CPU_AP",
    "GenStoreBaseline",
    "GENSTORE_N",
    "GENSTORE_AP",
    "SmartSSDBaseline",
    "SMARTSSD_N",
    "SMARTSSD_AP",
    "SMARTSSD_H_N",
    "SMARTSSD_H_AP",
    "GpuComparison",
    "EnmcComparison",
]
