"""SmartSSD baselines: near-storage FPGA behind a PCIe switch (§6.7).

The Samsung/Xilinx SmartSSD couples an FPGA to the SSD over a 3 GB/s PCIe
switch; the "H" variants model a hypothetical next-generation 6 GB/s switch
(the paper's bandwidth sensitivity study).  The FPGA's compute is plentiful
— the switch is the bottleneck:

* sequential streaming (full-matrix reads) achieves ``seq_efficiency`` of
  the raw switch rate (measured P2P efficiency of the real platform);
* candidate fetches after screening are page-granular random reads at the
  lower ``rand_efficiency``, which is §6.7's "random floating-point data
  access ... slows down the overall performance".

SmartSSD-AP/H-AP run the screening on the FPGA, so the 4-bit matrix also
crosses the switch every batch (homogeneous storage: it lives in flash).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import gbps
from ..workloads.benchmarks import BenchmarkSpec
from .common import ArchitectureModel, BaselineResult, gemv_flops


@dataclass
class SmartSSDBaseline(ArchitectureModel):
    """FPGA-over-PCIe-switch near-storage computing."""

    use_screening: bool = False
    high_bandwidth: bool = False
    switch_bandwidth: float = gbps(3.0)
    seq_efficiency: float = 0.62
    rand_efficiency: float = 0.43
    fpga_fp32_gflops: float = 500.0
    fpga_int4_gops: float = 2000.0

    def __post_init__(self) -> None:
        if self.high_bandwidth:
            self.switch_bandwidth = gbps(6.0)
            self.name = "SmartSSD-H-AP" if self.use_screening else "SmartSSD-H-N"
        else:
            self.name = "SmartSSD-AP" if self.use_screening else "SmartSSD-N"
        self.uses_screening = self.use_screening

    def estimate(self, spec: BenchmarkSpec, batch: int) -> BaselineResult:
        seq_bw = self.switch_bandwidth * self.seq_efficiency
        rand_bw = self.switch_bandwidth * self.rand_efficiency
        stages = {}
        if self.use_screening:
            stages["screen_switch"] = spec.int4_matrix_bytes / seq_bw
            stages["screen_compute"] = spec.int4_ops(batch) / (
                self.fpga_int4_gops * 1e9
            )
            candidate_bytes = spec.expected_candidates * spec.fp32_vector_bytes
            stages["candidate_switch"] = candidate_bytes / rand_bw
            stages["classify_compute"] = gemv_flops(spec, batch, screened=True) / (
                self.fpga_fp32_gflops * 1e9
            )
            overlapped = False
        else:
            stages["weight_switch"] = spec.fp32_matrix_bytes / seq_bw
            stages["classify_compute"] = gemv_flops(spec, batch, screened=False) / (
                self.fpga_fp32_gflops * 1e9
            )
            overlapped = True  # streaming: FPGA compute hides under transfer
        return BaselineResult(
            architecture=self.name,
            benchmark=spec.name,
            batch=batch,
            stages=stages,
            overlapped=overlapped,
        )


SMARTSSD_N = SmartSSDBaseline(use_screening=False)
SMARTSSD_AP = SmartSSDBaseline(use_screening=True)
SMARTSSD_H_N = SmartSSDBaseline(use_screening=False, high_bandwidth=True)
SMARTSSD_H_AP = SmartSSDBaseline(use_screening=True, high_bandwidth=True)
