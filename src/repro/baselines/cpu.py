"""CPU baselines (Intel Xeon Silver 4110 class): CPU-N and CPU-AP (§6.7).

CPU-N streams the *entire* FP32 weight matrix from the SSD through the
external I/O link for every batch (the matrix exceeds host DRAM on the
large benchmarks), passes it through host memory, and runs the GEMV on the
cores.  CPU-AP keeps the 4-bit screener matrix resident in host DRAM,
screens there, then fetches only candidate vectors from the SSD — but those
fetches are page-granular *random* reads, which NVMe devices serve at a
fraction of their sequential bandwidth.

Model parameters (documented calibration, DESIGN.md §6):

* external I/O: PCIe 3.0 x4, 3.2 GB/s raw, 0.50 sequential efficiency
  (filesystem, driver, and host-DRAM staging overheads), 0.30
  random-read efficiency;
* host memory: 6-channel DDR4-2400 ≈ 115 GB/s;
* GEMV throughput: memory-bound at ~57 GFLOPS (2 FLOP per 4 streamed
  bytes), integer screening ~80 GOPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import gbps
from ..workloads.benchmarks import BenchmarkSpec
from .common import ArchitectureModel, BaselineResult, gemv_flops


@dataclass
class CpuBaseline(ArchitectureModel):
    """Conventional-host execution, with or without approximate screening."""

    use_screening: bool = False
    io_bandwidth: float = gbps(3.2)
    io_seq_efficiency: float = 0.50
    io_rand_efficiency: float = 0.30
    mem_bandwidth: float = gbps(115.0)
    fp32_gflops: float = 57.0
    int_gops: float = 80.0

    def __post_init__(self) -> None:
        self.name = "CPU-AP" if self.use_screening else "CPU-N"
        self.uses_screening = self.use_screening

    def estimate(self, spec: BenchmarkSpec, batch: int) -> BaselineResult:
        stages = {}
        if self.use_screening:
            # Screen in host DRAM: one pass of the 4-bit matrix plus INT ops.
            stages["screen_mem"] = spec.int4_matrix_bytes / self.mem_bandwidth
            stages["screen_compute"] = spec.int4_ops(batch) / (self.int_gops * 1e9)
            # Candidate fetch: page-granular random reads from the SSD.
            candidate_bytes = spec.expected_candidates * spec.fp32_vector_bytes
            stages["candidate_io"] = candidate_bytes / (
                self.io_bandwidth * self.io_rand_efficiency
            )
            stages["classify_mem"] = candidate_bytes / self.mem_bandwidth
            stages["classify_compute"] = gemv_flops(spec, batch, screened=True) / (
                self.fp32_gflops * 1e9
            )
        else:
            stages["weight_io"] = spec.fp32_matrix_bytes / (
                self.io_bandwidth * self.io_seq_efficiency
            )
            stages["classify_mem"] = spec.fp32_matrix_bytes / self.mem_bandwidth
            stages["classify_compute"] = gemv_flops(spec, batch, screened=False) / (
                self.fp32_gflops * 1e9
            )
        return BaselineResult(
            architecture=self.name,
            benchmark=spec.name,
            batch=batch,
            stages=stages,
            overlapped=False,
        )


CPU_N = CpuBaseline(use_screening=False)
CPU_AP = CpuBaseline(use_screening=True)
