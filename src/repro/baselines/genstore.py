"""GenStore-style in-storage baselines: GenStore-N and GenStore-AP (§6.7).

GenStore (ASPLOS'22) puts one proprietary accelerator on *each* flash
channel, with no inter-channel communication.  For the same total computing-
logic area as ECSSD (§6.7's fair-comparison rule), eight independent
channel-level accelerators lose efficiency to duplication: every channel
replicates control, buffering, and normalization logic, and a channel's MAC
array only sees its own channel's 1 GB/s stream, so partially-filled vector
lanes cannot be shared across channels.  ``fragmentation_efficiency``
captures that loss on top of the naive (not alignment-free) MAC circuit.

GenStore-AP adds an SSD-level INT4 accelerator for screening but keeps the
homogeneous layout (4-bit weights stream from flash, interfering with
candidate fetches), uniform interleaving (imbalanced candidate load,
``uniform_utilization``), and no dual-module overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import gbps
from ..workloads.benchmarks import BenchmarkSpec
from .common import ArchitectureModel, BaselineResult, gemv_flops


@dataclass
class GenStoreBaseline(ArchitectureModel):
    """Per-channel in-storage accelerators, no ECSSD techniques."""

    use_screening: bool = False
    channels: int = 8
    channel_bandwidth: float = gbps(1.0)
    naive_total_gflops: float = 29.2
    fragmentation_efficiency: float = 0.42
    int4_gops: float = 200.0
    uniform_utilization: float = 0.67

    def __post_init__(self) -> None:
        self.name = "GenStore-AP" if self.use_screening else "GenStore-N"
        self.uses_screening = self.use_screening

    @property
    def effective_gflops(self) -> float:
        return self.naive_total_gflops * self.fragmentation_efficiency

    @property
    def internal_bandwidth(self) -> float:
        return self.channels * self.channel_bandwidth

    def estimate(self, spec: BenchmarkSpec, batch: int) -> BaselineResult:
        stages = {}
        if self.use_screening:
            # 4-bit weights stream from flash (homogeneous layout).
            stages["screen_flash"] = spec.int4_matrix_bytes / self.internal_bandwidth
            stages["screen_compute"] = spec.int4_ops(batch) / (self.int4_gops * 1e9)
            candidate_bytes = spec.expected_candidates * spec.fp32_vector_bytes
            # Candidate fetches hit the uniform-interleaving imbalance.
            stages["candidate_flash"] = candidate_bytes / (
                self.internal_bandwidth * self.uniform_utilization
            )
            stages["classify_compute"] = gemv_flops(spec, batch, screened=True) / (
                self.effective_gflops * 1e9
            )
            overlapped = False  # no ECSSD scheduler: phases serialize
        else:
            # Full-matrix streaming is sequential and perfectly balanced.
            stages["weight_flash"] = spec.fp32_matrix_bytes / self.internal_bandwidth
            stages["classify_compute"] = gemv_flops(spec, batch, screened=False) / (
                self.effective_gflops * 1e9
            )
            overlapped = True  # streaming GEMV overlaps fetch and compute
        return BaselineResult(
            architecture=self.name,
            benchmark=spec.name,
            batch=batch,
            stages=stages,
            overlapped=overlapped,
        )


GENSTORE_N = GenStoreBaseline(use_screening=False)
GENSTORE_AP = GenStoreBaseline(use_screening=True)
