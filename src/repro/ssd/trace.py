"""Flash command tracing: observability for the event simulator.

Wraps per-channel controllers so every submitted command is logged as a
:class:`TraceEvent` with its issue time, channel, die, kind, and completion.
The trace supports the analyses MQSim users run: per-channel/die busy
timelines, queue-depth statistics, and gap analysis (the idle bubbles that
scheduling policies fight).  Tests use it to *prove* timing properties
instead of inferring them from aggregate counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import SimulationError
from .controller import BatchResult, CommandKind, FlashCommand, FlashController


@dataclass(frozen=True)
class TraceEvent:
    """One flash command's lifetime."""

    sequence: int
    channel: int
    package: int
    die: int
    kind: CommandKind
    submit_time: float
    finish_time: float

    @property
    def latency(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def die_key(self) -> tuple:
        return (self.channel, self.package, self.die)


@dataclass
class CommandTrace:
    """A recorded sequence of flash commands plus analyses over it."""

    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    # --- analyses --------------------------------------------------------------
    def per_channel_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for event in self.events:
            counts[event.channel] = counts.get(event.channel, 0) + 1
        return counts

    def per_die_counts(self) -> Dict[tuple, int]:
        counts: Dict[tuple, int] = {}
        for event in self.events:
            counts[event.die_key] = counts.get(event.die_key, 0) + 1
        return counts

    def makespan(self) -> float:
        if not self.events:
            return 0.0
        start = min(e.submit_time for e in self.events)
        finish = max(e.finish_time for e in self.events)
        return finish - start

    def mean_latency(self, kind: Optional[CommandKind] = None) -> float:
        matching = [
            e.latency for e in self.events if kind is None or e.kind is kind
        ]
        if not matching:
            raise SimulationError("no events of the requested kind")
        return sum(matching) / len(matching)

    def max_queue_depth(self) -> int:
        """Peak number of in-flight commands (submitted, not finished)."""
        points = []
        for event in self.events:
            points.append((event.submit_time, 1))
            points.append((event.finish_time, -1))
        points.sort(key=lambda p: (p[0], p[1]))
        depth = 0
        peak = 0
        for _time, delta in points:
            depth += delta
            peak = max(peak, depth)
        return peak

    def busy_fraction(self, channel: int) -> float:
        """Fraction of the trace window this channel had work in flight."""
        spans = sorted(
            (e.submit_time, e.finish_time)
            for e in self.events
            if e.channel == channel
        )
        if not spans:
            return 0.0
        merged = [list(spans[0])]
        for start, finish in spans[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], finish)
            else:
                merged.append([start, finish])
        busy = sum(finish - start for start, finish in merged)
        window = self.makespan()
        return busy / window if window > 0 else 0.0


class TracingController:
    """A :class:`FlashController` that records every command it issues."""

    def __init__(self, controller: FlashController, trace: CommandTrace) -> None:
        self.controller = controller
        self.trace = trace
        self._sequence = 0

    def submit(self, now: float, commands: Iterable[FlashCommand]) -> BatchResult:
        batch = list(commands)
        # Issue one-by-one so per-command finish times are observable.
        start = now
        finish = now
        for command in batch:
            result = self.controller.submit(start, [command])
            self.trace.append(
                TraceEvent(
                    sequence=self._sequence,
                    channel=command.address.channel,
                    package=command.address.package,
                    die=command.address.die,
                    kind=command.kind,
                    submit_time=start,
                    finish_time=result.finish,
                )
            )
            self._sequence += 1
            finish = max(finish, result.finish)
        return BatchResult(
            channel=self.controller.channel.index,
            commands=len(batch),
            start=now,
            finish=finish,
        )
