"""Flash command tracing: observability for the event simulator.

Wraps per-channel controllers so every submitted command is logged as a
:class:`TraceEvent` with its issue time, channel, die, kind, and completion.
The trace supports the analyses MQSim users run: per-channel/die busy
timelines, queue-depth statistics, and gap analysis (the idle bubbles that
scheduling policies fight).  Tests use it to *prove* timing properties
instead of inferring them from aggregate counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from .controller import BatchResult, CommandKind, FlashCommand, FlashController


@dataclass(frozen=True)
class TraceEvent:
    """One flash command's lifetime.

    ``queue_time`` / ``service_time`` / ``transfer_time`` decompose the
    latency for the critical-path profiler: waiting (busy die or bus,
    firmware overhead, fault stalls) vs. array time vs. bus data movement.
    They default to zero so pre-existing hand-built events stay valid.
    """

    sequence: int
    channel: int
    package: int
    die: int
    kind: CommandKind
    submit_time: float
    finish_time: float
    queue_time: float = 0.0
    service_time: float = 0.0
    transfer_time: float = 0.0

    @property
    def latency(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def die_key(self) -> tuple:
        return (self.channel, self.package, self.die)


@dataclass
class CommandTrace:
    """A recorded sequence of flash commands plus analyses over it."""

    events: List[TraceEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    # --- analyses --------------------------------------------------------------
    def per_channel_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for event in self.events:
            counts[event.channel] = counts.get(event.channel, 0) + 1
        return counts

    def per_die_counts(self) -> Dict[tuple, int]:
        counts: Dict[tuple, int] = {}
        for event in self.events:
            counts[event.die_key] = counts.get(event.die_key, 0) + 1
        return counts

    def makespan(self) -> float:
        if not self.events:
            return 0.0
        start = min(e.submit_time for e in self.events)
        finish = max(e.finish_time for e in self.events)
        return finish - start

    def mean_latency(self, kind: Optional[CommandKind] = None) -> float:
        matching = [
            e.latency for e in self.events if kind is None or e.kind is kind
        ]
        if not matching:
            raise SimulationError("no events of the requested kind")
        return sum(matching) / len(matching)

    def max_queue_depth(self) -> int:
        """Peak number of in-flight commands (submitted, not finished)."""
        points = []
        for event in self.events:
            points.append((event.submit_time, 1))
            points.append((event.finish_time, -1))
        points.sort(key=lambda p: (p[0], p[1]))
        depth = 0
        peak = 0
        for _time, delta in points:
            depth += delta
            peak = max(peak, depth)
        return peak

    def queue_depth_timeline(self) -> List[Tuple[float, int]]:
        """(time, in-flight depth) step function over the trace window.

        Each entry is the depth *after* the change at that time; submits and
        finishes at the same instant net out before the point is recorded.
        """
        points: List[Tuple[float, int]] = []
        for event in self.events:
            points.append((event.submit_time, 1))
            points.append((event.finish_time, -1))
        points.sort(key=lambda p: (p[0], p[1]))
        timeline: List[Tuple[float, int]] = []
        depth = 0
        for time, delta in points:
            depth += delta
            if timeline and timeline[-1][0] == time:
                timeline[-1] = (time, depth)
            else:
                timeline.append((time, depth))
        return timeline

    def queue_depth_percentile(self, p: float) -> float:
        """Time-weighted ``p``-th percentile (0-100) of the in-flight depth.

        Weighted by how long each depth level persisted, so a brief burst to
        depth 50 does not dominate a trace that idles at depth 2.
        """
        if not (0.0 <= p <= 100.0):
            raise SimulationError("percentile must be in [0, 100]")
        timeline = self.queue_depth_timeline()
        if not timeline:
            raise SimulationError("queue depth percentile of an empty trace")
        weighted: Dict[int, float] = {}
        for (time, depth), (next_time, _next) in zip(timeline, timeline[1:]):
            duration = next_time - time
            if duration > 0:
                weighted[depth] = weighted.get(depth, 0.0) + duration
        if not weighted:  # all events instantaneous: fall back to peak
            return float(self.max_queue_depth())
        total = sum(weighted.values())
        rank = p / 100.0 * total
        cumulative = 0.0
        for depth in sorted(weighted):
            cumulative += weighted[depth]
            if cumulative >= rank:
                return float(depth)
        return float(max(weighted))

    def queue_depth_summary(self) -> Dict[str, float]:
        """The p50/p95/p99 depth summary, mirroring the metrics registry."""
        return {
            "p50": self.queue_depth_percentile(50.0),
            "p95": self.queue_depth_percentile(95.0),
            "p99": self.queue_depth_percentile(99.0),
        }

    def to_chrome_events(self) -> List[dict]:
        """This trace as Chrome trace-event dicts (one per command).

        Delegates to :func:`repro.obs.export.command_trace_events`, the
        single TraceEvent-to-Chrome conversion path shared with
        :meth:`repro.obs.tracing.Tracer.add_command_trace`.
        """
        from ..obs.export import command_trace_events

        return command_trace_events(self.events)

    def busy_fraction(self, channel: int) -> float:
        """Fraction of the trace window this channel had work in flight."""
        spans = sorted(
            (e.submit_time, e.finish_time)
            for e in self.events
            if e.channel == channel
        )
        if not spans:
            return 0.0
        merged = [list(spans[0])]
        for start, finish in spans[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], finish)
            else:
                merged.append([start, finish])
        busy = sum(finish - start for start, finish in merged)
        window = self.makespan()
        return busy / window if window > 0 else 0.0


class TracingController:
    """A :class:`FlashController` that records every command it issues."""

    def __init__(self, controller: FlashController, trace: CommandTrace) -> None:
        self.controller = controller
        self.trace = trace
        self._sequence = 0

    def submit(self, now: float, commands: Iterable[FlashCommand]) -> BatchResult:
        batch = list(commands)
        # Issue one-by-one so per-command finish times are observable.
        start = now
        finish = now
        for command in batch:
            result = self.controller.submit(start, [command])
            # The wrapped controller issued exactly one command, so the
            # channel's last-op phase record describes it; any remaining
            # latency (firmware overhead, fault stalls) is queueing.
            phases = self.controller.channel.last_op_phases
            service = phases.service
            transfer = phases.transfer
            queue = max(0.0, (result.finish - start) - service - transfer)
            self.trace.append(
                TraceEvent(
                    sequence=self._sequence,
                    channel=command.address.channel,
                    package=command.address.package,
                    die=command.address.die,
                    kind=command.kind,
                    submit_time=start,
                    finish_time=result.finish,
                    queue_time=queue,
                    service_time=service,
                    transfer_time=transfer,
                )
            )
            self._sequence += 1
            finish = max(finish, result.finish)
        return BatchResult(
            channel=self.controller.channel.index,
            commands=len(batch),
            start=now,
            finish=finish,
        )
