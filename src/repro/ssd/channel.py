"""Flash channel model: the shared bus between a controller and its dies.

A channel carries command/address cycles (folded into the FTL command
overhead) and page data transfers at the NVDDR3 bus rate (1 GB/s in Table 2).
The bus is a serially-reusable resource: while one die streams out a page, the
other dies on the channel can sense in parallel but cannot transfer.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from ..config import FlashConfig
from ..errors import SimulationError
from .events import Resource
from .nand import Die, FlashOperation, NandTiming


class OpPhases(NamedTuple):
    """Phase decomposition of the channel's most recent operation.

    ``queue`` is time spent waiting for a busy die or bus, ``service`` is
    array time (sense / program / erase, including any ECC extension), and
    ``transfer`` is bus data movement.  Purely observational — recorded for
    the profiler's queueing-vs-service-vs-transfer attribution and never read
    back by the timing model.
    """

    queue: float
    service: float
    transfer: float


class Channel:
    """One flash channel: a bus resource plus its attached dies."""

    def __init__(self, index: int, config: FlashConfig) -> None:
        self.index = index
        self.config = config
        self.bus = Resource(name=f"channel{index}.bus")
        timing = NandTiming.from_config(config)
        self.dies: List[Die] = [
            Die(index=index * config.dies_per_channel + d, timing=timing)
            for d in range(config.dies_per_channel)
        ]
        self.pages_transferred = 0
        self.bytes_transferred = 0
        self.last_op_phases = OpPhases(0.0, 0.0, 0.0)

    # --- scheduling -----------------------------------------------------------
    def read_page(
        self, now: float, die_index: int, extra_sense: float = 0.0
    ) -> Tuple[float, float]:
        """Schedule a page read on ``die_index`` starting at or after ``now``.

        Returns ``(start, finish)``: ``start`` is when the die begins sensing,
        ``finish`` is when the page's data transfer over the bus completes.
        The bus is acquired only after the sense finishes, which lets other
        dies' transfers slot in during this die's tR.  ``extra_sense``
        extends the die occupation (ECC soft-decode / read-retry ladder).
        """
        die = self._die(die_index)
        _sense_start, sense_end = die.execute(now, FlashOperation.READ, extra_sense)
        _bus_start, bus_end = self.bus.acquire(sense_end, self.page_transfer_time)
        self.last_op_phases = OpPhases(
            queue=(_sense_start - now) + (_bus_start - sense_end),
            service=sense_end - _sense_start,
            transfer=bus_end - _bus_start,
        )
        self.pages_transferred += 1
        self.bytes_transferred += self.config.page_size
        return _sense_start, bus_end

    def program_page(self, now: float, die_index: int) -> Tuple[float, float]:
        """Schedule a page program: bus transfer in, then die program time."""
        die = self._die(die_index)
        _bus_start, bus_end = self.bus.acquire(now, self.page_transfer_time)
        start, end = die.execute(bus_end, FlashOperation.PROGRAM)
        self.last_op_phases = OpPhases(
            queue=(_bus_start - now) + (start - bus_end),
            service=end - start,
            transfer=bus_end - _bus_start,
        )
        self.pages_transferred += 1
        self.bytes_transferred += self.config.page_size
        return _bus_start, end

    def erase_block(self, now: float, die_index: int) -> Tuple[float, float]:
        """Schedule a block erase on ``die_index`` (no bus data phase)."""
        die = self._die(die_index)
        start, end = die.execute(now, FlashOperation.ERASE)
        self.last_op_phases = OpPhases(
            queue=start - now, service=end - start, transfer=0.0
        )
        return start, end

    def block_until(self, time: float) -> None:
        """Hold the whole channel (bus and dies) down before ``time``.

        Models a stuck-offline window: nothing on the channel can start
        before the window ends.  Accrues no busy time on any resource.
        """
        self.bus.block_until(time)
        for die in self.dies:
            die.block_until(time)

    # --- accounting -----------------------------------------------------------
    @property
    def page_transfer_time(self) -> float:
        return self.config.page_transfer_time

    @property
    def free_at(self) -> float:
        """Earliest time the whole channel (bus and all dies) is idle."""
        return max([self.bus.free_at] + [die.free_at for die in self.dies])

    def bus_utilization(self, elapsed: float) -> float:
        return self.bus.utilization(elapsed)

    def reset(self) -> None:
        self.bus.reset()
        for die in self.dies:
            die.reset()
        self.pages_transferred = 0
        self.bytes_transferred = 0
        self.last_op_phases = OpPhases(0.0, 0.0, 0.0)

    def _die(self, die_index: int) -> Die:
        if not (0 <= die_index < len(self.dies)):
            raise SimulationError(
                f"die {die_index} outside channel {self.index}'s"
                f" {len(self.dies)} dies"
            )
        return self.dies[die_index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Channel({self.index}, dies={len(self.dies)})"
