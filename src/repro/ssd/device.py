"""Assembled SSD device: channels, controllers, FTL, DRAM, buffer, host link.

:class:`SSDDevice` is the substrate both the ECSSD core and the in-storage
baselines run on.  It exposes two levels of service:

* **SSD mode** — logical page read/write through the FTL with host-link
  transfer, like a conventional drive (:meth:`host_write`, :meth:`host_read`).
* **Accelerator mode building block** — :meth:`fetch_pages`, which simulates
  fetching a set of physical pages through the per-channel controllers and
  reports the per-channel timing that the tile pipeline consumes.  This is
  where channel imbalance becomes time: the batch finishes when the busiest
  channel finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..config import ECSSDConfig
from ..errors import SimulationError
from ..faults.injector import get_injector
from .buffer import PingPongBuffer
from .channel import Channel
from .controller import CommandKind, FlashCommand, FlashController, route_commands
from .dram import DramModel
from .ftl import FlashTranslationLayer
from .geometry import FlashGeometry, PhysicalAddress
from .host import HostInterface


@dataclass
class TileAccessResult:
    """Timing of one physical-page batch fetch across channels.

    ``finish`` is the batch completion (max over channels); ``pages_per_
    channel`` is the access pattern Fig. 11 plots; ``utilization`` is the
    channel-level bandwidth utilization over the batch window — the metric
    Fig. 8 tracks (busy transfer time summed over channels, divided by
    ``channels * makespan``).
    """

    start: float
    finish: float
    pages_per_channel: List[int] = field(default_factory=list)
    channel_finish: List[float] = field(default_factory=list)
    total_pages: int = 0

    @property
    def makespan(self) -> float:
        return self.finish - self.start

    def utilization(self, page_transfer_time: float) -> float:
        """Channel-bandwidth utilization achieved by this batch."""
        if self.makespan <= 0 or not self.pages_per_channel:
            return 0.0
        busy = self.total_pages * page_transfer_time
        return busy / (len(self.pages_per_channel) * self.makespan)


class SSDDevice:
    """A complete simulated SSD built from an :class:`ECSSDConfig`."""

    def __init__(self, config: Optional[ECSSDConfig] = None) -> None:
        self.config = config or ECSSDConfig()
        flash = self.config.flash
        self.geometry = FlashGeometry(flash)
        self.channels: List[Channel] = [Channel(i, flash) for i in range(flash.channels)]
        self.controllers: List[FlashController] = [
            FlashController(
                channel=channel,
                geometry=self.geometry,
                command_overhead=self.config.ftl_command_overhead,
            )
            for channel in self.channels
        ]
        self.ftl = FlashTranslationLayer(flash)
        self.dram = DramModel(self.config.dram_capacity, self.config.dram_bandwidth)
        self.buffer = PingPongBuffer(self.config.data_buffer)
        self.host = HostInterface(self.config.host_bandwidth)
        self.clock = 0.0
        # If fault injection is live, wire its RBER wear axis to the FTL's
        # per-block erase ledger (the ground truth for P/E cycling).
        injector = get_injector()
        if injector.enabled:
            injector.bind_wear_source(self.ftl.block_erase_count)

    # --- SSD mode ----------------------------------------------------------------
    def host_write(self, logical_pages: Sequence[int]) -> float:
        """SSD-mode write: host link in, L2P update, program to flash.

        Returns the completion time of the whole write burst.
        """
        page_size = self.geometry.page_size
        now = self.clock
        link_done = self.host.send_to_device(now, len(logical_pages) * page_size)
        commands = []
        for lpa in logical_pages:
            address = self.ftl.write(lpa)
            commands.append(FlashCommand(CommandKind.PROGRAM, address, self.geometry))
        # L2P table updates hit DRAM (8 B per entry, read-modify-write).
        dram_done = self.dram.write(now, 8 * len(logical_pages))
        finish = max(link_done, dram_done)
        for channel_index, batch in route_commands(commands, len(self.channels)).items():
            if not batch:
                continue
            result = self.controllers[channel_index].submit(finish, batch)
            finish = max(finish, result.finish)
        self.clock = finish
        return finish

    def host_read(self, logical_pages: Sequence[int]) -> float:
        """SSD-mode read: L2P lookup, flash fetch, host link out."""
        page_size = self.geometry.page_size
        now = self.clock
        lookup_done = self.dram.read(now, 8 * len(logical_pages))
        addresses = [self.ftl.lookup(lpa) for lpa in logical_pages]
        fetch = self.fetch_pages(addresses, start=lookup_done)
        finish = self.host.receive_from_device(
            fetch.finish, len(logical_pages) * page_size
        )
        self.clock = finish
        return finish

    # --- accelerator-mode building block -------------------------------------------
    def fetch_pages(
        self,
        addresses: Iterable[PhysicalAddress],
        start: Optional[float] = None,
    ) -> TileAccessResult:
        """Simulate fetching physical pages into the data buffer.

        All channels begin at ``start`` (default: the device clock) and work
        their queues independently; the batch completes when the slowest
        channel drains.  Per-channel counts and finish times are reported for
        the access-pattern and utilization analyses.
        """
        begin = self.clock if start is None else start
        routed: Dict[int, List[FlashCommand]] = route_commands(
            (FlashCommand(CommandKind.READ, a, self.geometry) for a in addresses),
            len(self.channels),
        )
        pages_per_channel = [0] * len(self.channels)
        channel_finish = [begin] * len(self.channels)
        total = 0
        for channel_index, batch in routed.items():
            pages_per_channel[channel_index] = len(batch)
            total += len(batch)
            if not batch:
                continue
            result = self.controllers[channel_index].submit(begin, batch)
            channel_finish[channel_index] = result.finish
        finish = max(channel_finish) if total else begin
        return TileAccessResult(
            start=begin,
            finish=finish,
            pages_per_channel=pages_per_channel,
            channel_finish=channel_finish,
            total_pages=total,
        )

    def fetch_logical(
        self, logical_pages: Sequence[int], start: Optional[float] = None
    ) -> TileAccessResult:
        """:meth:`fetch_pages` addressed by logical page (adds L2P lookups)."""
        begin = self.clock if start is None else start
        lookup_done = self.dram.read(begin, 8 * len(logical_pages))
        addresses = [self.ftl.lookup(lpa) for lpa in logical_pages]
        return self.fetch_pages(addresses, start=lookup_done)

    # --- utilities ---------------------------------------------------------------------
    def advance_clock(self, time: float) -> None:
        if time < self.clock:
            raise SimulationError(f"clock cannot move backwards: {time} < {self.clock}")
        self.clock = time

    def reset_timing(self) -> None:
        """Clear all timing state (mappings and data are kept)."""
        for channel in self.channels:
            channel.reset()
        self.dram.reset_timing()
        self.host.reset_timing()
        self.buffer.reset()
        self.clock = 0.0

    @property
    def page_size(self) -> int:
        return self.geometry.page_size

    @property
    def page_transfer_time(self) -> float:
        return self.config.flash.page_transfer_time

    def channel_bus_utilizations(self, elapsed: float) -> List[float]:
        return [channel.bus_utilization(elapsed) for channel in self.channels]
