"""Per-channel flash controller: command queues and die interleaving.

The controller receives :class:`FlashCommand` batches from the FTL, issues
them to its channel, and reports per-batch completion times.  Reads to
different dies overlap their sense phases; the channel bus serializes the
data-out phases.  This is exactly the mechanism behind the paper's
channel-level bandwidth utilization numbers: a channel's finish time for a
tile is the makespan of the commands queued on it.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import SimulationError
from ..obs import get_registry
from .channel import Channel
from .geometry import FlashGeometry, PhysicalAddress

logger = logging.getLogger(__name__)


class CommandKind(enum.Enum):
    """Page-level flash command types."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True)
class FlashCommand:
    """One page-level flash command addressed to a physical page."""

    kind: CommandKind
    address: PhysicalAddress


@dataclass
class BatchResult:
    """Timing of one command batch on one channel."""

    channel: int
    commands: int
    start: float
    finish: float

    @property
    def makespan(self) -> float:
        return self.finish - self.start


class FlashController:
    """Controller for a single channel.

    ``submit`` issues commands in order but exploits die-level parallelism:
    each command's sense begins as soon as its die is free, and transfers
    serialize on the bus.  The FTL's per-command firmware overhead is added as
    an issue-side delay so that command setup costs scale with queue depth.
    """

    def __init__(
        self,
        channel: Channel,
        geometry: FlashGeometry,
        command_overhead: float = 0.0,
    ) -> None:
        self.channel = channel
        self.geometry = geometry
        self.command_overhead = command_overhead
        self.commands_issued = 0

    def submit(self, now: float, commands: Iterable[FlashCommand]) -> BatchResult:
        """Issue ``commands`` starting at ``now``; returns batch timing."""
        registry = get_registry()
        kind_counts: Optional[Dict[CommandKind, int]] = (
            {} if registry.enabled else None
        )
        start = now
        finish = now
        issue_time = now
        count = 0
        for command in commands:
            self._check_channel(command.address)
            die_index = self._local_die(command.address)
            issue_time += self.command_overhead
            if command.kind is CommandKind.READ:
                _s, end = self.channel.read_page(issue_time, die_index)
            elif command.kind is CommandKind.PROGRAM:
                _s, end = self.channel.program_page(issue_time, die_index)
            elif command.kind is CommandKind.ERASE:
                _s, end = self.channel.erase_block(issue_time, die_index)
            else:  # pragma: no cover - enum is exhaustive
                raise SimulationError(f"unknown command kind {command.kind!r}")
            finish = max(finish, end)
            count += 1
            if kind_counts is not None:
                kind_counts[command.kind] = kind_counts.get(command.kind, 0) + 1
        self.commands_issued += count
        if kind_counts:
            counter = registry.counter(
                "flash_commands_total",
                "flash commands issued by the event simulator",
            )
            for kind, kind_count in kind_counts.items():
                counter.inc(
                    kind_count, channel=self.channel.index, kind=kind.value
                )
            logger.debug(
                "channel %d: %d commands in [%.6f, %.6f]",
                self.channel.index, count, start, finish,
            )
        return BatchResult(
            channel=self.channel.index, commands=count, start=start, finish=finish
        )

    def _check_channel(self, address: PhysicalAddress) -> None:
        if address.channel != self.channel.index:
            raise SimulationError(
                f"command for channel {address.channel} sent to controller"
                f" of channel {self.channel.index}"
            )

    def _local_die(self, address: PhysicalAddress) -> int:
        cfg = self.geometry.config
        return address.package * cfg.dies_per_package + address.die


def route_commands(
    commands: Iterable[FlashCommand], channels: int
) -> Dict[int, List[FlashCommand]]:
    """Split a command stream by target channel (FTL dispatch helper)."""
    routed: Dict[int, List[FlashCommand]] = {c: [] for c in range(channels)}
    for command in commands:
        if command.address.channel not in routed:
            raise SimulationError(
                f"command targets channel {command.address.channel},"
                f" device has {channels}"
            )
        routed[command.address.channel].append(command)
    return routed
