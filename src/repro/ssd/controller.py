"""Per-channel flash controller: command queues and die interleaving.

The controller receives :class:`FlashCommand` batches from the FTL, issues
them to its channel, and reports per-batch completion times.  Reads to
different dies overlap their sense phases; the channel bus serializes the
data-out phases.  This is exactly the mechanism behind the paper's
channel-level bandwidth utilization numbers: a channel's finish time for a
tile is the makespan of the commands queued on it.
"""

from __future__ import annotations

import enum
import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import SimulationError
from ..faults.injector import get_injector
from ..obs import get_registry
from .channel import Channel
from .geometry import FlashGeometry, PhysicalAddress

logger = logging.getLogger(__name__)


class CommandKind(enum.Enum):
    """Page-level flash command types."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True)
class FlashCommand:
    """One page-level flash command addressed to a physical page.

    When constructed with a ``geometry``, every address field is validated
    against the device fan-out immediately (raising
    :class:`~repro.errors.AddressError` naming the offending field) instead
    of first failing deep inside :meth:`FlashController.submit`.  The
    geometry rides along for validation only: it does not participate in
    equality or repr.
    """

    kind: CommandKind
    address: PhysicalAddress
    geometry: Optional[FlashGeometry] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.geometry is not None:
            self.geometry.check(self.address)


@dataclass
class BatchResult:
    """Timing of one command batch on one channel.

    ``failed`` lists the addresses whose reads came back uncorrectable
    (empty unless fault injection is active) — the die and bus time was
    still spent, but the data is lost to the caller.
    """

    channel: int
    commands: int
    start: float
    finish: float
    failed: List[PhysicalAddress] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.finish - self.start


class FlashController:
    """Controller for a single channel.

    ``submit`` issues commands in order but exploits die-level parallelism:
    each command's sense begins as soon as its die is free, and transfers
    serialize on the bus.  The FTL's per-command firmware overhead is added as
    an issue-side delay so that command setup costs scale with queue depth.
    """

    def __init__(
        self,
        channel: Channel,
        geometry: FlashGeometry,
        command_overhead: float = 0.0,
    ) -> None:
        self.channel = channel
        self.geometry = geometry
        self.command_overhead = command_overhead
        self.commands_issued = 0

    def submit(self, now: float, commands: Iterable[FlashCommand]) -> BatchResult:
        """Issue ``commands`` starting at ``now``; returns batch timing."""
        registry = get_registry()
        injector = get_injector()
        kind_counts: Optional[Dict[CommandKind, int]] = (
            {} if registry.enabled else None
        )
        latency_histogram = (
            registry.histogram(
                "flash_command_latency_seconds",
                "per-command flash latency, by channel and kind",
            )
            if registry.enabled
            else None
        )
        start = now
        finish = now
        issue_time = now
        count = 0
        failed: List[PhysicalAddress] = []
        for command in commands:
            self.geometry.check(command.address)
            self._check_channel(command.address)
            die_index = self._local_die(command.address)
            issue_time += self.command_overhead
            extra_sense = 0.0
            if injector.enabled:
                issue_time = self._fault_delays(injector, issue_time)
                if command.kind is CommandKind.READ:
                    outcome = injector.read_outcome(issue_time, command.address)
                    extra_sense = outcome.extra_latency
                    if not outcome.correctable:
                        failed.append(command.address)
                elif command.kind is CommandKind.PROGRAM:
                    injector.on_program(command.address, issue_time)
            if command.kind is CommandKind.READ:
                _s, end = self.channel.read_page(issue_time, die_index, extra_sense)
            elif command.kind is CommandKind.PROGRAM:
                _s, end = self.channel.program_page(issue_time, die_index)
            elif command.kind is CommandKind.ERASE:
                _s, end = self.channel.erase_block(issue_time, die_index)
            else:  # pragma: no cover - enum is exhaustive
                raise SimulationError(f"unknown command kind {command.kind!r}")
            finish = max(finish, end)
            count += 1
            if kind_counts is not None:
                kind_counts[command.kind] = kind_counts.get(command.kind, 0) + 1
            if latency_histogram is not None:
                latency_histogram.observe(
                    end - issue_time,
                    channel=self.channel.index,
                    kind=command.kind.value,
                )
        self.commands_issued += count
        if kind_counts:
            counter = registry.counter(
                "flash_commands_total",
                "flash commands issued by the event simulator",
            )
            for kind, kind_count in kind_counts.items():
                counter.inc(
                    kind_count, channel=self.channel.index, kind=kind.value
                )
            logger.debug(
                "channel %d: %d commands in [%.6f, %.6f]",
                self.channel.index, count, start, finish,
            )
        return BatchResult(
            channel=self.channel.index,
            commands=count,
            start=start,
            finish=finish,
            failed=failed,
        )

    def _fault_delays(self, injector, issue_time: float) -> float:
        """Apply offline windows and bounded timeout retries to one command.

        The retry policy is deterministic and *bounded* (the no-hang
        invariant): a timed-out command pays ``timeout_penalty`` plus a
        linearly growing ``retry_backoff`` per attempt, and after
        ``max_command_retries`` attempts the controller escalates to a
        reset and forces the operation through rather than looping.
        """
        release = injector.offline_release(self.channel.index, issue_time)
        if release > issue_time:
            self.channel.block_until(release)
            issue_time = release
        config = injector.config
        for attempt in range(config.max_command_retries + 1):
            if not injector.next_command_times_out():
                break
            if attempt >= config.max_command_retries:
                break  # retry budget exhausted: escalate (reset), proceed
            issue_time += config.timeout_penalty + (attempt + 1) * config.retry_backoff
            release = injector.offline_release(self.channel.index, issue_time)
            if release > issue_time:
                self.channel.block_until(release)
                issue_time = release
        return issue_time

    def _check_channel(self, address: PhysicalAddress) -> None:
        if address.channel != self.channel.index:
            raise SimulationError(
                f"command for channel {address.channel} sent to controller"
                f" of channel {self.channel.index}"
            )

    def _local_die(self, address: PhysicalAddress) -> int:
        cfg = self.geometry.config
        return address.package * cfg.dies_per_package + address.die


def route_commands(
    commands: Iterable[FlashCommand], channels: int
) -> Dict[int, List[FlashCommand]]:
    """Split a command stream by target channel (FTL dispatch helper)."""
    routed: Dict[int, List[FlashCommand]] = {c: [] for c in range(channels)}
    for command in commands:
        if command.address.channel not in routed:
            raise SimulationError(
                f"command targets channel {command.address.channel},"
                f" device has {channels}"
            )
        routed[command.address.channel].append(command)
    return routed
