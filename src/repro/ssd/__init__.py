"""NAND-flash SSD simulator substrate.

This package implements the storage device the paper evaluates on: an
MQSim-class simulator with the channel/package/die/plane/block/page
hierarchy, NVDDR3-style timing, per-channel flash controllers, an FTL with
logical-to-physical mapping, garbage collection and wear leveling, a DRAM
model, and a ping-pong data buffer.

Public entry point: :class:`repro.ssd.device.SSDDevice`.
"""

from .events import EventQueue, Simulator
from .geometry import FlashGeometry, LogicalAddress, PhysicalAddress
from .nand import NandTiming, Die, FlashOperation
from .channel import Channel
from .controller import FlashController, FlashCommand, CommandKind
from .ftl import FlashTranslationLayer
from .dram import DramModel
from .buffer import PingPongBuffer, BufferOverflow
from .host import HostInterface
from .scheduler import ScheduledController, SchedulingPolicy
from .trace import CommandTrace, TraceEvent, TracingController
from .queues import NvmeFrontEnd, QueuePair, IoKind, Arbitration
from .device import SSDDevice, TileAccessResult

__all__ = [
    "EventQueue",
    "Simulator",
    "FlashGeometry",
    "LogicalAddress",
    "PhysicalAddress",
    "NandTiming",
    "Die",
    "FlashOperation",
    "Channel",
    "FlashController",
    "FlashCommand",
    "CommandKind",
    "FlashTranslationLayer",
    "DramModel",
    "PingPongBuffer",
    "BufferOverflow",
    "HostInterface",
    "ScheduledController",
    "SchedulingPolicy",
    "CommandTrace",
    "TraceEvent",
    "TracingController",
    "NvmeFrontEnd",
    "QueuePair",
    "IoKind",
    "Arbitration",
    "SSDDevice",
    "TileAccessResult",
]
