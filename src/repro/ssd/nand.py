"""NAND die model: per-die operation timing and occupancy.

A die executes one flash operation at a time.  Read latency (tR) is spent on
the die itself; the subsequent data transfer occupies the channel bus and is
modeled by :class:`repro.ssd.channel.Channel`.  Program and erase occupy the
die for much longer, which is why writes interleave across dies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import FlashConfig
from ..errors import SimulationError
from .events import Resource


class FlashOperation(enum.Enum):
    """The three NAND array operations."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass(frozen=True)
class NandTiming:
    """NVDDR3-class NAND operation latencies, extracted from a config."""

    read: float
    program: float
    erase: float

    @classmethod
    def from_config(cls, config: FlashConfig) -> "NandTiming":
        return cls(
            read=config.read_latency,
            program=config.program_latency,
            erase=config.erase_latency,
        )

    def latency(self, op: FlashOperation) -> float:
        if op is FlashOperation.READ:
            return self.read
        if op is FlashOperation.PROGRAM:
            return self.program
        if op is FlashOperation.ERASE:
            return self.erase
        raise SimulationError(f"unknown flash operation {op!r}")


class Die:
    """One NAND die: a serially-reusable resource with operation counters.

    Multi-plane parallelism is intentionally not modeled as extra concurrency:
    candidate fetches in this workload are single-page random reads, for which
    plane pairing rarely applies.  Planes still exist in the address space
    (for capacity) — they just share the die's one operation slot, which is
    the conservative, commonly-measured behaviour.
    """

    def __init__(self, index: int, timing: NandTiming) -> None:
        self.index = index
        self.timing = timing
        self._resource = Resource(name=f"die{index}")
        self.reads = 0
        self.programs = 0
        self.erases = 0

    def execute(self, now: float, op: FlashOperation, extra: float = 0.0) -> tuple:
        """Occupy the die for ``op``; returns the ``(start, end)`` interval.

        ``start`` is when the die actually begins (it may be busy with a
        previous operation); ``end`` is when the array operation completes —
        for reads that is when data is ready in the die's page register,
        before any bus transfer.  ``extra`` extends the occupation (ECC
        soft-decode and read-retry re-sensing happen on the die).
        """
        if extra < 0:
            raise SimulationError(f"negative extra occupation {extra} on die {self.index}")
        start, end = self._resource.acquire(now, self.timing.latency(op) + extra)
        if op is FlashOperation.READ:
            self.reads += 1
        elif op is FlashOperation.PROGRAM:
            self.programs += 1
        else:
            self.erases += 1
        return start, end

    def block_until(self, time: float) -> None:
        """Hold the die unavailable before ``time`` (component outage)."""
        self._resource.block_until(time)

    @property
    def busy_time(self) -> float:
        return self._resource.busy_time

    @property
    def free_at(self) -> float:
        return self._resource.free_at

    def utilization(self, elapsed: float) -> float:
        return self._resource.utilization(elapsed)

    def reset(self) -> None:
        self._resource.reset()
        self.reads = 0
        self.programs = 0
        self.erases = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Die({self.index}, reads={self.reads}, programs={self.programs})"
