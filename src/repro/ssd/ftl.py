"""Flash Translation Layer: L2P mapping, allocation, GC, wear leveling.

The FTL is the firmware function the paper's interleaving framework relies on
(§5.3): each flash channel owns a contiguous logical address range, so a host
that assigns a logical address from channel *c*'s range is guaranteed its data
lands on channel *c*.  :meth:`FlashTranslationLayer.channel_logical_range`
exposes exactly that contract.

Internals:

* **L2P map** — a dict from logical page to flat physical page, with the
  reverse map for invalidation.  (The real device keeps this table in DRAM;
  :class:`repro.ssd.device.SSDDevice` charges DRAM accesses for lookups.)
* **Allocation** — per-channel append points: each (channel, die, plane) has
  an active block written page-by-page, spreading programs across dies.
* **Garbage collection** — greedy cost-benefit: when a plane's free-block
  reserve drops below ``gc_threshold``, the full block with the fewest valid
  pages is the victim; its valid pages are relocated and the block erased.
* **Wear leveling** — free blocks are taken from a min-heap keyed by erase
  count, so erases spread across blocks.

State is created lazily per plane/block: a Table 2 device has half a million
blocks, and experiments only ever touch a sliver of them, so memory tracks
the written footprint rather than the raw geometry.
"""

from __future__ import annotations

import heapq
import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import FlashConfig
from ..errors import AddressError, CapacityError, SimulationError
from ..obs import get_registry, get_tracer
from .geometry import FlashGeometry, PhysicalAddress

logger = logging.getLogger(__name__)

# A plane is identified by (channel, package, die, plane).
PlaneKey = Tuple[int, int, int, int]


class BlockState:
    """Bookkeeping for one physical block (valid bitmap + wear)."""

    __slots__ = ("block", "pages_per_block", "write_pointer", "valid", "erase_count")

    def __init__(self, block: int, pages_per_block: int) -> None:
        self.block = block
        self.pages_per_block = pages_per_block
        self.write_pointer = 0
        self.valid = bytearray(pages_per_block)
        self.erase_count = 0

    @property
    def is_full(self) -> bool:
        return self.write_pointer >= self.pages_per_block

    @property
    def valid_pages(self) -> int:
        return sum(self.valid)

    def erase(self) -> None:
        self.write_pointer = 0
        self.valid = bytearray(self.pages_per_block)
        self.erase_count += 1


@dataclass
class GcEvent:
    """Record of one garbage-collection invocation (for tests/telemetry)."""

    plane: PlaneKey
    victim_block: int
    relocated_pages: int


class _PlaneState:
    """Lazily-created allocation state for one plane."""

    __slots__ = ("blocks", "free_heap", "active", "in_gc")

    def __init__(self, blocks_per_plane: int) -> None:
        self.blocks: Dict[int, BlockState] = {}
        self.free_heap: List[Tuple[int, int]] = [(0, b) for b in range(blocks_per_plane)]
        # Heap starts sorted (all-zero wear), no heapify needed.
        self.active: Optional[BlockState] = None
        # Re-entrancy guard: GC's own relocation writes must not trigger a
        # nested collection of the same plane (the over-provisioned reserve
        # exists precisely so relocations always find a destination).
        self.in_gc = False


class FlashTranslationLayer:
    """Page-mapping FTL over a :class:`FlashGeometry`.

    ``gc_threshold`` is the minimum number of free blocks a plane keeps in
    reserve; dropping to it triggers GC on that plane.  ``op_ratio`` reserves
    over-provisioned blocks per plane that the host-visible capacity never
    touches, which guarantees GC can always find a destination.
    """

    def __init__(
        self,
        config: FlashConfig,
        gc_threshold: int = 2,
        op_ratio: float = 0.07,
    ) -> None:
        if gc_threshold < 1:
            raise SimulationError("gc_threshold must be >= 1")
        if not (0.0 <= op_ratio < 0.5):
            raise SimulationError("op_ratio must be in [0, 0.5)")
        self.config = config
        self.geometry = FlashGeometry(config)
        self.gc_threshold = gc_threshold
        self.op_ratio = op_ratio

        self._l2p: Dict[int, int] = {}
        self._p2l: Dict[int, int] = {}
        self._planes: Dict[PlaneKey, _PlaneState] = {}
        self.gc_events: List[GcEvent] = []
        self.pages_written = 0
        self.pages_relocated = 0

    # --- logical address ranges (§5.3 contract) -------------------------------
    def channel_logical_range(self, channel: int) -> range:
        """The logical page range whose writes land on ``channel``.

        The firmware statically partitions the logical space channel-by-
        channel; user capacity excludes the over-provisioned share.
        """
        if not (0 <= channel < self.config.channels):
            raise AddressError(f"channel {channel} outside device")
        per_channel = self.user_pages_per_channel
        start = channel * per_channel
        return range(start, start + per_channel)

    @property
    def user_pages_per_channel(self) -> int:
        return int(self.config.pages_per_channel * (1.0 - self.op_ratio))

    @property
    def user_pages(self) -> int:
        return self.user_pages_per_channel * self.config.channels

    def channel_of_logical(self, logical_page: int) -> int:
        """Which channel a logical page is statically routed to."""
        if not (0 <= logical_page < self.user_pages):
            raise AddressError(
                f"logical page {logical_page} outside user space"
                f" [0, {self.user_pages})"
            )
        return logical_page // self.user_pages_per_channel

    # --- mapping ---------------------------------------------------------------
    def write(self, logical_page: int) -> PhysicalAddress:
        """Map ``logical_page`` to a fresh physical page; returns its PPA.

        Overwrites invalidate the previous physical page.  The channel is
        determined by the static logical range; within the channel the
        allocator round-robins dies/planes for program parallelism.
        """
        channel = self.channel_of_logical(logical_page)
        old = self._l2p.pop(logical_page, None)
        if old is not None:
            self._invalidate(old)
        address = self._allocate(channel, logical_page)
        flat = self.geometry.to_flat(address)
        self._l2p[logical_page] = flat
        self._p2l[flat] = logical_page
        self.pages_written += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "ftl_pages_written_total", "pages programmed through the FTL"
            ).inc(channel=channel)
        return address

    def lookup(self, logical_page: int) -> PhysicalAddress:
        """Translate a logical page to its current physical address."""
        flat = self._l2p.get(logical_page)
        if flat is None:
            raise AddressError(f"logical page {logical_page} is unmapped")
        return self.geometry.to_physical(flat)

    def is_mapped(self, logical_page: int) -> bool:
        return logical_page in self._l2p

    def trim(self, logical_page: int) -> None:
        """Discard a mapping (host TRIM); the physical page becomes invalid."""
        flat = self._l2p.pop(logical_page, None)
        if flat is not None:
            self._invalidate(flat)

    @property
    def mapped_pages(self) -> int:
        return len(self._l2p)

    # --- allocation --------------------------------------------------------------
    def _allocate(self, channel: int, logical_page: int) -> PhysicalAddress:
        plane_key = self._pick_plane(channel, logical_page)
        block = self._active_block(plane_key)
        page = block.write_pointer
        block.write_pointer += 1
        block.valid[page] = 1
        if block.is_full:
            self._plane(plane_key).active = None
        return PhysicalAddress(
            channel=plane_key[0],
            package=plane_key[1],
            die=plane_key[2],
            plane=plane_key[3],
            block=block.block,
            page=page,
        )

    def _pick_plane(self, channel: int, logical_page: int) -> PlaneKey:
        """Round-robin planes within the channel by logical page number."""
        cfg = self.config
        planes_per_channel = (
            cfg.packages_per_channel * cfg.dies_per_package * cfg.planes_per_die
        )
        idx = logical_page % planes_per_channel
        package, rest = divmod(idx, cfg.dies_per_package * cfg.planes_per_die)
        die, plane = divmod(rest, cfg.planes_per_die)
        return (channel, package, die, plane)

    def _plane(self, plane_key: PlaneKey) -> _PlaneState:
        state = self._planes.get(plane_key)
        if state is None:
            state = _PlaneState(self.config.blocks_per_plane)
            self._planes[plane_key] = state
        return state

    def _active_block(self, plane_key: PlaneKey) -> BlockState:
        state = self._plane(plane_key)
        if state.active is not None and not state.active.is_full:
            return state.active
        if len(state.free_heap) <= self.gc_threshold and not state.in_gc:
            self._garbage_collect(plane_key)
            # GC's relocations may have opened an active block with room
            # left; reuse it rather than stranding its free pages.
            if state.active is not None and not state.active.is_full:
                return state.active
        state.active = self._pop_free_block(plane_key)
        return state.active

    def _pop_free_block(self, plane_key: PlaneKey) -> BlockState:
        state = self._plane(plane_key)
        if not state.free_heap:
            touched = len(state.blocks)
            valid = sum(block.valid_pages for block in state.blocks.values())
            wear = [block.erase_count for block in state.blocks.values()]
            wear_lo = min(wear) if wear else 0
            wear_hi = max(wear) if wear else 0
            raise CapacityError(
                f"plane {plane_key} has no free blocks (GC failed): "
                f"{touched}/{self.config.blocks_per_plane} blocks touched, "
                f"{valid} valid pages pinned, erase counts "
                f"[{wear_lo}, {wear_hi}], gc_threshold={self.gc_threshold}, "
                f"op_ratio={self.op_ratio}"
            )
        _wear, block_index = heapq.heappop(state.free_heap)
        block = state.blocks.get(block_index)
        if block is None:
            block = BlockState(block_index, self.config.pages_per_block)
            state.blocks[block_index] = block
        return block

    # --- garbage collection ---------------------------------------------------------
    def _garbage_collect(self, plane_key: PlaneKey) -> None:
        """Reclaim blocks until the plane's free reserve is replenished.

        One pass may reclaim a block whose pages the next allocation
        immediately consumes, so collection loops while reclaimable victims
        exist and the reserve is still at or below the threshold.
        """
        state = self._plane(plane_key)
        state.in_gc = True
        try:
            while len(state.free_heap) <= self.gc_threshold:
                victim = self._pick_victim(plane_key)
                if victim is None:
                    return  # nothing reclaimable; allocation may still succeed
                self._collect_victim(plane_key, state, victim)
        finally:
            state.in_gc = False

    def _collect_victim(
        self, plane_key: PlaneKey, state: _PlaneState, victim: BlockState
    ) -> None:
        relocated = 0
        for page_index in range(victim.pages_per_block):
            if not victim.valid[page_index]:
                continue
            flat = self.geometry.to_flat(
                PhysicalAddress(
                    plane_key[0],
                    plane_key[1],
                    plane_key[2],
                    plane_key[3],
                    victim.block,
                    page_index,
                )
            )
            logical_page = self._p2l.pop(flat)
            victim.valid[page_index] = 0
            new_address = self._allocate(plane_key[0], logical_page)
            new_flat = self.geometry.to_flat(new_address)
            self._l2p[logical_page] = new_flat
            self._p2l[new_flat] = logical_page
            relocated += 1
        victim.erase()
        heapq.heappush(state.free_heap, (victim.erase_count, victim.block))
        self.pages_relocated += relocated
        self.gc_events.append(
            GcEvent(plane=plane_key, victim_block=victim.block, relocated_pages=relocated)
        )
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "ftl_gc_total", "garbage-collection invocations"
            ).inc(channel=plane_key[0])
            registry.counter(
                "ftl_pages_relocated_total", "valid pages moved by GC"
            ).inc(relocated, channel=plane_key[0])
        tracer = get_tracer()
        if tracer.enabled:
            # The FTL has no simulated clock of its own: GC shows up as a
            # wall-time instant event tagged with its plane and cost.
            tracer.instant(
                "gc",
                attrs={
                    "plane": list(plane_key),
                    "victim_block": victim.block,
                    "relocated_pages": relocated,
                    "erase_count": victim.erase_count,
                },
            )
        logger.debug(
            "gc: plane %s victim block %d relocated %d pages",
            plane_key, victim.block, relocated,
        )

    def _pick_victim(self, plane_key: PlaneKey) -> Optional[BlockState]:
        state = self._plane(plane_key)
        candidates = [
            block
            for block in state.blocks.values()
            if block.is_full
            and block is not state.active
            and block.valid_pages < block.pages_per_block
        ]
        # A fully valid block is never a victim: collecting it reclaims
        # nothing and consumes exactly the space it frees, so GC would
        # live-lock shuffling pages at 100% utilization instead of letting
        # the allocator surface CapacityError.
        if not candidates:
            return None
        return min(candidates, key=lambda block: (block.valid_pages, block.erase_count))

    # --- reliability hooks (scrub/refresh, wear lookup) -------------------------------
    def block_erase_count(self, address: PhysicalAddress) -> int:
        """Erase count (P/E cycles) of the block holding ``address``.

        The fault injector binds this as its wear source: RBER grows with
        P/E cycling, and the FTL's per-block ledger is the ground truth.
        Untouched blocks have zero wear.
        """
        plane_key = (address.channel, address.package, address.die, address.plane)
        state = self._planes.get(plane_key)
        if state is None:
            return 0
        block = state.blocks.get(address.block)
        return block.erase_count if block is not None else 0

    def iter_refreshable_blocks(self) -> List[Tuple[PlaneKey, int]]:
        """Blocks a scrub pass may refresh, in deterministic order.

        A block is refreshable when it is full (no open write pointer),
        not the plane's active block, and still holds valid pages to
        migrate.  Sorted by (plane, block) so scrub order never depends on
        dict iteration.
        """
        refreshable: List[Tuple[PlaneKey, int]] = []
        for plane_key in sorted(self._planes):
            state = self._planes[plane_key]
            for block_index in sorted(state.blocks):
                block = state.blocks[block_index]
                if block.is_full and block is not state.active and block.valid_pages:
                    refreshable.append((plane_key, block_index))
        return refreshable

    def refresh_block(self, plane_key: PlaneKey, block_index: int) -> int:
        """Migrate a block's valid pages and erase it (scrub/refresh).

        Re-programming rewinds retention for every page the block held, and
        the erased block re-enters the wear-leveling heap keyed by its new
        erase count — refresh *is* a targeted GC pass.  Returns the number
        of pages migrated.
        """
        state = self._plane(plane_key)
        block = state.blocks.get(block_index)
        if block is None:
            raise AddressError(
                f"block {block_index} on plane {plane_key} has never been written"
            )
        if block is state.active:
            raise SimulationError(
                f"block {block_index} on plane {plane_key} is the active "
                "append point and cannot be refreshed"
            )
        if not block.is_full:
            raise SimulationError(
                f"block {block_index} on plane {plane_key} is still open "
                f"(write pointer {block.write_pointer})"
            )
        relocated = block.valid_pages
        state.in_gc = True
        try:
            self._collect_victim(plane_key, state, block)
        finally:
            state.in_gc = False
        return relocated

    # --- wear statistics --------------------------------------------------------------
    def wear_stats(self) -> Tuple[int, int, float]:
        """(min, max, mean) erase counts across *touched* blocks.

        Untouched planes have uniformly zero wear and are excluded from the
        mean so the statistic reflects the written footprint.
        """
        counts = [
            block.erase_count
            for state in self._planes.values()
            for block in state.blocks.values()
        ]
        if not counts:
            return 0, 0, 0.0
        return min(counts), max(counts), sum(counts) / len(counts)

    def _invalidate(self, flat: int) -> None:
        address = self.geometry.to_physical(flat)
        plane_key = (address.channel, address.package, address.die, address.plane)
        block = self._plane(plane_key).blocks[address.block]
        block.valid[address.page] = 0
        self._p2l.pop(flat, None)
