"""SSD-internal DRAM model.

The DRAM serves two roles in ECSSD: it holds the L2P table and SSD management
data (SSD mode), and in accelerator mode it additionally stores the entire
4-bit screener weight matrix (the heterogeneous layout of §4.3).  The model
tracks capacity allocations by name and charges transfer time at the
configured bandwidth (12.8 GB/s in §6.1).
"""

from __future__ import annotations

from typing import Dict

from ..errors import CapacityError, SimulationError
from ..units import transfer_time
from .events import Resource


class DramModel:
    """Capacity-tracked DRAM with a shared-bandwidth port."""

    def __init__(self, capacity: int, bandwidth: float) -> None:
        if capacity <= 0:
            raise SimulationError("DRAM capacity must be positive")
        if bandwidth <= 0:
            raise SimulationError("DRAM bandwidth must be positive")
        self.capacity = capacity
        self.bandwidth = bandwidth
        self._allocations: Dict[str, int] = {}
        self.port = Resource(name="dram.port")
        self.bytes_read = 0
        self.bytes_written = 0

    # --- capacity accounting ----------------------------------------------------
    def allocate(self, name: str, num_bytes: int) -> None:
        """Reserve ``num_bytes`` under ``name``; re-allocating a name resizes."""
        if num_bytes < 0:
            raise CapacityError(f"negative allocation {num_bytes} for {name!r}")
        current = self._allocations.get(name, 0)
        if self.used - current + num_bytes > self.capacity:
            raise CapacityError(
                f"DRAM allocation {name!r} of {num_bytes} B exceeds capacity"
                f" ({self.used - current} B already used of {self.capacity} B)"
            )
        self._allocations[name] = num_bytes

    def free(self, name: str) -> None:
        self._allocations.pop(name, None)

    @property
    def used(self) -> int:
        return sum(self._allocations.values())

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def allocation(self, name: str) -> int:
        return self._allocations.get(name, 0)

    # --- timing -------------------------------------------------------------------
    def read(self, now: float, num_bytes: int) -> float:
        """Stream ``num_bytes`` out of DRAM; returns the completion time."""
        _start, end = self.port.acquire(now, transfer_time(num_bytes, self.bandwidth))
        self.bytes_read += num_bytes
        return end

    def write(self, now: float, num_bytes: int) -> float:
        """Stream ``num_bytes`` into DRAM; returns the completion time."""
        _start, end = self.port.acquire(now, transfer_time(num_bytes, self.bandwidth))
        self.bytes_written += num_bytes
        return end

    def access_time(self, num_bytes: int) -> float:
        """Pure transfer time for ``num_bytes`` (no port contention)."""
        return transfer_time(num_bytes, self.bandwidth)

    def reset_timing(self) -> None:
        self.port.reset()
        self.bytes_read = 0
        self.bytes_written = 0
