"""NVMe-style multi-queue host interface (the "MQ" in MQSim).

Modern SSDs expose multiple submission/completion queue pairs so host cores
issue I/O without locking; the controller arbitrates across them
(round-robin in the base NVMe spec, weighted round-robin with urgent class
as an option).  This module models that front end for SSD-mode traffic:

* :class:`QueuePair` — one SQ/CQ pair with bounded depth;
* :class:`NvmeFrontEnd` — arbitration + dispatch into the device's FTL and
  channel controllers, completion timestamps back into the CQs;
* fairness/latency statistics per queue, so tests can check that
  arbitration neither starves a queue nor reorders one queue's commands.

ECSSD's accelerator mode bypasses this path (the scheduler talks to the
FTL directly); it matters for the SSD-mode half of the device and for
host-I/O-vs-accelerator interference studies.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from ..errors import ProtocolError, SimulationError
from .device import SSDDevice


class IoKind(enum.Enum):
    """Host I/O command types."""

    READ = "read"
    WRITE = "write"


class Arbitration(enum.Enum):
    """NVMe queue arbitration policies."""

    ROUND_ROBIN = "round_robin"
    WEIGHTED = "weighted"


@dataclass(frozen=True)
class IoRequest:
    """One NVMe command: an LPA-addressed page read or write."""

    kind: IoKind
    logical_page: int
    queue_id: int
    command_id: int


@dataclass
class Completion:
    """CQ entry: when a command finished and how long it queued."""

    request: IoRequest
    submit_time: float
    complete_time: float

    @property
    def latency(self) -> float:
        return self.complete_time - self.submit_time


@dataclass
class QueuePair:
    """One submission/completion queue pair with bounded depth."""

    queue_id: int
    depth: int = 64
    weight: int = 1
    submissions: Deque = field(default_factory=deque)
    completions: List[Completion] = field(default_factory=list)
    _next_command_id: int = 0

    def submit(self, kind: IoKind, logical_page: int) -> IoRequest:
        if len(self.submissions) >= self.depth:
            raise ProtocolError(
                f"queue {self.queue_id} full (depth {self.depth})"
            )
        request = IoRequest(
            kind=kind,
            logical_page=logical_page,
            queue_id=self.queue_id,
            command_id=self._next_command_id,
        )
        self._next_command_id += 1
        self.submissions.append(request)
        return request

    @property
    def outstanding(self) -> int:
        return len(self.submissions)

    def mean_latency(self) -> float:
        if not self.completions:
            raise SimulationError(f"queue {self.queue_id} has no completions")
        return sum(c.latency for c in self.completions) / len(self.completions)


class NvmeFrontEnd:
    """Multi-queue front end over an :class:`SSDDevice`.

    ``process()`` drains the submission queues under the configured
    arbitration, dispatching each command through the device's SSD-mode
    path and posting a completion.  Commands from one queue execute in
    submission order (NVMe guarantees per-queue ordering only).
    """

    def __init__(
        self,
        device: Optional[SSDDevice] = None,
        num_queues: int = 4,
        queue_depth: int = 64,
        arbitration: Arbitration = Arbitration.ROUND_ROBIN,
        weights: Optional[Sequence[int]] = None,
        burst: int = 1,
    ) -> None:
        if num_queues <= 0:
            raise SimulationError("need at least one queue pair")
        if queue_depth <= 0:
            raise SimulationError("queue depth must be positive")
        if burst <= 0:
            raise SimulationError("arbitration burst must be positive")
        self.device = device or SSDDevice()
        self.arbitration = arbitration
        self.burst = burst
        if weights is None:
            weights = [1] * num_queues
        if len(weights) != num_queues or any(w <= 0 for w in weights):
            raise SimulationError("one positive weight per queue required")
        self.queues: Dict[int, QueuePair] = {
            qid: QueuePair(queue_id=qid, depth=queue_depth, weight=w)
            for qid, w in enumerate(weights)
        }
        self.dispatched = 0

    def queue(self, queue_id: int) -> QueuePair:
        try:
            return self.queues[queue_id]
        except KeyError:
            raise ProtocolError(f"no queue {queue_id}") from None

    def submit(self, queue_id: int, kind: IoKind, logical_page: int) -> IoRequest:
        return self.queue(queue_id).submit(kind, logical_page)

    # --- arbitration ---------------------------------------------------------------
    def _arbitration_order(self) -> List[int]:
        """Queue visit order for one full arbitration round."""
        order: List[int] = []
        for qid, queue in self.queues.items():
            slots = queue.weight if self.arbitration is Arbitration.WEIGHTED else 1
            order.extend([qid] * slots * self.burst)
        return order

    def process(self, max_commands: Optional[int] = None) -> List[Completion]:
        """Drain the SQs; returns completions in dispatch order."""
        completed: List[Completion] = []
        budget = max_commands if max_commands is not None else float("inf")
        progress = True
        while progress and len(completed) < budget:
            progress = False
            for qid in self._arbitration_order():
                if len(completed) >= budget:
                    break
                queue = self.queues[qid]
                if not queue.submissions:
                    continue
                request = queue.submissions.popleft()
                completed.append(self._dispatch(request))
                progress = True
        return completed

    def _dispatch(self, request: IoRequest) -> Completion:
        submit_time = self.device.clock
        if request.kind is IoKind.WRITE:
            finish = self.device.host_write([request.logical_page])
        else:
            finish = self.device.host_read([request.logical_page])
        self.dispatched += 1
        completion = Completion(
            request=request, submit_time=submit_time, complete_time=finish
        )
        self.queues[request.queue_id].completions.append(completion)
        return completion

    # --- statistics -----------------------------------------------------------------
    def fairness_index(self) -> float:
        """Jain's fairness index over per-queue completed command counts."""
        counts = [len(q.completions) for q in self.queues.values()]
        total = sum(counts)
        if total == 0:
            return 1.0
        square_sum = sum(c * c for c in counts)
        return total * total / (len(counts) * square_sum)
