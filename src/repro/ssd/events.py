"""A small discrete-event simulation (DES) engine.

The flash subsystem is modeled as resources (channel buses, dies) that are
busy for known durations.  The engine is deliberately minimal: a time-ordered
event queue, a simulator that drains it, and a :class:`Resource` that
serializes work.  Events are plain callbacks; there is no coroutine magic so
the control flow stays debuggable.

Determinism: events scheduled for the same timestamp fire in insertion order
(the queue breaks ties with a monotonically increasing sequence number), so a
simulation is reproducible run-to-run.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..lint.simsan import get_sanitizer

EventCallback = Callable[[], None]


class EventQueue:
    """Time-ordered queue of ``(time, seq, callback)`` events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventCallback]] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: EventCallback) -> None:
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule event at non-finite time {time}")
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def pop(self) -> Tuple[float, EventCallback]:
        time, _seq, callback = heapq.heappop(self._heap)
        return time, callback

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Drives an :class:`EventQueue` and owns the simulation clock."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self._events_processed = 0

    def schedule(self, delay: float, callback: EventCallback) -> None:
        """Run ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.queue.push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: EventCallback) -> None:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        self.queue.push(time, callback)

    def run(self, until: Optional[float] = None, max_events: int = 100_000_000) -> float:
        """Drain the queue; returns the final simulation time.

        ``until`` stops the clock at a given time even if events remain;
        ``max_events`` guards against runaway event loops.
        """
        sanitizer = get_sanitizer()
        while self.queue:
            next_time = self.queue.peek_time()
            assert next_time is not None
            if until is not None and next_time > until:
                self.now = until
                return self.now
            time, callback = self.queue.pop()
            if sanitizer.enabled:
                sanitizer.observe_pop("events", time)
            if time < self.now:
                raise SimulationError(f"time went backwards: {time} < {self.now}")
            self.now = time
            callback()
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely a loop")
        return self.now

    @property
    def events_processed(self) -> int:
        return self._events_processed


class Resource:
    """A serially-reusable resource (a bus, a die) with FIFO acquisition.

    ``acquire(duration)`` reserves the resource for ``duration`` seconds
    starting at the earliest time it is free, and returns the ``(start, end)``
    interval.  This reservation style (rather than callback-based handoff)
    keeps flash-command scheduling simple: callers compute their own timeline
    from the returned interval.
    """

    def __init__(self, name: str = "resource") -> None:
        self.name = name
        self.free_at = 0.0
        self.busy_time = 0.0
        self.acquisitions = 0

    def acquire(self, now: float, duration: float) -> Tuple[float, float]:
        """Reserve the resource for ``duration`` seconds at or after ``now``."""
        if duration < 0:
            raise SimulationError(f"negative duration {duration} on {self.name}")
        start = max(now, self.free_at)
        end = start + duration
        self.free_at = end
        self.busy_time += duration
        self.acquisitions += 1
        return start, end

    def block_until(self, time: float) -> None:
        """Make the resource unavailable before ``time`` (an outage window).

        Unlike :meth:`acquire`, the blocked interval accrues no busy time:
        the resource is *down*, not working.  A ``time`` in the past is a
        no-op, so repeated blocking with the same window is idempotent.
        """
        if not math.isfinite(time):
            raise SimulationError(f"cannot block {self.name} until non-finite {time}")
        if time > self.free_at:
            self.free_at = time

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` this resource spent busy (0 when idle)."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def reset(self) -> None:
        self.free_at = 0.0
        self.busy_time = 0.0
        self.acquisitions = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Resource({self.name!r}, free_at={self.free_at:.6g})"
