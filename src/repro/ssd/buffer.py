"""The SSD data buffer, operated in ping-pong mode.

ECSSD reuses the SSD's existing MB-level data buffer for the inserted
accelerator (§2.2, §4.5): while the accelerator consumes tile *t* from one
half, tile *t+1* streams into the other half, overlapping fill and drain.
:class:`PingPongBuffer` models the capacity constraint (a tile's working set
must fit one half) and the pipeline timing rule (a half cannot be refilled
before its consumer releases it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import CapacityError, SimulationError


class BufferOverflow(CapacityError):
    """A tile working set exceeded one ping-pong half."""


@dataclass
class _Half:
    index: int
    ready_at: float = 0.0  # fill finished
    released_at: float = 0.0  # consumer done, half reusable


class PingPongBuffer:
    """Two alternating buffer halves with fill/consume handshaking.

    Usage per tile::

        half = buffer.begin_fill(tile_bytes)   # checks capacity, picks half
        buffer.complete_fill(half, fill_end)   # data landed at `fill_end`
        buffer.release(half, consume_end)      # consumer finished

    ``begin_fill`` returns the half whose previous consumer released earliest;
    the caller must not start its fill before ``half.released_at``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError("buffer capacity must be positive")
        if capacity % 2 != 0:
            raise SimulationError("ping-pong buffer capacity must be even")
        self.capacity = capacity
        self.half_capacity = capacity // 2
        self._halves: List[_Half] = [_Half(0), _Half(1)]
        self._next = 0
        self.fills = 0
        self.max_fill_bytes = 0

    def begin_fill(self, num_bytes: int) -> _Half:
        """Claim the next half for a fill of ``num_bytes``."""
        if num_bytes < 0:
            raise CapacityError(f"negative fill size {num_bytes}")
        if num_bytes > self.half_capacity:
            raise BufferOverflow(
                f"tile of {num_bytes} B exceeds ping-pong half"
                f" ({self.half_capacity} B); shrink the tile"
            )
        half = self._halves[self._next]
        self._next = 1 - self._next
        self.fills += 1
        self.max_fill_bytes = max(self.max_fill_bytes, num_bytes)
        return half

    def complete_fill(self, half: _Half, fill_end: float) -> None:
        if fill_end < half.released_at:
            raise SimulationError(
                "fill completed before the half was released by its consumer"
            )
        half.ready_at = fill_end

    def release(self, half: _Half, consume_end: float) -> None:
        if consume_end < half.ready_at:
            raise SimulationError("consumer finished before the fill completed")
        half.released_at = consume_end

    def earliest_fill_start(self) -> float:
        """When the next ``begin_fill``'s target half becomes reusable."""
        return self._halves[self._next].released_at

    def fits_tile(self, num_bytes: int) -> bool:
        return 0 <= num_bytes <= self.half_capacity

    def reset(self) -> None:
        self._halves = [_Half(0), _Half(1)]
        self._next = 0
        self.fills = 0
        self.max_fill_bytes = 0
