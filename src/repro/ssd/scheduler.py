"""Channel command scheduling policies.

The base :class:`repro.ssd.controller.FlashController` issues commands in
FIFO order: each command's sense starts when its die frees up, and transfers
serialize on the bus in arrival order.  When a batch lands unevenly across a
channel's dies, FIFO leaves the bus idle while a hot die churns through
back-to-back senses.

:class:`DieAwareScheduler` reorders a batch before issue so that commands
rotate across dies (round-robin over per-die queues).  This keeps every
die's sense pipeline primed and is the scheduling discipline implied by the
paper's 1 GB/s-per-channel streaming assumption.  The ablation bench
(`benchmarks/test_ablations.py`) quantifies the gap between the two
policies — it is the measured component of the stream-interference penalty
documented in DESIGN.md §6.
"""

from __future__ import annotations

import enum
import logging
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List

from ..obs import get_registry
from .controller import BatchResult, FlashCommand, FlashController

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from .channel import Channel

logger = logging.getLogger(__name__)


class SchedulingPolicy(enum.Enum):
    """How a controller orders one batch of channel commands."""

    FIFO = "fifo"
    DIE_ROUND_ROBIN = "die_round_robin"


def reorder_round_robin(
    commands: List[FlashCommand], die_of: Dict[int, int]
) -> List[FlashCommand]:
    """Interleave commands round-robin across their target dies.

    ``die_of`` maps the command's position in ``commands`` to its die index.
    Relative order *within* one die is preserved (no read reordering across
    the same page register).
    """
    queues: Dict[int, List[FlashCommand]] = defaultdict(list)
    order: List[int] = []
    for index, command in enumerate(commands):
        die = die_of[index]
        if die not in queues:
            order.append(die)
        queues[die].append(command)
    for die in queues:
        if die not in order:  # pragma: no cover - defensive
            order.append(die)
    out: List[FlashCommand] = []
    cursors = {die: 0 for die in queues}
    remaining = len(commands)
    while remaining:
        for die in order:
            cursor = cursors[die]
            if cursor < len(queues[die]):
                out.append(queues[die][cursor])
                cursors[die] = cursor + 1
                remaining -= 1
    return out


class ScheduledController:
    """Wraps a :class:`FlashController` with a scheduling policy."""

    def __init__(
        self,
        controller: FlashController,
        policy: SchedulingPolicy = SchedulingPolicy.DIE_ROUND_ROBIN,
    ) -> None:
        self.controller = controller
        self.policy = policy

    def submit(self, now: float, commands: Iterable[FlashCommand]) -> BatchResult:
        batch = list(commands)
        if self.policy is SchedulingPolicy.DIE_ROUND_ROBIN and len(batch) > 1:
            die_of = {
                index: self.controller._local_die(command.address)
                for index, command in enumerate(batch)
            }
            batch = reorder_round_robin(batch, die_of)
        result = self.controller.submit(now, batch)
        registry = get_registry()
        if registry.enabled and batch:
            registry.counter(
                "flash_sched_batches_total", "scheduled channel batches, by policy"
            ).inc(policy=self.policy.value, channel=result.channel)
            registry.histogram(
                "flash_sched_batch_makespan_seconds",
                "per-batch channel makespan under the active policy",
            ).observe(result.makespan, policy=self.policy.value)
            logger.debug(
                "policy %s: %d commands on channel %d, makespan %.6fs",
                self.policy.value, len(batch), result.channel, result.makespan,
            )
        return result

    @property
    def channel(self) -> "Channel":
        return self.controller.channel


def compare_policies(
    make_controller: Callable[[], FlashController],
    commands: List[FlashCommand],
) -> Dict[str, float]:
    """Makespan of the same batch under each policy (fresh controllers).

    ``make_controller`` must build an independent :class:`FlashController`
    per call so the policies do not share die/bus state.
    """
    results: Dict[str, float] = {}
    for policy in SchedulingPolicy:
        controller = ScheduledController(make_controller(), policy=policy)
        results[policy.value] = controller.submit(0.0, commands).makespan
    return results
