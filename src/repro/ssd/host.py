"""Host interface: the PCIe link between the host and the SSD.

This is the *external* bandwidth the paper contrasts with the SSD's internal
channel-level bandwidth: PCIe 3.0 x4 at ~3.2 GB/s effective (Table 2).  The
link is full-duplex — host→device (inputs) and device→host (results) have
independent lanes — but each direction serializes its own transfers.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..units import transfer_time
from .events import Resource


class HostInterface:
    """Full-duplex PCIe-style host link with per-direction serialization."""

    def __init__(self, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise SimulationError("host bandwidth must be positive")
        self.bandwidth = bandwidth
        self.downstream = Resource(name="host.downstream")  # host -> SSD
        self.upstream = Resource(name="host.upstream")  # SSD -> host
        self.bytes_down = 0
        self.bytes_up = 0

    def send_to_device(self, now: float, num_bytes: int) -> float:
        """Host pushes ``num_bytes`` to the SSD; returns completion time."""
        _s, end = self.downstream.acquire(now, transfer_time(num_bytes, self.bandwidth))
        self.bytes_down += num_bytes
        return end

    def receive_from_device(self, now: float, num_bytes: int) -> float:
        """SSD pushes ``num_bytes`` to the host; returns completion time."""
        _s, end = self.upstream.acquire(now, transfer_time(num_bytes, self.bandwidth))
        self.bytes_up += num_bytes
        return end

    def transfer_time(self, num_bytes: int) -> float:
        """Pure link time for ``num_bytes`` (no queueing)."""
        return transfer_time(num_bytes, self.bandwidth)

    def reset_timing(self) -> None:
        self.downstream.reset()
        self.upstream.reset()
        self.bytes_down = 0
        self.bytes_up = 0
