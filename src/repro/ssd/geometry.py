"""Flash geometry: the channel/package/die/plane/block/page hierarchy.

Physical page addresses (PPA) identify a page by its position in the
hierarchy; logical page addresses (LPA) are flat integers the FTL maps onto
PPAs.  :class:`FlashGeometry` converts between flat page indices and
structured addresses and knows the fan-out at every level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..config import FlashConfig
from ..errors import AddressError


@dataclass(frozen=True, order=True)
class LogicalAddress:
    """A logical page address: a flat page number in the device's LPA space."""

    page: int

    def __post_init__(self) -> None:
        if self.page < 0:
            raise AddressError(f"negative logical page {self.page}")


@dataclass(frozen=True, order=True)
class PhysicalAddress:
    """A physical page address within the flash hierarchy."""

    channel: int
    package: int
    die: int
    plane: int
    block: int
    page: int

    def __post_init__(self) -> None:
        for name in ("channel", "package", "die", "plane", "block", "page"):
            if getattr(self, name) < 0:
                raise AddressError(f"negative {name} in {self!r}")


class FlashGeometry:
    """Address arithmetic over a :class:`FlashConfig` hierarchy.

    Flat physical indices are channel-major: channel, then package, die,
    plane, block, page.  This means that ``flat // pages_per_channel`` is the
    channel index, the property the FTL exploits to give each channel a
    contiguous physical index range.
    """

    def __init__(self, config: FlashConfig) -> None:
        self.config = config

    # --- fan-out shortcuts ---------------------------------------------------
    @property
    def channels(self) -> int:
        return self.config.channels

    @property
    def pages_per_channel(self) -> int:
        return self.config.pages_per_channel

    @property
    def total_pages(self) -> int:
        return self.config.total_pages

    @property
    def page_size(self) -> int:
        return self.config.page_size

    # --- flat <-> structured -------------------------------------------------
    def to_physical(self, flat: int) -> PhysicalAddress:
        """Convert a flat physical page index to a structured address."""
        if not (0 <= flat < self.total_pages):
            raise AddressError(f"flat page {flat} outside [0, {self.total_pages})")
        cfg = self.config
        channel, rest = divmod(flat, cfg.pages_per_channel)
        package, rest = divmod(rest, cfg.dies_per_package * cfg.pages_per_die)
        die, rest = divmod(rest, cfg.pages_per_die)
        plane, rest = divmod(rest, cfg.pages_per_plane)
        block, page = divmod(rest, cfg.pages_per_block)
        return PhysicalAddress(channel, package, die, plane, block, page)

    def to_flat(self, addr: PhysicalAddress) -> int:
        """Convert a structured physical address to a flat page index."""
        cfg = self.config
        self.check(addr)
        flat = addr.channel
        flat = flat * cfg.packages_per_channel + addr.package
        flat = flat * cfg.dies_per_package + addr.die
        flat = flat * cfg.planes_per_die + addr.plane
        flat = flat * cfg.blocks_per_plane + addr.block
        flat = flat * cfg.pages_per_block + addr.page
        return flat

    def check(self, addr: PhysicalAddress) -> None:
        """Validate every field of ``addr`` against this geometry's fan-out.

        Raises :class:`AddressError` naming the offending field.  Public so
        :class:`repro.ssd.controller.FlashCommand` can validate addresses at
        construction rather than first failing deep inside ``submit``.
        """
        cfg = self.config
        limits = (
            ("channel", addr.channel, cfg.channels),
            ("package", addr.package, cfg.packages_per_channel),
            ("die", addr.die, cfg.dies_per_package),
            ("plane", addr.plane, cfg.planes_per_die),
            ("block", addr.block, cfg.blocks_per_plane),
            ("page", addr.page, cfg.pages_per_block),
        )
        for name, value, limit in limits:
            if value >= limit:
                raise AddressError(f"{name}={value} exceeds fan-out {limit} in {addr!r}")

    # --- derived views --------------------------------------------------------
    def channel_of(self, flat: int) -> int:
        """Channel index of a flat physical page (cheap, no full decode)."""
        if not (0 <= flat < self.total_pages):
            raise AddressError(f"flat page {flat} outside [0, {self.total_pages})")
        return flat // self.config.pages_per_channel

    def die_index_of(self, flat: int) -> int:
        """Global die index (channel-major) of a flat physical page."""
        if not (0 <= flat < self.total_pages):
            raise AddressError(f"flat page {flat} outside [0, {self.total_pages})")
        return flat // self.config.pages_per_die

    def channel_page_range(self, channel: int) -> range:
        """The flat physical page index range owned by ``channel``."""
        if not (0 <= channel < self.channels):
            raise AddressError(f"channel {channel} outside [0, {self.channels})")
        start = channel * self.pages_per_channel
        return range(start, start + self.pages_per_channel)

    def iter_channels(self) -> Iterator[int]:
        return iter(range(self.channels))

    def pages_for_bytes(self, num_bytes: int) -> int:
        """Number of whole pages needed to hold ``num_bytes``."""
        if num_bytes < 0:
            raise AddressError(f"negative byte count {num_bytes}")
        return -(-num_bytes // self.page_size)
