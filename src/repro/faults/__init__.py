"""Deterministic fault-injection and reliability subsystem.

The simulator's substrate is an MQSim-class SSD, and real NAND is not
perfect: raw bit-error rate (RBER) grows with P/E cycling and retention,
controllers hide it behind a tiered ECC pipeline, and components fail
outright.  This package makes all of that injectable — and *replayable*:
every stochastic choice is drawn from seeded RNG streams at plan-build time
or from order-independent hashes at query time, so two runs with the same
:class:`FaultConfig` are bit-identical.

Layout:

* :mod:`repro.faults.model` — the RBER surface and the tiered ECC ladder
  (fast BCH-like → soft LDPC-like → read-retry → uncorrectable);
* :mod:`repro.faults.plan` — :class:`FaultConfig` knobs and the materialized
  :class:`FaultPlan` (offline windows, DRAM flips, command timeouts);
* :mod:`repro.faults.injector` — the process-global :class:`FaultInjector`
  call sites query (``get_injector``/``set_injector``, no-op by default so a
  disabled run is bit-identical to an uninstrumented build);
* :mod:`repro.faults.scrub` — background scrub/refresh migrating high-RBER
  blocks back through the FTL's wear-leveling heap;
* :mod:`repro.faults.harness` — fault-matrix sweeps behind the
  ``repro faults`` CLI subcommand (imported lazily: it pulls in the full
  pipeline stack).
"""

from __future__ import annotations

from .model import EccConfig, EccModel, EccOutcome, EccTier, RberModel
from .plan import (
    ClusterFaultConfig,
    ClusterFaultPlan,
    FaultConfig,
    FaultPlan,
    NodeCrashWindow,
    OfflineWindow,
    PartitionWindow,
    SlowNodeWindow,
    hash_uniform,
)
from .injector import (
    FAULT_TRACK,
    FaultInjector,
    NullFaultInjector,
    NULL_INJECTOR,
    get_injector,
    installed,
    set_injector,
)
from .scrub import ScrubConfig, ScrubPolicy, ScrubReport

__all__ = [
    "EccConfig",
    "EccModel",
    "EccOutcome",
    "EccTier",
    "RberModel",
    "FaultConfig",
    "FaultPlan",
    "OfflineWindow",
    "ClusterFaultConfig",
    "ClusterFaultPlan",
    "NodeCrashWindow",
    "PartitionWindow",
    "SlowNodeWindow",
    "hash_uniform",
    "FAULT_TRACK",
    "FaultInjector",
    "NullFaultInjector",
    "NULL_INJECTOR",
    "get_injector",
    "set_injector",
    "installed",
    "ScrubConfig",
    "ScrubPolicy",
    "ScrubReport",
]
