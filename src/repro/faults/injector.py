"""The process-global :class:`FaultInjector` the rest of the stack queries.

Mirrors the ``repro.obs`` zero-overhead pattern: instrumented call sites
fetch the injector via :func:`get_injector`, which defaults to the shared
:data:`NULL_INJECTOR` whose ``enabled`` flag is ``False`` — every guard is
one attribute test and no timing arithmetic changes, so a disabled run is
bit-identical to a build without the subsystem.

A live injector owns a :class:`~repro.faults.plan.FaultPlan` plus the
:class:`~repro.faults.model.RberModel`/:class:`~repro.faults.model.EccModel`
pair, and answers five questions for the stack:

* *controller*: is this channel stuck offline right now?  does this command
  time out?  what ECC latency does this page read pay, and is it readable
  at all?
* *core pipeline*: which labels are unreadable (weight pages the ladder
  cannot correct) or corrupted (DRAM flips in the 4-bit screener table)?
  what per-page latency surcharge does the analytic timing model owe?
* *serving*: how much fault pressure should the degradation ladder see?

Every answer is a deterministic function of (config, entity id, sim time):
no RNG state is consumed at query time, so replay never depends on the
interleaving of reads.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .. import obs
from ..errors import SimulationError
from ..obs.causal import get_collector
from ..obs.tracing import FAULT_TRACK
from .model import EccModel, EccOutcome, EccTier, RberModel
from .plan import FaultConfig, FaultPlan, hash_uniform

#: Salt for the per-page weak-page uniform (see ``plan.hash_uniform``).
_SALT_WEAK_PAGE = 11
#: Salt for the per-label unreadable-weight uniform.
_SALT_LABEL = 13


class FaultInjector:
    """Live fault source bound to one run (see module docstring)."""

    def __init__(
        self,
        config: FaultConfig,
        channels: int,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self.enabled = config.enabled
        self.config = config
        self.plan = plan or FaultPlan.build(config, channels)
        self.rber_model = RberModel(
            base=config.rber_base,
            scale=config.rber_scale,
            pe_ref=config.pe_ref,
            pe_exp=config.pe_exp,
            retention_ref=config.retention_ref,
        )
        self.ecc_model = EccModel(config.ecc)
        # The event-driven path binds real wear/age sources; the analytic
        # path falls back to the config-level operating point.
        self._wear_source: Optional[Callable[[object], int]] = None
        self._program_times: Dict[object, float] = {}
        self._command_ordinal = 0
        # Conservation ledger: every attempted read lands in exactly one
        # tier bucket (chaos tests assert attempted == sum of buckets).
        self.reads_attempted = 0
        self.tier_counts: Dict[str, int] = {tier.value: 0 for tier in EccTier}
        self.timeouts_injected = 0
        self.retries_performed = 0
        self.offline_stalls = 0
        self.labels_dropped = 0

    # --- wiring ------------------------------------------------------------
    def bind_wear_source(self, source: Callable[[object], int]) -> None:
        """Install the FTL's per-block erase-count lookup (event path)."""
        self._wear_source = source

    def on_program(self, address: object, now: float) -> None:
        """Record a page's program time so retention is measurable later."""
        self._program_times[address] = now

    # --- RBER / ECC --------------------------------------------------------
    def page_rber(self, now: float, address: Optional[object] = None) -> float:
        """RBER for one page: bound wear/retention if known, else config."""
        pe = float(self.config.mean_pe_cycles)
        retention = float(self.config.deployment_age)
        if address is not None:
            if self._wear_source is not None:
                pe = float(self._wear_source(address))
            programmed = self._program_times.get(address)
            if programmed is not None:
                retention = max(0.0, now - programmed)
        return self.rber_model.rber(pe, retention)

    def read_outcome(
        self,
        now: float,
        address: Optional[object] = None,
        page_id: int = 0,
    ) -> EccOutcome:
        """ECC outcome for one page read; updates the conservation ledger.

        The mean-RBER tier ladder decides latency; whether *this* page is in
        the uncorrectable lognormal tail is decided by the page's own
        order-independent hash uniform against
        :meth:`EccModel.uncorrectable_fraction` — so a higher RBER turns a
        superset of pages uncorrectable (nested drops, monotone accuracy).
        """
        rber = self.page_rber(now, address)
        outcome = self.ecc_model.outcome_for(rber)
        p_unc = self.ecc_model.uncorrectable_fraction(rber)
        if outcome.correctable and p_unc > 0.0:
            entity = page_id if address is None else hash(address)
            if hash_uniform(entity, self.config.seed, _SALT_WEAK_PAGE) < p_unc:
                outcome = EccOutcome(
                    EccTier.UNCORRECTABLE,
                    self.ecc_model.ladder_latency,
                    retries=self.config.ecc.max_retries,
                )
        self.reads_attempted += 1
        self.tier_counts[outcome.tier.value] += 1
        self.retries_performed += outcome.retries
        if outcome.tier is not EccTier.FAST:
            registry = obs.get_registry()
            if registry.enabled:
                registry.counter(
                    "fault_ecc_reads_total", "page reads by ECC tier"
                ).inc(tier=outcome.tier.value)
            collector = get_collector()
            if collector.enabled:
                collector.on_ecc(
                    outcome.tier.value, outcome.extra_latency, outcome.retries
                )
        return outcome

    def page_read_surcharge(self) -> float:
        """Mean ECC latency per page for the analytic timing model.

        The analytic pipeline prices whole fetch phases, not single pages,
        so it pays the *expected* ladder latency: the correctable tier's
        cost plus the uncorrectable tail's full-ladder cost, weighted.
        """
        rber = self.rber_model.rber(
            self.config.mean_pe_cycles, self.config.deployment_age
        )
        outcome = self.ecc_model.outcome_for(rber)
        p_unc = self.ecc_model.uncorrectable_fraction(rber)
        return (1.0 - p_unc) * outcome.extra_latency + p_unc * self.ecc_model.ladder_latency

    # --- component faults --------------------------------------------------
    def offline_release(self, channel: int, now: float) -> float:
        """When ``channel`` is next usable; records the stall if delayed."""
        release = self.plan.offline_release(channel, now)
        if release > now:
            self.offline_stalls += 1
            tracer = obs.get_tracer()
            if tracer.enabled:
                tracer.add_span(
                    f"offline/ch{channel}",
                    now,
                    release,
                    track=FAULT_TRACK,
                    attrs={"channel": channel},
                )
        return release

    def next_command_times_out(self) -> bool:
        """Consume one command ordinal and decide whether it times out.

        Ordinals advance once per *attempt* (the retry of a timed-out
        command draws a fresh ordinal), so a bounded retry budget converges
        for any ``timeout_rate`` < 1.
        """
        ordinal = self._command_ordinal
        self._command_ordinal += 1
        timed_out = self.plan.command_times_out(ordinal)
        if timed_out:
            self.timeouts_injected += 1
        return timed_out

    # --- pipeline-level corruption -----------------------------------------
    def unreadable_labels(self, num_labels: int) -> np.ndarray:
        """Labels whose FP32 weight pages the ECC ladder cannot recover.

        Per-label hash uniforms against the uncorrectable fraction give
        nested drop sets across an RBER sweep: scale up the RBER and every
        previously dropped label stays dropped.
        """
        if num_labels <= 0:
            return np.empty(0, dtype=np.int64)
        rber = self.rber_model.rber(
            self.config.mean_pe_cycles, self.config.deployment_age
        )
        p_unc = self.ecc_model.uncorrectable_fraction(rber)
        if p_unc <= 0.0:
            return np.empty(0, dtype=np.int64)
        labels = np.arange(num_labels, dtype=np.int64)
        mixed = (labels * 2654435761 + self.config.seed * 40503 + _SALT_LABEL * 69069) % (
            2 ** 32
        )
        dropped = labels[mixed / 2.0 ** 32 < p_unc]
        self.labels_dropped = int(dropped.size)
        return dropped

    def flipped_labels(self, num_labels: int) -> np.ndarray:
        """Labels corrupted by DRAM bit flips in the 4-bit screener table."""
        return self.plan.flipped_labels(num_labels)

    # --- serving -----------------------------------------------------------
    def fault_pressure(self, now: float) -> float:
        """Pressure in [0, 1] for the serving degradation ladder.

        Offline channels contribute the dominant term (a down channel is
        lost bandwidth *now*); the uncorrectable tail contributes a smooth
        RBER-driven floor so heavy wear degrades quality before it causes
        outages.
        """
        down = len(self.plan.offline_channels(now))
        channel_term = min(1.0, down / 2.0)
        rber = self.rber_model.rber(
            self.config.mean_pe_cycles, self.config.deployment_age
        )
        tail_term = min(1.0, 10.0 * self.ecc_model.uncorrectable_fraction(rber))
        return max(channel_term, tail_term)

    # --- reporting ---------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """JSON-safe conservation ledger for reports and chaos tests."""
        return {
            "reads_attempted": self.reads_attempted,
            "tier_counts": dict(sorted(self.tier_counts.items())),
            "retries_performed": self.retries_performed,
            "timeouts_injected": self.timeouts_injected,
            "offline_stalls": self.offline_stalls,
            "labels_dropped": self.labels_dropped,
            "plan": self.plan.to_dict(),
        }

    def check_conservation(self) -> None:
        """Every attempted read must land in exactly one tier bucket."""
        total = sum(self.tier_counts.values())
        if total != self.reads_attempted:
            raise SimulationError(
                f"fault ledger out of balance: {self.reads_attempted} reads "
                f"attempted but {total} accounted across tiers"
            )


class NullFaultInjector:
    """Zero-overhead stand-in installed while fault injection is off."""

    enabled = False

    def bind_wear_source(self, source: Callable[[object], int]) -> None:
        return None

    def on_program(self, address: object, now: float) -> None:
        return None

    def page_read_surcharge(self) -> float:
        return 0.0

    def offline_release(self, channel: int, now: float) -> float:
        return now

    def next_command_times_out(self) -> bool:
        return False

    def unreadable_labels(self, num_labels: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def flipped_labels(self, num_labels: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def fault_pressure(self, now: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, object]:
        return {"enabled": False}


NULL_INJECTOR = NullFaultInjector()

_injector = NULL_INJECTOR


def get_injector():
    """The process-global fault injector (a no-op until installed)."""
    return _injector


def set_injector(injector) -> None:
    """Install a live injector, or ``None`` to restore the no-op default."""
    global _injector
    _injector = injector if injector is not None else NULL_INJECTOR


class installed:
    """Context manager installing an injector and restoring the previous one.

    ::

        with installed(FaultInjector(config, channels=8)) as inj:
            device.run_inference(features)
        print(inj.summary())
    """

    def __init__(self, injector) -> None:
        self.injector = injector
        self._previous = None

    def __enter__(self):
        self._previous = get_injector()
        set_injector(self.injector)
        return self.injector

    def __exit__(self, exc_type, exc, tb) -> None:
        set_injector(self._previous)
        self._previous = None
