"""Background scrub/refresh policy migrating high-RBER blocks.

Retention errors accumulate in place: a page programmed long ago drifts up
the RBER surface until the ECC ladder can no longer bring it back.  Real
controllers run a background *scrub* that re-reads cold data and rewrites
(refreshes) blocks whose error rate approaches the ladder's capacity —
re-programming rewinds retention to zero and the erased block re-enters the
wear-leveling heap.

:class:`ScrubPolicy` is that loop, run at explicit sim-time points so it
stays deterministic: :meth:`scan_and_refresh` walks the FTL's refreshable
blocks in sorted order, prices each one's RBER from its erase count and the
injector's retention clock, and refreshes every block whose expected error
count exceeds ``refresh_margin`` of the ladder limit.  ``max_refreshes``
bounds one pass so scrub never starves foreground work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .. import obs
from ..errors import ConfigurationError
from ..ssd.geometry import PhysicalAddress
from .injector import FAULT_TRACK, FaultInjector


@dataclass(frozen=True)
class ScrubConfig:
    """Knobs for one scrub pass."""

    #: Refresh when expected errors exceed this fraction of the ladder limit.
    refresh_margin: float = 0.5
    #: Upper bound on blocks refreshed per pass (0 disables refreshing).
    max_refreshes: int = 64

    def __post_init__(self) -> None:
        if not (0.0 < self.refresh_margin <= 1.0):
            raise ConfigurationError("refresh_margin must be in (0, 1]")
        if self.max_refreshes < 0:
            raise ConfigurationError("max_refreshes cannot be negative")


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    scanned: int = 0
    refreshed: int = 0
    pages_migrated: int = 0
    skipped_budget: int = 0
    refreshed_blocks: List[Tuple[Tuple[int, int, int, int], int]] = field(
        default_factory=list
    )

    def to_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "refreshed": self.refreshed,
            "pages_migrated": self.pages_migrated,
            "skipped_budget": self.skipped_budget,
        }


class ScrubPolicy:
    """Deterministic scrub/refresh over an FTL, priced by the fault models."""

    def __init__(
        self,
        ftl,
        injector: FaultInjector,
        config: Optional[ScrubConfig] = None,
    ) -> None:
        self.ftl = ftl
        self.injector = injector
        self.config = config or ScrubConfig()

    def _block_rber(self, plane_key, block_index: int, now: float) -> float:
        """Worst-case RBER across a block's pages at ``now``.

        Wear is per-block (the erase counter); retention is per-page (the
        injector's program-time ledger), so the block's oldest page sets
        the refresh decision.
        """
        state = self.ftl._planes[plane_key]
        block = state.blocks[block_index]
        pe = float(block.erase_count)
        oldest = 0.0
        for page_index in range(block.pages_per_block):
            if not block.valid[page_index]:
                continue
            address = PhysicalAddress(
                plane_key[0], plane_key[1], plane_key[2], plane_key[3],
                block_index, page_index,
            )
            programmed = self.injector._program_times.get(address)
            if programmed is not None:
                oldest = max(oldest, now - programmed)
        retention = max(oldest, self.injector.config.deployment_age)
        return self.injector.rber_model.rber(pe, retention)

    def scan_and_refresh(self, now: float) -> ScrubReport:
        """One scrub pass at sim time ``now``; returns what it did."""
        report = ScrubReport()
        threshold = (
            self.config.refresh_margin * self.injector.ecc_model.ladder_limit_bits
        )
        for plane_key, block_index in self.ftl.iter_refreshable_blocks():
            report.scanned += 1
            rber = self._block_rber(plane_key, block_index, now)
            expected = self.injector.ecc_model.expected_errors(rber)
            if expected <= threshold:
                continue
            if report.refreshed >= self.config.max_refreshes:
                report.skipped_budget += 1
                continue
            migrated = self.ftl.refresh_block(plane_key, block_index)
            report.refreshed += 1
            report.pages_migrated += migrated
            report.refreshed_blocks.append((plane_key, block_index))
        registry = obs.get_registry()
        if registry.enabled and report.refreshed:
            registry.counter(
                "fault_scrub_refreshes_total", "blocks refreshed by scrub"
            ).inc(report.refreshed)
        tracer = obs.get_tracer()
        if tracer.enabled and report.refreshed:
            tracer.instant(
                "scrub", sim_time=now, track=FAULT_TRACK, attrs=report.to_dict()
            )
        return report
