"""Fault-matrix sweeps: every fault class crossed with an RBER ladder.

This is the chaos harness behind ``repro faults``: one clean functional run
establishes the reference predictions and latency, then every
(RBER scale x fault class) cell re-runs the same queries with a seeded
:class:`~repro.faults.plan.FaultPlan` installed and reports

* **accuracy** — top-k retention vs the clean run
  (:func:`repro.analysis.metrics.topk_retention`);
* **latency** — the analytic pipeline's per-batch time including the ECC
  surcharge, plus an event-driven SSD read storm's makespan (offline
  windows, timeout retries, and per-command ECC latency all land there);
* **conservation** — the injector's ledger must balance (every attempted
  read in exactly one ECC tier) and the ladder must be exercised without a
  hang or an unhandled exception.

Everything is a pure function of the seed, so two invocations produce
bit-identical JSON — the replayability contract the chaos tests pin.

Imported lazily (via the CLI / benchmarks), not from the package root: it
pulls in the whole pipeline stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import topk_retention
from ..config import ECSSDConfig
from ..core.ecssd import ECSSDevice
from ..errors import WorkloadError
from ..lint.simsan import get_sanitizer
from ..obs.digest import DigestRecorder
from ..units import us
from ..workloads.synthetic import make_workload
from .injector import FaultInjector, installed
from .model import EccConfig
from .plan import FaultConfig

#: The injectable fault classes a matrix sweep crosses with the RBER ladder.
FAULT_CLASSES: Tuple[str, ...] = ("rber", "offline", "dram", "timeout", "storm")

_TRAIN_QUERIES = 16
_HIDDEN_DIM = 256


def config_for_class(
    fault_class: str,
    rber_scale: float,
    seed: int,
    ecc: Optional[EccConfig] = None,
) -> FaultConfig:
    """The :class:`FaultConfig` for one matrix cell.

    ``rber`` is the pure wear/retention axis; the component-fault classes
    add their one fault kind on top of it; ``storm`` turns everything on at
    once (the worst-credible-day drill).  ``ecc`` overrides the default ECC
    ladder — the ablation engine sweeps it (full / no-retry / hard-only).
    """
    base: Dict[str, Any] = dict(
        seed=seed,
        rber_scale=rber_scale,
        mean_pe_cycles=3000.0,
        deployment_age=180.0 * 24.0 * 3600.0,
        offline_duration=us(400.0),
        horizon=0.05,
    )
    if ecc is not None:
        base["ecc"] = ecc
    if fault_class == "rber":
        return FaultConfig(**base)
    if fault_class == "offline":
        return FaultConfig(offline_windows=4, **base)
    if fault_class == "dram":
        return FaultConfig(dram_flips=8, **base)
    if fault_class == "timeout":
        return FaultConfig(timeout_rate=0.05, **base)
    if fault_class == "storm":
        return FaultConfig(
            offline_windows=4, dram_flips=8, timeout_rate=0.05, **base
        )
    raise WorkloadError(
        f"unknown fault class {fault_class!r}; expected one of {FAULT_CLASSES}"
    )


def _read_storm(injector: FaultInjector, pages: int) -> Dict[str, float]:
    """Event-driven leg: write then read ``pages`` pages under injection.

    Exercises the controller's offline stalls, bounded timeout retries, and
    per-command ECC latency on real per-channel queues; the FTL's erase
    ledger feeds the injector's wear axis through the device binding.
    """
    from ..ssd.device import SSDDevice

    device = SSDDevice(ECSSDConfig())
    channels = device.config.flash.channels
    per_channel = max(1, pages // channels)
    lpas: List[int] = []
    for channel in range(channels):
        base = device.ftl.channel_logical_range(channel).start
        lpas.extend(base + i for i in range(per_channel))
    write_done = device.host_write(lpas)
    read_done = device.host_read(lpas)
    # Re-fetch through the accelerator path for a per-channel makespan; the
    # injector's ledger (tiers, stalls, retries) captures per-read outcomes.
    addresses = [device.ftl.lookup(lpa) for lpa in lpas]
    fetch = device.fetch_pages(addresses, start=read_done)
    return {
        "pages": float(len(lpas)),
        "write_makespan_s": float(write_done),
        "read_makespan_s": float(read_done - write_done),
        "fetch_makespan_s": float(fetch.makespan),
        "mean_read_latency_s": float(
            (read_done - write_done) / max(1, len(lpas))
        ),
        "failed_reads": float(injector.tier_counts["uncorrectable"]),
    }


@dataclass
class FaultMatrixReport:
    """All cells of one fault-matrix sweep, JSON-ready."""

    seed: int
    num_labels: int
    queries: int
    top_k: int
    rber_scales: List[float]
    fault_classes: List[str]
    clean_latency_s: float
    cells: Dict[str, Dict[str, Dict[str, object]]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "num_labels": self.num_labels,
            "queries": self.queries,
            "top_k": self.top_k,
            "rber_scales": list(self.rber_scales),
            "fault_classes": list(self.fault_classes),
            "clean_latency_s": self.clean_latency_s,
            "cells": self.cells,
        }

    def cell(self, fault_class: str, rber_scale: float) -> Dict[str, object]:
        return self.cells[fault_class][f"{rber_scale:g}"]


def run_fault_matrix(
    num_labels: int = 2048,
    num_queries: int = 16,
    seed: int = 0,
    rber_scales: Sequence[float] = (1.0, 5.0, 10.0),
    fault_classes: Sequence[str] = FAULT_CLASSES,
    top_k: int = 5,
    storm_pages: int = 64,
    config: Optional[ECSSDConfig] = None,
    ecc: Optional[EccConfig] = None,
    digest_recorder: Optional[DigestRecorder] = None,
) -> FaultMatrixReport:
    """Run the full fault matrix; see the module docstring for the cells."""
    if num_queries < 1:
        raise WorkloadError("num_queries must be >= 1")
    for fault_class in fault_classes:
        if fault_class not in FAULT_CLASSES:
            raise WorkloadError(
                f"unknown fault class {fault_class!r}; "
                f"expected one of {FAULT_CLASSES}"
            )
    config = config or ECSSDConfig()
    channels = config.flash.channels
    workload = make_workload(
        num_labels=num_labels,
        hidden_dim=_HIDDEN_DIM,
        num_queries=num_queries + _TRAIN_QUERIES,
        seed=seed,
    )
    queries = workload.features[_TRAIN_QUERIES:]

    def fresh_device() -> ECSSDevice:
        device = ECSSDevice(config)
        device.deploy_model(
            workload.weights,
            train_features=workload.features[:_TRAIN_QUERIES],
            seed=seed,
        )
        return device

    clean_stats, clean_report = fresh_device().run_inference(queries, top_k=top_k)
    clean_labels = clean_stats.result.top_labels

    report = FaultMatrixReport(
        seed=seed,
        num_labels=num_labels,
        queries=int(queries.shape[0]),
        top_k=top_k,
        rber_scales=[float(s) for s in rber_scales],
        fault_classes=list(fault_classes),
        clean_latency_s=float(clean_report.scaled_total_time),
    )
    for fault_class in fault_classes:
        column: Dict[str, Dict[str, object]] = {}
        for scale in rber_scales:
            fault_config = config_for_class(
                fault_class, float(scale), seed, ecc=ecc
            )
            injector = FaultInjector(fault_config, channels=channels)
            with installed(injector):
                stats, perf = fresh_device().run_inference(queries, top_k=top_k)
                storm = _read_storm(injector, storm_pages)
            injector.check_conservation()
            sanitizer = get_sanitizer()
            if sanitizer.enabled:
                sanitizer.check_time(
                    f"faults.{fault_class}@{float(scale):g}.latency_s",
                    float(perf.scaled_total_time),
                )
            retention = topk_retention(clean_labels, stats.result.top_labels)
            if digest_recorder is not None:
                # One checkpoint per matrix cell (capture, not tick: every
                # cell is a meaningful state, and sweeps are short).
                digest_recorder.capture(
                    float(perf.scaled_total_time),
                    fault_class=fault_class,
                    rber_scale=f"{float(scale):g}",
                    retention=float(retention),
                    failed_reads=int(storm["failed_reads"]),
                    uncorrectable=int(injector.tier_counts["uncorrectable"]),
                )
            column[f"{float(scale):g}"] = {
                "retention": retention,
                "accuracy_cost": 1.0 - retention,
                "latency_s": float(perf.scaled_total_time),
                "latency_vs_clean": float(
                    perf.scaled_total_time / report.clean_latency_s
                ),
                "storm": storm,
                "injector": injector.summary(),
            }
        report.cells[fault_class] = column
    return report
