"""Fault configuration and the seeded, replayable :class:`FaultPlan`.

A :class:`FaultConfig` names every knob of the reliability subsystem — the
RBER surface, the ECC ladder, and the injectable component-fault classes —
and :meth:`FaultConfig.disabled` is the zero-overhead default the rest of
the stack sees when no faults are requested.

A :class:`FaultPlan` is the *materialized* schedule of component faults for
one run: channel stuck-offline windows, DRAM bit flips in the 4-bit
screener table, and command timeouts.  Everything stochastic is drawn once,
at plan-build time, from ``np.random.default_rng((seed, salt))`` streams
(the repo's seeded-RNG idiom), so two plans built from the same config are
bit-identical and a run can be replayed exactly.  Per-event decisions that
must not depend on call order (weak-page selection, timeout ordinals) use a
Knuth multiplicative hash of the entity id instead of RNG state, which
keeps them stable under any interleaving of reads.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..units import us
from .model import EccConfig

# Knuth's multiplicative hash constant (2^32 / golden ratio) — a *hash*,
# not an RNG: per-entity uniforms derived from it are independent of call
# order, which makes weak-page and timeout selections replay-stable.
_HASH_MULTIPLIER = 2654435761
_HASH_MODULUS = 2 ** 32

# Salt values for the independent seeded RNG sub-streams of one plan.
_SALT_OFFLINE = 1
_SALT_DRAM = 2
# (salt 3 is reserved by FaultPlan.command_times_out's hash stream)
_SALT_NODE_CRASH = 4
_SALT_PARTITION = 5
_SALT_SLOW_NODE = 6


def hash_uniform(entity: int, seed: int, salt: int = 0) -> float:
    """Deterministic uniform in [0, 1) for an entity id (order-independent)."""
    mixed = (entity * _HASH_MULTIPLIER + seed * 40503 + salt * 69069) % _HASH_MODULUS
    return mixed / _HASH_MODULUS


@dataclass(frozen=True)
class FaultConfig:
    """Every knob of the fault-injection and reliability subsystem.

    ``enabled=False`` (via :meth:`disabled`) turns the whole subsystem into
    a no-op: no call site pays any cost and all timings are bit-identical
    to a build without the subsystem.  ``rber_scale`` is the sweep axis the
    fault matrix and the reliability bench walk; ``mean_pe_cycles`` and
    ``deployment_age`` set the wear/retention operating point the analytic
    pipeline assumes (the event-driven path reads real per-block wear from
    the FTL instead).
    """

    enabled: bool = True
    seed: int = 0
    # --- RBER surface ------------------------------------------------------
    rber_base: float = 1e-4
    rber_scale: float = 1.0
    pe_ref: float = 3000.0
    pe_exp: float = 2.0
    retention_ref: float = 90.0 * 24.0 * 3600.0
    mean_pe_cycles: float = 0.0
    deployment_age: float = 0.0
    # --- ECC ladder --------------------------------------------------------
    ecc: EccConfig = field(default_factory=EccConfig)
    # --- component faults --------------------------------------------------
    offline_windows: int = 0  # channel stuck-offline windows over the horizon
    offline_duration: float = 2e-3  # seconds per window
    dram_flips: int = 0  # bit flips in the 4-bit screener table
    timeout_rate: float = 0.0  # fraction of flash commands that time out once
    # --- controller resilience policy -------------------------------------
    max_command_retries: int = 3
    retry_backoff: float = us(100.0)
    timeout_penalty: float = us(500.0)
    # --- plan horizon ------------------------------------------------------
    horizon: float = 1.0  # simulated seconds the component-fault plan covers

    def __post_init__(self) -> None:
        if self.rber_base <= 0 or self.rber_scale < 0:
            raise ConfigurationError("rber_base must be positive, rber_scale >= 0")
        if self.pe_ref <= 0 or self.retention_ref <= 0:
            raise ConfigurationError("pe_ref/retention_ref must be positive")
        if self.mean_pe_cycles < 0 or self.deployment_age < 0:
            raise ConfigurationError("wear/retention operating point cannot be negative")
        if self.offline_windows < 0 or self.dram_flips < 0:
            raise ConfigurationError("fault counts cannot be negative")
        if self.offline_duration < 0:
            raise ConfigurationError("offline_duration cannot be negative")
        if not (0.0 <= self.timeout_rate < 1.0):
            raise ConfigurationError("timeout_rate must be in [0, 1)")
        if self.max_command_retries < 0:
            raise ConfigurationError("max_command_retries cannot be negative")
        if self.retry_backoff < 0 or self.timeout_penalty < 0:
            raise ConfigurationError("retry timing cannot be negative")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")

    @classmethod
    def disabled(cls) -> "FaultConfig":
        """The zero-overhead default: the subsystem is completely inert."""
        return cls(enabled=False)

    def with_rber_scale(self, scale: float) -> "FaultConfig":
        """A copy at a different point on the RBER sweep axis."""
        return replace(self, rber_scale=scale)


@dataclass(frozen=True)
class OfflineWindow:
    """One component-fault window during which a channel is stuck offline."""

    channel: int
    start: float
    end: float

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


class FaultPlan:
    """The materialized, replayable fault schedule for one run."""

    def __init__(
        self,
        config: FaultConfig,
        windows: List[OfflineWindow],
        dram_flip_fractions: np.ndarray,
    ) -> None:
        self.config = config
        self.windows: List[OfflineWindow] = sorted(
            windows, key=lambda w: (w.channel, w.start)
        )
        self.dram_flip_fractions = np.sort(
            np.asarray(dram_flip_fractions, dtype=np.float64)
        )
        # Per-channel sorted window lists for O(log n) release queries.
        self._per_channel: dict = {}
        for window in self.windows:
            self._per_channel.setdefault(window.channel, []).append(window)
        self._starts = {
            channel: [w.start for w in ws]
            for channel, ws in sorted(self._per_channel.items())
        }

    @classmethod
    def build(cls, config: FaultConfig, channels: int) -> "FaultPlan":
        """Materialize the component-fault schedule from the seeded RNG."""
        if channels <= 0:
            raise ConfigurationError("channels must be positive")
        windows: List[OfflineWindow] = []
        if config.offline_windows > 0:
            rng = np.random.default_rng((config.seed, _SALT_OFFLINE))
            chans = rng.integers(0, channels, size=config.offline_windows)
            starts = rng.uniform(0.0, config.horizon, size=config.offline_windows)
            for channel, start in zip(chans.tolist(), starts.tolist()):
                windows.append(
                    OfflineWindow(
                        channel=int(channel),
                        start=float(start),
                        end=float(start) + config.offline_duration,
                    )
                )
        if config.dram_flips > 0:
            rng = np.random.default_rng((config.seed, _SALT_DRAM))
            fractions = rng.uniform(0.0, 1.0, size=config.dram_flips)
        else:
            fractions = np.empty(0, dtype=np.float64)
        return cls(config, windows, fractions)

    # --- channel offline windows ------------------------------------------
    def offline_release(self, channel: int, time: float) -> float:
        """When ``channel`` is next usable at or after ``time``.

        Returns ``time`` itself when no window covers it; otherwise the end
        of the covering window (windows never extend each other: a command
        released at a window's end re-checks against later windows only).
        """
        windows = self._per_channel.get(channel)
        if not windows:
            return time
        starts = self._starts[channel]
        release = time
        index = bisect.bisect_right(starts, release) - 1
        while index >= 0 and index < len(windows):
            window = windows[index]
            if window.covers(release):
                release = window.end
                index = bisect.bisect_right(starts, release) - 1
            else:
                break
        return release

    def offline_channels(self, time: float) -> List[int]:
        """Channels stuck offline at ``time`` (sorted)."""
        down = {w.channel for w in self.windows if w.covers(time)}
        return sorted(down)

    # --- DRAM bit flips ----------------------------------------------------
    def flipped_labels(self, num_labels: int) -> np.ndarray:
        """Labels whose 4-bit screener row a DRAM flip corrupted (sorted)."""
        if num_labels <= 0 or self.dram_flip_fractions.size == 0:
            return np.empty(0, dtype=np.int64)
        labels = np.minimum(
            (self.dram_flip_fractions * num_labels).astype(np.int64),
            num_labels - 1,
        )
        return np.unique(labels)

    # --- command timeouts --------------------------------------------------
    def command_times_out(self, ordinal: int) -> bool:
        """Whether flash command ``ordinal`` suffers a (transient) timeout."""
        rate = self.config.timeout_rate
        if rate <= 0.0:
            return False
        return hash_uniform(ordinal, self.config.seed, salt=3) < rate

    def to_dict(self) -> dict:
        """JSON-safe summary (sorted, no wall-clock content)."""
        return {
            "offline_windows": [
                {"channel": w.channel, "start": w.start, "end": w.end}
                for w in self.windows
            ],
            "dram_flips": int(self.dram_flip_fractions.size),
            "timeout_rate": self.config.timeout_rate,
            "seed": self.config.seed,
        }


# ---------------------------------------------------------------------------
# Cluster-level (node/interconnect) fault classes
# ---------------------------------------------------------------------------

# State-change edge kinds emitted by :meth:`ClusterFaultPlan.edges`, in
# tie-break order at equal timestamps: a node must come *up* before a
# same-instant crash elsewhere is processed, so recovery never races a
# re-dispatch decision made in the same event-loop pop.
EDGE_NODE_UP = 0
EDGE_NODE_DOWN = 1
EDGE_PARTITION_HEAL = 2
EDGE_PARTITION_START = 3
EDGE_SLOW_END = 4
EDGE_SLOW_START = 5


@dataclass(frozen=True)
class ClusterFaultConfig:
    """Knobs for the fleet-level fault classes the cluster simulator injects.

    Counts say *how many* windows of each class the plan materializes over
    ``horizon`` simulated seconds; durations and the slow-node ``slow_factor``
    say how bad each window is.  :meth:`disabled` is the inert default; the
    ``repro cluster`` CLI builds one from a ``--fault-plan`` spec string via
    :meth:`from_spec`.
    """

    enabled: bool = True
    seed: int = 0
    node_crashes: int = 0
    crash_duration: float = 0.5
    partitions: int = 0
    partition_duration: float = 0.25
    slow_nodes: int = 0
    slow_duration: float = 1.0
    slow_factor: float = 3.0
    horizon: float = 10.0

    def __post_init__(self) -> None:
        if self.node_crashes < 0 or self.partitions < 0 or self.slow_nodes < 0:
            raise ConfigurationError("cluster fault counts cannot be negative")
        if self.crash_duration < 0 or self.partition_duration < 0:
            raise ConfigurationError("cluster fault durations cannot be negative")
        if self.slow_duration < 0:
            raise ConfigurationError("slow_duration cannot be negative")
        if self.slow_factor < 1.0:
            raise ConfigurationError("slow_factor must be >= 1 (1 = no brownout)")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")

    @classmethod
    def disabled(cls) -> "ClusterFaultConfig":
        """The zero-overhead default: no cluster faults are materialized."""
        return cls(enabled=False)

    @classmethod
    def from_spec(
        cls, spec: str, seed: int, horizon: float
    ) -> "ClusterFaultConfig":
        """Parse a ``node-crash=2,partition=1,slow-node=2`` CLI spec string."""
        counts = {"node-crash": 0, "partition": 0, "slow-node": 0}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"bad fault-plan entry {part!r}: expected class=count"
                )
            name, _, raw = part.partition("=")
            name = name.strip()
            if name not in counts:
                raise ConfigurationError(
                    f"unknown cluster fault class {name!r}; "
                    f"expected one of {sorted(counts)}"
                )
            try:
                counts[name] = int(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad count for fault class {name!r}: {raw!r}"
                ) from exc
        return cls(
            seed=seed,
            horizon=horizon,
            node_crashes=counts["node-crash"],
            partitions=counts["partition"],
            slow_nodes=counts["slow-node"],
        )


@dataclass(frozen=True)
class NodeCrashWindow:
    """One window during which a data node is down (crash-stop, then reboot)."""

    node: int
    start: float
    end: float

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class PartitionWindow:
    """One window during which two racks cannot reach each other.

    ``rack_a < rack_b`` always; nodes inside the same rack stay connected,
    and racks outside the pair are unaffected (single-link failure model).
    """

    rack_a: int
    rack_b: int
    start: float
    end: float

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end

    def severs(self, rack_x: int, rack_y: int) -> bool:
        """Whether this window cuts the ``rack_x`` <-> ``rack_y`` link."""
        lo, hi = (rack_x, rack_y) if rack_x <= rack_y else (rack_y, rack_x)
        return (lo, hi) == (self.rack_a, self.rack_b)


@dataclass(frozen=True)
class SlowNodeWindow:
    """One brownout window multiplying a data node's service time."""

    node: int
    start: float
    end: float
    factor: float

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


class ClusterFaultPlan:
    """The materialized, replayable fleet-level fault schedule for one run.

    Built once from seeded ``default_rng((seed, salt))`` streams (one salt
    per fault class), so two plans from the same config are bit-identical
    and a cluster run — including its failover timeline — replays exactly.
    """

    def __init__(
        self,
        config: ClusterFaultConfig,
        crashes: List[NodeCrashWindow],
        partitions: List[PartitionWindow],
        slow_windows: List[SlowNodeWindow],
    ) -> None:
        self.config = config
        self.crashes = sorted(crashes, key=lambda w: (w.start, w.node))
        self.partitions = sorted(
            partitions, key=lambda w: (w.start, w.rack_a, w.rack_b)
        )
        self.slow_windows = sorted(slow_windows, key=lambda w: (w.start, w.node))

    @classmethod
    def build(
        cls, config: ClusterFaultConfig, nodes: int, racks: int
    ) -> "ClusterFaultPlan":
        """Materialize the fleet fault schedule from the seeded RNG streams."""
        if nodes <= 0 or racks <= 0:
            raise ConfigurationError("nodes and racks must be positive")
        if not config.enabled:
            return cls(config, [], [], [])
        crashes: List[NodeCrashWindow] = []
        if config.node_crashes > 0:
            rng = np.random.default_rng((config.seed, _SALT_NODE_CRASH))
            victims = rng.integers(0, nodes, size=config.node_crashes)
            starts = rng.uniform(0.0, config.horizon, size=config.node_crashes)
            for node, start in zip(victims.tolist(), starts.tolist()):
                crashes.append(
                    NodeCrashWindow(
                        node=int(node),
                        start=float(start),
                        end=float(start) + config.crash_duration,
                    )
                )
        partitions: List[PartitionWindow] = []
        if config.partitions > 0:
            if racks < 2:
                raise ConfigurationError(
                    "interconnect partitions need at least 2 racks"
                )
            rng = np.random.default_rng((config.seed, _SALT_PARTITION))
            first = rng.integers(0, racks, size=config.partitions)
            second = rng.integers(0, racks - 1, size=config.partitions)
            starts = rng.uniform(0.0, config.horizon, size=config.partitions)
            for a, b, start in zip(
                first.tolist(), second.tolist(), starts.tolist()
            ):
                other = int(b) + (1 if int(b) >= int(a) else 0)
                lo, hi = sorted((int(a), other))
                partitions.append(
                    PartitionWindow(
                        rack_a=lo,
                        rack_b=hi,
                        start=float(start),
                        end=float(start) + config.partition_duration,
                    )
                )
        slow_windows: List[SlowNodeWindow] = []
        if config.slow_nodes > 0:
            rng = np.random.default_rng((config.seed, _SALT_SLOW_NODE))
            victims = rng.integers(0, nodes, size=config.slow_nodes)
            starts = rng.uniform(0.0, config.horizon, size=config.slow_nodes)
            for node, start in zip(victims.tolist(), starts.tolist()):
                slow_windows.append(
                    SlowNodeWindow(
                        node=int(node),
                        start=float(start),
                        end=float(start) + config.slow_duration,
                        factor=config.slow_factor,
                    )
                )
        return cls(config, crashes, partitions, slow_windows)

    # --- point-in-time queries ---------------------------------------------
    def node_alive(self, node: int, time: float) -> bool:
        """Whether data node ``node`` is up at ``time``."""
        return not any(w.node == node and w.covers(time) for w in self.crashes)

    def slowdown(self, node: int, time: float) -> float:
        """Brownout multiplier (>= 1) on ``node``'s service time at ``time``."""
        factor = 1.0
        for window in self.slow_windows:
            if window.node == node and window.covers(time):
                factor = max(factor, window.factor)
        return factor

    def reachable(self, rack_x: int, rack_y: int, time: float) -> bool:
        """Whether racks ``rack_x`` and ``rack_y`` can talk at ``time``."""
        if rack_x == rack_y:
            return True
        return not any(
            w.severs(rack_x, rack_y) and w.covers(time) for w in self.partitions
        )

    # --- event-loop integration --------------------------------------------
    def edges(self) -> List[tuple]:
        """All state-change edges as sorted ``(time, kind, payload)`` tuples.

        Kinds are the ``EDGE_*`` constants; ties at one timestamp resolve
        recovery-before-failure (up < down, heal < start) so a same-instant
        crash never observes a stale down state.  Payloads are ints (node)
        or ``(rack_a, rack_b)`` / ``(node, factor)`` tuples.
        """
        edges: List[tuple] = []
        for crash in self.crashes:
            edges.append((crash.start, EDGE_NODE_DOWN, crash.node))
            edges.append((crash.end, EDGE_NODE_UP, crash.node))
        for part in self.partitions:
            edges.append((part.start, EDGE_PARTITION_START, (part.rack_a, part.rack_b)))
            edges.append((part.end, EDGE_PARTITION_HEAL, (part.rack_a, part.rack_b)))
        for slow in self.slow_windows:
            edges.append((slow.start, EDGE_SLOW_START, (slow.node, slow.factor)))
            edges.append((slow.end, EDGE_SLOW_END, (slow.node, slow.factor)))
        return sorted(edges, key=lambda e: (e[0], e[1], repr(e[2])))

    def to_dict(self) -> dict:
        """JSON-safe summary (sorted, no wall-clock content)."""
        return {
            "node_crashes": [
                {"node": w.node, "start": w.start, "end": w.end}
                for w in self.crashes
            ],
            "partitions": [
                {
                    "rack_a": w.rack_a,
                    "rack_b": w.rack_b,
                    "start": w.start,
                    "end": w.end,
                }
                for w in self.partitions
            ],
            "slow_nodes": [
                {
                    "node": w.node,
                    "start": w.start,
                    "end": w.end,
                    "factor": w.factor,
                }
                for w in self.slow_windows
            ],
            "seed": self.config.seed,
        }
