"""Reliability models: raw bit-error rate and the tiered ECC pipeline.

NAND raw bit-error rate (RBER) is not a constant: it grows with program/
erase cycling (oxide wear) and with retention time (charge leakage), the two
axes every MQSim-class reliability study sweeps.  :class:`RberModel` is that
two-axis surface, deliberately simple and monotone:

    rber(pe, retention) = base * scale
                          * (1 + (pe / pe_ref) ** pe_exp)
                          * (1 + retention / retention_ref)

On top of the raw errors sits the controller's correction pipeline,
modeled by :class:`EccModel` as the industry-standard tier ladder:

1. **fast tier** — BCH-like hard-decision decode, corrects up to
   ``fast_limit_bits`` per codeword at (near) zero added latency;
2. **soft tier** — LDPC-like soft-decision decode, corrects up to
   ``soft_limit_bits`` but costs ``soft_latency`` per page;
3. **read-retry ladder** — each retry re-senses the page at a shifted
   reference voltage (costing ``retry_latency`` and occupying the die),
   shrinking the effective error count by ``retry_gain`` per step;
4. **uncorrectable** — the ladder is exhausted; the read fails and the
   caller must drop or reconstruct the data.

Tier selection is a *deterministic* function of the page's expected error
count, which is what makes fault sweeps monotone: a higher RBER can only
move a read to a slower tier, never a faster one.  Page-to-page RBER
variability (the reason uncorrectable reads exist long before the mean
error count reaches the ladder's capacity) is modeled as a lognormal
weak-page population in :meth:`EccModel.uncorrectable_fraction`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..units import us


class EccTier(enum.Enum):
    """Which stage of the correction ladder resolved (or failed) a read."""

    FAST = "fast"  # BCH-like hard-decision decode
    SOFT = "soft"  # LDPC-like soft-decision decode
    RETRY = "retry"  # read-retry ladder + soft decode
    UNCORRECTABLE = "uncorrectable"


@dataclass(frozen=True)
class EccOutcome:
    """The correction result for one page read."""

    tier: EccTier
    extra_latency: float  # seconds added on top of the nominal read
    retries: int = 0

    @property
    def correctable(self) -> bool:
        return self.tier is not EccTier.UNCORRECTABLE


@dataclass(frozen=True)
class EccConfig:
    """Shape of the correction ladder (one 4 KiB page = one codeword)."""

    codeword_bits: int = 32768
    fast_limit_bits: int = 16
    soft_limit_bits: int = 72
    fast_latency: float = 0.0
    soft_latency: float = us(60.0)
    retry_latency: float = us(35.0)
    retry_gain: float = 0.55
    max_retries: int = 4
    #: Lognormal sigma of the page-to-page RBER spread (weak-page model).
    page_sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.codeword_bits <= 0:
            raise ConfigurationError("codeword_bits must be positive")
        if not (0 < self.fast_limit_bits <= self.soft_limit_bits):
            raise ConfigurationError(
                "limits must satisfy 0 < fast_limit_bits <= soft_limit_bits"
            )
        for name in ("fast_latency", "soft_latency", "retry_latency"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"EccConfig.{name} cannot be negative")
        if not (0.0 < self.retry_gain < 1.0):
            raise ConfigurationError("retry_gain must be in (0, 1)")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if self.page_sigma <= 0:
            raise ConfigurationError("page_sigma must be positive")


@dataclass(frozen=True)
class RberModel:
    """Monotone RBER surface over P/E cycling and retention time."""

    base: float = 1e-4
    scale: float = 1.0
    pe_ref: float = 3000.0
    pe_exp: float = 2.0
    retention_ref: float = 90.0 * 24.0 * 3600.0  # ~one quarter, in seconds

    def __post_init__(self) -> None:
        if self.base <= 0 or self.scale < 0:
            raise ConfigurationError("RBER base must be positive, scale >= 0")
        if self.pe_ref <= 0 or self.retention_ref <= 0:
            raise ConfigurationError("RBER reference points must be positive")
        if self.pe_exp < 1.0:
            raise ConfigurationError("pe_exp must be >= 1 (wear accelerates)")

    def rber(self, pe_cycles: float, retention: float) -> float:
        """Raw bit-error rate for a page at the given wear and age."""
        pe = max(0.0, pe_cycles)
        age = max(0.0, retention)
        wear = 1.0 + (pe / self.pe_ref) ** self.pe_exp
        drift = 1.0 + age / self.retention_ref
        return self.base * self.scale * wear * drift


class EccModel:
    """Deterministic tier selection and latency pricing for page reads."""

    def __init__(self, config: Optional[EccConfig] = None) -> None:
        self.config = config or EccConfig()

    def expected_errors(self, rber: float) -> float:
        """Mean raw bit errors per codeword at the given RBER."""
        return max(0.0, rber) * self.config.codeword_bits

    def outcome_for(self, rber: float) -> EccOutcome:
        """Correction outcome for a page whose mean error count is rber*N.

        Monotone by construction: a larger ``rber`` never yields a faster
        tier or a smaller ``extra_latency``.
        """
        cfg = self.config
        errors = self.expected_errors(rber)
        if errors <= cfg.fast_limit_bits:
            return EccOutcome(EccTier.FAST, cfg.fast_latency)
        if errors <= cfg.soft_limit_bits:
            return EccOutcome(EccTier.SOFT, cfg.soft_latency)
        remaining = errors
        retries = 0
        while retries < cfg.max_retries and remaining > cfg.soft_limit_bits:
            remaining *= cfg.retry_gain
            retries += 1
        latency = retries * cfg.retry_latency + cfg.soft_latency
        if remaining <= cfg.soft_limit_bits:
            return EccOutcome(EccTier.RETRY, latency, retries=retries)
        return EccOutcome(EccTier.UNCORRECTABLE, latency, retries=retries)

    @property
    def ladder_limit_bits(self) -> float:
        """Largest mean error count the full ladder can still correct."""
        cfg = self.config
        return cfg.soft_limit_bits / (cfg.retry_gain ** cfg.max_retries)

    @property
    def ladder_latency(self) -> float:
        """Cost of exhausting the whole ladder (the uncorrectable path)."""
        cfg = self.config
        return cfg.max_retries * cfg.retry_latency + cfg.soft_latency

    def uncorrectable_fraction(self, rber: float) -> float:
        """Fraction of pages the full ladder fails to correct.

        Pages are not uniform: a lognormal weak-page population (sigma
        ``page_sigma``) means some pages sit far above the mean RBER.  The
        returned fraction is the lognormal tail above the ladder's capacity
        — smooth, deterministic, and strictly monotone in ``rber``.
        """
        errors = self.expected_errors(rber)
        if errors <= 0.0:
            return 0.0
        ratio = self.ladder_limit_bits / errors
        sigma = self.config.page_sigma
        tail = 0.5 * math.erfc(math.log(ratio) / (sigma * math.sqrt(2.0)))
        return min(1.0, max(0.0, tail))
