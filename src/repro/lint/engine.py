"""The reprolint rule engine: AST parsing, suppressions, and file walking.

The engine owns everything rule-agnostic:

* parsing a file into an :class:`ast.Module` and a :class:`FileContext`
  (source lines, dotted module name, suppression table);
* running every registered :class:`Rule` whose scope matches the file;
* honoring inline ``# reprolint: disable=<rule>[,<rule>...]`` suppressions —
  a trailing comment suppresses its own line, a standalone comment line
  suppresses the following line, and ``disable=all`` suppresses every rule;
* walking directory trees in sorted order so output is deterministic.

Rules live in :mod:`repro.lint.rules`; baseline matching in
:mod:`repro.lint.baseline`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .findings import Finding, Severity

#: Sentinel for "derive the module name from the path".
_DERIVE = "<derive>"

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-, ]+)")


def module_name_for(path: Union[str, Path]) -> Optional[str]:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    ``src/repro/ssd/events.py`` -> ``repro.ssd.events``; files outside a
    ``repro`` directory have no known module (``None``), which scoped rules
    treat as sim-path so fixture snippets exercise every rule.
    """
    parts = Path(path).with_suffix("").parts
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    module = ".".join(parts[anchor:])
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    return module


#: Simple (non-compound) statements: a disable directive on any line of one
#: of these covers the whole statement, so multi-line calls can be suppressed
#: by a trailing comment on any of their lines.  Compound statements (def,
#: for, if, ...) are deliberately excluded — a directive inside a function
#: body must not silence the entire function.
_SIMPLE_STATEMENTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
)


def extend_suppressions_to_statements(
    tree: ast.Module, disabled: Dict[int, Set[str]]
) -> Dict[int, Set[str]]:
    """Spread directives across every line of a multi-line simple statement.

    A finding anchors to the line of the AST node that fired, which for a
    multi-line call is usually the *first* line — but the human writes the
    ``# reprolint: disable=`` comment wherever it fits (often the last line).
    """
    for node in ast.walk(tree):
        if not isinstance(node, _SIMPLE_STATEMENTS):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None or end <= node.lineno:
            continue
        rules: Set[str] = set()
        for line in range(node.lineno, end + 1):
            rules |= disabled.get(line, set())
        if not rules:
            continue
        for line in range(node.lineno, end + 1):
            disabled.setdefault(line, set()).update(rules)
    return disabled


def build_symbol_spans(
    tree: ast.Module, module: Optional[str]
) -> List[Tuple[int, int, str]]:
    """``(start_line, end_line, qualified_symbol)`` for every def/class.

    Innermost scopes come last, so :func:`symbol_for_line` can take the last
    span containing a line.  The module name (or empty string) prefixes each
    qualname.
    """
    prefix = module or ""
    spans: List[Tuple[int, int, str]] = []

    def walk(node: ast.AST, qualpath: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = f"{qualpath}.{child.name}" if qualpath else child.name
                end = getattr(child, "end_lineno", child.lineno) or child.lineno
                spans.append((child.lineno, end, name))
                walk(child, name)
            else:
                walk(child, qualpath)

    walk(tree, "")
    if prefix:
        spans = [(s, e, f"{prefix}.{q}") for s, e, q in spans]
    return spans


def scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names disabled on that line.

    Uses :mod:`tokenize` so directives inside string literals are ignored.
    A standalone comment line applies to the next line as well as its own.
    """
    disabled: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if match is None:
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            line = tok.start[0]
            disabled.setdefault(line, set()).update(rules)
            standalone = not tok.line[: tok.start[1]].strip()
            if standalone:
                disabled.setdefault(line + 1, set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - truncated source
        pass
    return disabled


@dataclass
class FileContext:
    """Everything a rule needs to know about one file under analysis."""

    path: str
    module: Optional[str]
    tree: ast.Module
    source_lines: List[str] = field(default_factory=list)
    disabled: Dict[int, Set[str]] = field(default_factory=dict)
    symbol_spans: List[Tuple[int, int, str]] = field(default_factory=list)

    def symbol_for(self, line: int) -> str:
        """Qualified symbol enclosing ``line`` (module name when top-level)."""
        symbol = self.module or ""
        for start, end, qualname in self.symbol_spans:
            if start <= line <= end:
                symbol = qualname
        return symbol

    def module_in(self, packages: Sequence[str]) -> bool:
        """True when this file's module is inside any of ``packages``.

        Unknown modules (files outside a ``repro`` tree, e.g. test fixtures)
        are *not* considered inside any package.
        """
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def exempt(self, rule: "Rule") -> bool:
        """True when this file sits in one of ``rule``'s allowlisted packages."""
        return bool(rule.exempt_packages) and self.module_in(rule.exempt_packages)

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.disabled.get(line)
        return bool(rules) and (rule in rules or "all" in rules)


class Rule:
    """Base class for one lint rule.

    Subclasses set ``name``/``severity``/``description``/``rationale`` and
    implement :meth:`check`.  ``packages`` scopes a rule to dotted package
    prefixes (empty tuple = everywhere); ``exempt_packages`` carves out an
    allowlist.  Files whose module cannot be determined (fixtures, ad-hoc
    scripts) get every rule.
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""
    packages: Sequence[str] = ()
    exempt_packages: Sequence[str] = ()

    def applies_to(self, context: FileContext) -> bool:
        if context.exempt(self):
            return False
        if not self.packages:
            return True
        return context.module is None or context.module_in(self.packages)

    def check(self, context: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        context: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=context.path,
            line=line,
            col=col,
            message=message,
            severity=severity if severity is not None else self.severity,
            code=context.line_text(line),
            symbol=context.symbol_for(line),
        )


class LintEngine:
    """Runs a set of rules over sources, files, and directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        self.rules: List[Rule] = list(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")

    def lint_source(
        self,
        source: str,
        path: str = "<string>",
        module: Optional[str] = _DERIVE,
    ) -> List[Finding]:
        """Lint a source string.

        ``module`` overrides the dotted module name used for rule scoping;
        tests use this to present fixture snippets as sim-path modules.
        """
        if module == _DERIVE:
            module = module_name_for(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    rule="parse-error",
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"could not parse: {exc.msg}",
                )
            ]
        context = FileContext(
            path=path,
            module=module,
            tree=tree,
            source_lines=source.splitlines(),
            disabled=extend_suppressions_to_statements(
                tree, scan_suppressions(source)
            ),
            symbol_spans=build_symbol_spans(tree, module),
        )
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(context):
                continue
            for finding in rule.check(context):
                if not context.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def lint_file(self, path: Union[str, Path]) -> List[Finding]:
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, path=str(path))

    def lint_paths(self, paths: Sequence[Union[str, Path]]) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(iter_python_files(paths)):
            findings.extend(self.lint_file(path))
        return findings


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through as-is)."""
    for path in paths:
        p = Path(path)
        if p.is_dir():
            for child in sorted(p.rglob("*.py")):
                if "__pycache__" not in child.parts:
                    yield child
        elif p.suffix == ".py" or p.is_file():
            yield p
