"""Deep pass: the package layering contract.

The architecture layers top-down — ``serve`` drives ``core``, which drives
``ssd``, which sits on ``units``/``config`` — and the contract only stays
true while no lower layer grows an import of a higher one.  This pass checks
every resolved import edge in the :class:`~repro.lint.project.ProjectGraph`
against an *explicit allowlist*: any cross-package edge not in the matrix is
a finding, so a new back-edge fails CI the moment it is written rather than
surfacing later as an import cycle or an untestable module.

The matrix is intentionally written down in full (not inferred from the
current tree): it is the documentation of record for "who may import whom",
mirrored as a table in DESIGN.md §8.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .findings import Finding
from .project import DeepRule, ProjectGraph

#: Units every package may import freely: leaf utilities with no sim state
#: (errors, units), the config layer that roots all seeds, observability
#: (importable everywhere by design — the zero-overhead guard keeps it out of
#: the hot path), and the lint package itself (the simsan runtime guard is
#: consumed by sim layers the same way obs is).
UNIVERSAL: Tuple[str, ...] = (
    "repro.errors",
    "repro.units",
    "repro.obs",
    "repro.config",
    "repro.lint",
)

#: Allowed cross-package import edges beyond :data:`UNIVERSAL`, keyed by the
#: importing unit.  ``repro`` is the package root (its ``__init__``);
#: top-level modules like ``repro.cli`` are their own unit.  Nothing may
#: import ``repro.cli`` — the CLI is the outermost shell.
ALLOWED_IMPORTS: Dict[str, Tuple[str, ...]] = {
    "repro": ("repro.core",),
    "repro.__main__": ("repro.cli",),
    "repro.analysis": (
        "repro.baselines",
        "repro.cfp32",
        "repro.core",
        "repro.layout",
        "repro.ssd",
        "repro.workloads",
    ),
    "repro.ablate": (
        "repro.cfp32",
        "repro.cluster",
        "repro.core",
        "repro.faults",
        "repro.serve",
        "repro.workloads",
    ),
    "repro.baselines": ("repro.workloads",),
    "repro.cfp32": (),
    "repro.cli": (
        "repro",
        "repro.ablate",
        "repro.analysis",
        "repro.cluster",
        "repro.core",
        "repro.faults",
        "repro.serve",
        "repro.ssd",
        "repro.workloads",
    ),
    "repro.cluster": (
        "repro.faults",
        "repro.serve",
    ),
    "repro.config": (),
    "repro.core": (
        "repro.cfp32",
        "repro.faults",
        "repro.layout",
        "repro.screening",
        "repro.ssd",
        "repro.workloads",
    ),
    "repro.errors": (),
    "repro.faults": (
        "repro",
        "repro.analysis",
        "repro.core",
        "repro.ssd",
        "repro.workloads",
    ),
    "repro.layout": (),
    "repro.lint": (),
    "repro.obs": ("repro", "repro.analysis"),
    "repro.screening": (),
    "repro.serve": (
        "repro.core",
        "repro.layout",
        "repro.workloads",
    ),
    "repro.ssd": ("repro.faults",),
    "repro.units": (),
    "repro.workloads": (),
}


def allowed(importer: str, imported: str) -> bool:
    """True when the layering matrix permits ``importer`` -> ``imported``."""
    if imported in UNIVERSAL:
        return True
    return imported in ALLOWED_IMPORTS.get(importer, ())


class LayeringContract(DeepRule):
    name = "layering-contract"
    description = "cross-package import not in the layering allowlist"
    rationale = (
        "the serve → core → ssd → units layering is what keeps each layer "
        "independently testable and the determinism contract local; any new "
        "cross-package edge must be added to the matrix deliberately, in the "
        "same commit that justifies it"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        for (src, dst), edges in sorted(project.package_edges().items()):
            if allowed(src, dst):
                continue
            for edge in edges:
                info = project.modules[edge.module]
                yield self.finding(
                    info,
                    edge.node,
                    f"{src} may not import {dst} "
                    f"(imports {edge.target}); the layering matrix in "
                    f"repro.lint.layering has no such edge — add it "
                    f"deliberately or route through an allowed layer",
                )
