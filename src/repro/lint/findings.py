"""Finding and severity primitives shared by the reprolint engine and rules.

A :class:`Finding` is one diagnostic anchored to a file/line/column.  It also
carries ``code`` — the stripped source line it fired on — which the baseline
uses as a drift-tolerant fingerprint: a grandfathered finding keeps matching
after unrelated edits move it to a different line number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict


class Severity(enum.IntEnum):
    """How bad a finding is.  Any severity fails the lint run; the level is
    informational so downstream tooling can triage."""

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint rule.

    ``symbol`` is the fully-qualified symbol the finding sits in (module plus
    enclosing class/function qualname, e.g.
    ``repro.serve.driver.ServingSimulator.run``) — the refactor-stable half
    of the baseline key alongside ``message``.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    code: str = field(default="", compare=False)
    symbol: str = field(default="", compare=False)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.severity.label}: "
            f"{self.message} [{self.rule}]"
        )

    def format_github(self) -> str:
        """GitHub Actions workflow-command form (inline PR annotations)."""
        level = "error" if self.severity is Severity.ERROR else "warning"
        # Workflow-command property values must not contain newlines or the
        # :: delimiter; findings never do, but stay defensive.
        message = self.message.replace("\n", " ").replace("::", ":")
        return (
            f"::{level} file={self.path},line={self.line},col={self.col},"
            f"title=reprolint {self.rule}::{message}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.label,
            "message": self.message,
            "code": self.code,
            "symbol": self.symbol,
        }

    def with_path(self, path: str) -> "Finding":
        return replace(self, path=path)
