"""Finding and severity primitives shared by the reprolint engine and rules.

A :class:`Finding` is one diagnostic anchored to a file/line/column.  It also
carries ``code`` — the stripped source line it fired on — which the baseline
uses as a drift-tolerant fingerprint: a grandfathered finding keeps matching
after unrelated edits move it to a different line number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict


class Severity(enum.IntEnum):
    """How bad a finding is.  Any severity fails the lint run; the level is
    informational so downstream tooling can triage."""

    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a lint rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    code: str = field(default="", compare=False)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.severity.label}: "
            f"{self.message} [{self.rule}]"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.label,
            "message": self.message,
            "code": self.code,
        }

    def with_path(self, path: str) -> "Finding":
        return replace(self, path=path)
