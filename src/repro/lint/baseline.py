"""Baseline (grandfathered-findings) support for reprolint.

A baseline file records findings that are understood and deliberately kept;
``repro lint`` exits zero when every current finding matches a baseline
entry.  Every entry **must** carry a non-empty ``justification`` — an entry
without one fails loading, so grandfathering is never silent.

Two entry formats coexist:

* **v2** (current) — entries key on ``(rule, symbol, message)`` where
  ``symbol`` is the fully-qualified enclosing symbol
  (``repro.core.protocol.DeviceServer.handle``).  Neither half moves when
  unrelated edits shift line numbers or the file is renamed in place, so
  refactors don't churn the baseline.  ``path``/``line``/``code`` are kept
  as human-facing hints only.
* **v1** (legacy, read-only) — entries key on ``(rule, path-suffix,
  code-or-line)``.  :meth:`Baseline.load` still accepts them so an old
  baseline keeps working; ``repro lint --update-baseline`` rewrites it in
  v2 carrying the justifications over.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .findings import Finding

BASELINE_FILENAME = "reprolint-baseline.json"
_VERSION = 2


class BaselineError(ValueError):
    """The baseline file is malformed or has an unjustified entry."""


@dataclass
class BaselineEntry:
    """One grandfathered finding.

    A v2 entry has ``symbol`` and/or ``message`` set and matches on
    ``(rule, symbol, message)``; a legacy v1 entry has neither and matches
    on ``(rule, path-suffix, code-or-line)``.
    """

    rule: str
    path: str
    justification: str
    code: str = ""
    line: int = 0
    symbol: str = ""
    message: str = ""

    @property
    def is_v2(self) -> bool:
        return bool(self.symbol or self.message)

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if self.is_v2:
            if self.symbol and self.symbol != finding.symbol:
                return False
            if self.message and self.message != finding.message:
                return False
            return True
        # v1 legacy matching: path suffix plus code text (or line fallback).
        if not _path_suffix_match(self.path, finding.path):
            return False
        if self.code:
            return self.code == finding.code
        return self.line == finding.line

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "symbol": self.symbol,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "justification": self.justification,
        }


def _path_suffix_match(a: str, b: str) -> bool:
    pa = Path(a).as_posix().lstrip("./")
    pb = Path(b).as_posix().lstrip("./")
    return pa == pb or pa.endswith("/" + pb) or pb.endswith("/" + pa)


@dataclass
class Baseline:
    """A set of grandfathered findings loaded from (or saved to) JSON."""

    entries: List[BaselineEntry] = field(default_factory=list)
    path: str = ""
    version: int = _VERSION

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(f"{path}: expected an object with 'entries'")
        version = int(payload.get("version", 1))
        entries: List[BaselineEntry] = []
        for index, raw in enumerate(payload["entries"]):
            justification = str(raw.get("justification", "")).strip()
            if not justification or justification.startswith("TODO"):
                raise BaselineError(
                    f"{path}: entry {index} ({raw.get('rule')}, "
                    f"{raw.get('path')}) has no justification; every "
                    "grandfathered finding must say why it is kept"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw.get("path", "")),
                    justification=justification,
                    code=str(raw.get("code", "")),
                    line=int(raw.get("line", 0)),
                    symbol=str(raw.get("symbol", "")),
                    message=str(raw.get("message", "")),
                )
            )
        return cls(entries=entries, path=str(path), version=version)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": _VERSION,
            "entries": [entry.to_json() for entry in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def is_known(self, finding: Finding) -> bool:
        return any(entry.matches(finding) for entry in self.entries)

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into ``(new, grandfathered)``."""
        new: List[Finding] = []
        known: List[Finding] = []
        for finding in findings:
            (known if self.is_known(finding) else new).append(finding)
        return new, known

    def unused_entries(self, findings: Sequence[Finding]) -> List[BaselineEntry]:
        """Entries that no current finding matches (stale grandfathering)."""
        return [
            entry
            for entry in self.entries
            if not any(entry.matches(f) for f in findings)
        ]

    @classmethod
    def from_findings(
        cls,
        findings: Sequence[Finding],
        justification: str = "TODO: justify this grandfathered finding",
    ) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    rule=f.rule,
                    path=f.path,
                    justification=justification,
                    code=f.code,
                    line=f.line,
                    symbol=f.symbol,
                    message=f.message,
                )
                for f in findings
            ]
        )

    def migrated(self, findings: Sequence[Finding]) -> "Baseline":
        """A v2 baseline re-keyed against the current findings.

        Each finding that matches an existing entry (v1 or v2) becomes a v2
        entry carrying that entry's justification; entries no current
        finding matches are dropped (they were stale).  This is the engine
        behind ``repro lint --update-baseline``.
        """
        migrated: List[BaselineEntry] = []
        seen: set = set()
        for finding in findings:
            source: Optional[BaselineEntry] = None
            for entry in self.entries:
                if entry.matches(finding):
                    source = entry
                    break
            if source is None:
                continue
            key = (finding.rule, finding.symbol, finding.message)
            if key in seen:
                continue
            seen.add(key)
            migrated.append(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    justification=source.justification,
                    code=finding.code,
                    line=finding.line,
                    symbol=finding.symbol,
                    message=finding.message,
                )
            )
        return Baseline(entries=migrated, path=self.path)


def discover_baseline(paths: Sequence[Union[str, Path]]) -> Union[Path, None]:
    """Find ``reprolint-baseline.json`` near the lint targets.

    Looks in the current directory, then each ancestor of the first target
    path — so ``python -m repro.lint src/repro`` run from the repo root finds
    the checked-in baseline without a flag.
    """
    candidates: List[Path] = [Path.cwd() / BASELINE_FILENAME]
    if paths:
        first = Path(paths[0]).resolve()
        for ancestor in [first, *first.parents]:
            candidates.append(ancestor / BASELINE_FILENAME)
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None
