"""Command line for reprolint: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 — clean (modulo baseline); 1 — new findings (or stale/invalid
baseline); 2 — usage error.  Both entry points share :func:`configure_parser`
so the flags stay identical.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline, BaselineError, discover_baseline
from .engine import LintEngine
from .rules import default_rules, rules_by_name


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach reprolint arguments to ``parser`` (shared by both front ends)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON of grandfathered findings "
        "(default: discover reprolint-baseline.json near the targets)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0 "
        "(justifications start as TODO and must be filled in)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="findings output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its scope and rationale, then exit",
    )


def _list_rules() -> int:
    for rule in default_rules():
        scope = ", ".join(rule.packages) if rule.packages else "all packages"
        exempt = (
            f" (exempt: {', '.join(rule.exempt_packages)})"
            if rule.exempt_packages
            else ""
        )
        print(f"{rule.name} [{rule.severity.label}] — {rule.description}")
        print(f"    scope: {scope}{exempt}")
        print(f"    why: {rule.rationale}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute a parsed reprolint invocation."""
    if args.list_rules:
        return _list_rules()

    if args.select:
        registry = rules_by_name()
        unknown = [name for name in args.select if name not in registry]
        if unknown:
            print(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(registry))}",
                file=sys.stderr,
            )
            return 2
        engine = LintEngine([registry[name]() for name in args.select])
    else:
        engine = LintEngine()

    findings = engine.lint_paths(args.paths)

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = discover_baseline(args.paths)

    if args.write_baseline:
        target = baseline_path or Path("reprolint-baseline.json")
        Baseline.from_findings(findings).save(target)
        print(f"wrote {len(findings)} finding(s) to {target}")
        if findings:
            print("fill in each entry's justification before committing")
        return 0

    baseline = Baseline(entries=[])
    if baseline_path is not None:
        if not baseline_path.is_file():
            print(f"baseline not found: {baseline_path}", file=sys.stderr)
            return 2
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 1

    new, grandfathered = baseline.split(findings)
    stale = baseline.unused_entries(findings)

    if args.output_format == "json":
        print(
            json.dumps(
                {
                    "new": [f.to_json() for f in new],
                    "grandfathered": [f.to_json() for f in grandfathered],
                    "stale_baseline_entries": [e.to_json() for e in stale],
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.format())
        for entry in stale:
            print(
                f"stale baseline entry: {entry.rule} at {entry.path} "
                f"(no longer reported — remove it)",
                file=sys.stderr,
            )
        summary = f"{len(new)} new finding(s)"
        if grandfathered:
            summary += f", {len(grandfathered)} grandfathered"
        if stale:
            summary += f", {len(stale)} stale baseline entrie(s)"
        print(summary)

    return 1 if (new or stale) else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulator-aware static analysis for the ECSSD reproduction",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
