"""Command line for reprolint: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 — clean (modulo baseline); 1 — new findings (or stale/invalid
baseline); 2 — usage error.  Both entry points share :func:`configure_parser`
so the flags stay identical.

``--deep`` adds the whole-program passes (:mod:`repro.lint.deep`);
``--graph-cache PATH`` memoizes their findings keyed on a sha256 fingerprint
of every source file, so CI builds the project graph once and later steps
replay it.  ``--format=github`` emits GitHub Actions workflow commands so
new findings annotate PR diffs inline.  ``--update-baseline`` re-keys an
existing baseline (v1 or v2) on ``(rule, symbol, message)``, carrying the
justifications over and dropping stale entries.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline, BaselineError, discover_baseline
from .engine import LintEngine
from .rules import default_rules, rules_by_name


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach reprolint arguments to ``parser`` (shared by both front ends)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program passes (seed provenance, "
        "unit/dimension flow, layering contract)",
    )
    parser.add_argument(
        "--graph-cache",
        default=None,
        metavar="PATH",
        help="memoize deep-pass findings at PATH, keyed on a fingerprint of "
        "every source file (used by CI to share the graph between steps)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON of grandfathered findings "
        "(default: discover reprolint-baseline.json near the targets)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0 "
        "(justifications start as TODO and must be filled in)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-key the existing baseline on (rule, symbol, message), "
        "carrying justifications over and dropping stale entries",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        dest="output_format",
        help="findings output format (github = Actions annotations)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its scope and rationale, then exit",
    )


def _list_rules() -> int:
    from .deep import default_deep_rules

    for rule in default_rules():
        scope = ", ".join(rule.packages) if rule.packages else "all packages"
        exempt = (
            f" (exempt: {', '.join(rule.exempt_packages)})"
            if rule.exempt_packages
            else ""
        )
        print(f"{rule.name} [{rule.severity.label}] — {rule.description}")
        print(f"    scope: {scope}{exempt}")
        print(f"    why: {rule.rationale}")
    for rule in default_deep_rules():
        print(
            f"{rule.name} [{rule.severity.label}] — {rule.description} "
            f"(--deep)"
        )
        print("    scope: whole program")
        print(f"    why: {rule.rationale}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute a parsed reprolint invocation."""
    if args.list_rules:
        return _list_rules()

    deep_names: List[str] = []
    if args.deep:
        from .deep import DEEP_RULE_CLASSES

        deep_names = [cls.name for cls in DEEP_RULE_CLASSES]

    if args.select:
        registry = rules_by_name()
        shallow = [n for n in args.select if n in registry]
        selected_deep = [n for n in args.select if n in deep_names]
        unknown = [
            n for n in args.select if n not in registry and n not in deep_names
        ]
        if unknown:
            available = sorted(set(registry) | set(deep_names))
            print(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"available: {', '.join(available)}",
                file=sys.stderr,
            )
            return 2
        engine = LintEngine([registry[name]() for name in shallow])
        deep_selection: Optional[List[str]] = selected_deep
    else:
        engine = LintEngine()
        deep_selection = None

    findings = engine.lint_paths(args.paths)

    if args.deep:
        from .deep import default_deep_rules, run_deep

        deep_rules = default_deep_rules()
        if deep_selection is not None:
            deep_rules = [r for r in deep_rules if r.name in deep_selection]
        findings = findings + run_deep(
            args.paths, rules=deep_rules, cache_path=args.graph_cache
        )

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = discover_baseline(args.paths)

    if args.write_baseline:
        target = baseline_path or Path("reprolint-baseline.json")
        Baseline.from_findings(findings).save(target)
        print(f"wrote {len(findings)} finding(s) to {target}")
        if findings:
            print("fill in each entry's justification before committing")
        return 0

    if args.update_baseline:
        target = baseline_path or Path("reprolint-baseline.json")
        if not target.is_file():
            print(f"baseline not found: {target}", file=sys.stderr)
            return 2
        try:
            old = Baseline.load(target)
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        migrated = old.migrated(findings)
        migrated.save(target)
        dropped = len(old.entries) - len(migrated.entries)
        print(
            f"rewrote {target} with {len(migrated.entries)} v2 entrie(s)"
            + (f", dropped {dropped} stale" if dropped else "")
        )
        return 0

    baseline = Baseline(entries=[])
    if baseline_path is not None:
        if not baseline_path.is_file():
            print(f"baseline not found: {baseline_path}", file=sys.stderr)
            return 2
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 1

    new, grandfathered = baseline.split(findings)
    stale = baseline.unused_entries(findings)

    if args.output_format == "json":
        print(
            json.dumps(
                {
                    "new": [f.to_json() for f in new],
                    "grandfathered": [f.to_json() for f in grandfathered],
                    "stale_baseline_entries": [e.to_json() for e in stale],
                },
                indent=2,
            )
        )
    elif args.output_format == "github":
        for finding in new:
            print(finding.format_github())
        for entry in stale:
            print(
                f"::warning title=reprolint stale baseline::stale baseline "
                f"entry {entry.rule} at {entry.path} (no longer reported "
                f"- remove it)"
            )
        print(
            f"{len(new)} new finding(s), {len(grandfathered)} grandfathered, "
            f"{len(stale)} stale"
        )
    else:
        for finding in new:
            print(finding.format())
        for entry in stale:
            print(
                f"stale baseline entry: {entry.rule} at {entry.path} "
                f"(no longer reported — remove it)",
                file=sys.stderr,
            )
        summary = f"{len(new)} new finding(s)"
        if grandfathered:
            summary += f", {len(grandfathered)} grandfathered"
        if stale:
            summary += f", {len(stale)} stale baseline entrie(s)"
        print(summary)

    return 1 if (new or stale) else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="simulator-aware static analysis for the ECSSD reproduction",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
