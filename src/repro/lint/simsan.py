"""The runtime sim-sanitizer: dynamic checks for the determinism contract.

Static analysis (:mod:`repro.lint.deep`) proves properties of the *source*;
this module asserts them on a *live run*.  When enabled (``REPRO_SIMSAN=1``
or ``--simsan`` on the serve/faults CLIs) it watches:

* **pop order** — every event-loop pop must carry a finite, non-NaN,
  monotonically non-decreasing sim time per track, and when the loop has a
  tie-breaking key (the serving heap's ``(time, kind, seq)`` tuple) the keys
  must be *strictly* increasing — a duplicate key means the tie-break is
  ambiguous and replay order is luck;
* **derived times** — any checked quantity (flash makespans, fault-cell
  latencies) must be finite and non-negative;
* **RNG discipline** — while installed, ``numpy.random.default_rng()``
  without a seed and every legacy global-state call
  (``np.random.random``/``seed``/``shuffle``/...) are violations: streams
  must be constructed from an explicit ``(seed, salt, ...)`` and registered.

Guard pattern mirrors :mod:`repro.faults.injector` /:mod:`repro.obs`: call
sites fetch the process-global sanitizer via :func:`get_sanitizer` and test
one ``enabled`` attribute.  The default :data:`NULL_SANITIZER` is disabled,
so an un-instrumented run executes the same arithmetic in the same order —
bit-identical digests with the sanitizer compiled in but off, and (because
the checks only *observe*) with it on as well.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError

#: Legacy numpy global-state entry points that bypass seeded streams.
_GLOBAL_STATE_FNS = (
    "random",
    "rand",
    "randn",
    "randint",
    "normal",
    "uniform",
    "shuffle",
    "choice",
    "permutation",
    "seed",
)


@dataclass(frozen=True)
class SimSanViolation:
    """One contract breach observed at runtime."""

    check: str
    message: str
    sim_time: Optional[float] = None
    context: str = ""

    def format(self) -> str:
        where = f" at sim t={self.sim_time:.9g}" if self.sim_time is not None else ""
        ctx = f" [{self.context}]" if self.context else ""
        return f"simsan: {self.check}{where}: {self.message}{ctx}"


class SimSanitizer:
    """Live sanitizer; see the module docstring.

    ``strict=True`` raises :class:`~repro.errors.SimulationError` on the
    first violation (tests); ``strict=False`` collects up to
    ``max_violations`` and lets the CLI report and fail the exit code.
    """

    enabled = True

    def __init__(self, strict: bool = False, max_violations: int = 100) -> None:
        self.strict = strict
        self.max_violations = max_violations
        self.violations: List[SimSanViolation] = []
        self.pops_observed = 0
        self.checks_performed = 0
        self.streams: Dict[str, object] = {}
        self._last_time: Dict[str, float] = {}
        self._last_key: Dict[str, Tuple[Any, ...]] = {}
        self._saved_rng: Dict[str, Callable[..., Any]] = {}

    # --- violation plumbing ------------------------------------------------
    def _violate(
        self,
        check: str,
        message: str,
        sim_time: Optional[float] = None,
        context: str = "",
    ) -> None:
        violation = SimSanViolation(
            check=check, message=message, sim_time=sim_time, context=context
        )
        if self.strict:
            raise SimulationError(violation.format())
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)

    # --- event-loop checks --------------------------------------------------
    def observe_pop(
        self,
        track: str,
        sim_time: float,
        key: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        """Check one event-loop pop on ``track`` (see module docstring)."""
        self.pops_observed += 1
        if math.isnan(sim_time) or math.isinf(sim_time):
            self._violate(
                "finite-timestamp",
                f"popped event carries non-finite sim time {sim_time!r}",
                sim_time=None,
                context=track,
            )
            return
        last = self._last_time.get(track)
        if last is not None and sim_time < last:
            self._violate(
                "monotone-pop",
                f"sim time went backwards: {last!r} -> {sim_time!r}",
                sim_time=sim_time,
                context=track,
            )
        self._last_time[track] = sim_time
        if key is not None:
            last_key = self._last_key.get(track)
            if last_key is not None and key <= last_key:
                self._violate(
                    "deterministic-tiebreak",
                    f"pop key {key!r} does not strictly increase after "
                    f"{last_key!r}; tie-breaking is ambiguous and replay "
                    "order depends on heap internals",
                    sim_time=sim_time,
                    context=track,
                )
            self._last_key[track] = key

    def check_time(
        self, label: str, value: float, sim_time: Optional[float] = None
    ) -> None:
        """Assert a derived duration/timestamp is finite and non-negative."""
        self.checks_performed += 1
        if math.isnan(value) or math.isinf(value):
            self._violate(
                "finite-time",
                f"{label} is non-finite: {value!r}",
                sim_time=sim_time,
                context=label,
            )
        elif value < 0.0:
            self._violate(
                "negative-time",
                f"{label} is negative: {value!r}",
                sim_time=sim_time,
                context=label,
            )

    # --- RNG discipline -----------------------------------------------------
    def register_stream(self, name: str, seed: object) -> None:
        """Declare a seeded RNG stream (default_rng hook does this)."""
        self.streams[name] = seed

    def install_rng_hooks(self) -> None:
        """Wrap numpy's RNG entry points to enforce stream discipline."""
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a hard dep
            return
        if self._saved_rng:
            return
        original_default_rng = np.random.default_rng
        sanitizer = self

        def checked_default_rng(seed: object = None, *args: Any, **kwargs: Any) -> Any:
            if seed is None and not args and not kwargs:
                sanitizer._violate(
                    "unseeded-rng",
                    "np.random.default_rng() constructed without a seed; "
                    "every stream must derive from (seed, salt, ...)",
                )
            else:
                sanitizer.register_stream(f"stream-{len(sanitizer.streams)}", seed)
            return original_default_rng(seed, *args, **kwargs)

        self._saved_rng["default_rng"] = original_default_rng
        np.random.default_rng = checked_default_rng  # type: ignore[assignment]

        for name in _GLOBAL_STATE_FNS:
            original = getattr(np.random, name, None)
            if original is None:  # pragma: no cover - numpy version drift
                continue

            def make_wrapper(
                fn_name: str, fn: Callable[..., Any]
            ) -> Callable[..., Any]:
                def wrapper(*args: Any, **kwargs: Any) -> Any:
                    sanitizer._violate(
                        "global-rng-state",
                        f"np.random.{fn_name}() uses the global RNG state "
                        "outside any registered seeded stream",
                    )
                    return fn(*args, **kwargs)

                return wrapper

            self._saved_rng[name] = original
            setattr(np.random, name, make_wrapper(name, original))

    def uninstall_rng_hooks(self) -> None:
        """Restore the numpy entry points saved by :meth:`install_rng_hooks`."""
        if not self._saved_rng:
            return
        import numpy as np

        for name, original in self._saved_rng.items():
            setattr(np.random, name, original)
        self._saved_rng.clear()

    # --- reporting ----------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "enabled": True,
            "strict": self.strict,
            "pops_observed": self.pops_observed,
            "checks_performed": self.checks_performed,
            "streams_registered": len(self.streams),
            "violations": len(self.violations),
        }

    def report(self) -> str:
        """Human-readable report; span-contextualizes each violation.

        When the obs tracer has spans, each violation with a sim time is
        annotated with the sim-clocked spans overlapping it, so a bad pop
        points straight at the pipeline phase that produced it.
        """
        if not self.violations:
            return (
                f"simsan: clean ({self.pops_observed} pops, "
                f"{self.checks_performed} checks, "
                f"{len(self.streams)} seeded streams)"
            )
        lines = [
            f"simsan: {len(self.violations)} violation(s) "
            f"({self.pops_observed} pops, {self.checks_performed} checks)"
        ]
        spans = self._tracer_spans()
        for violation in self.violations:
            lines.append("  " + violation.format())
            if violation.sim_time is not None and spans:
                from ..obs.digest import spans_in_window

                window = spans_in_window(
                    spans, violation.sim_time, violation.sim_time
                )
                for span in window[-3:]:
                    lines.append(
                        f"    in span {span.track}/{span.name} "
                        f"[{span.sim_start!r}, {span.sim_end!r}]"
                    )
        return "\n".join(lines)

    def _tracer_spans(self) -> List[Any]:
        try:
            from .. import obs

            tracer = obs.get_tracer()
            if getattr(tracer, "enabled", False):
                return list(getattr(tracer, "spans", []))
        except Exception:  # pragma: no cover - obs optional at runtime
            pass
        return []


class NullSimSanitizer:
    """Zero-overhead stand-in while the sanitizer is off."""

    enabled = False
    strict = False
    violations: List[SimSanViolation] = []

    def observe_pop(
        self,
        track: str,
        sim_time: float,
        key: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        return None

    def check_time(
        self, label: str, value: float, sim_time: Optional[float] = None
    ) -> None:
        return None

    def register_stream(self, name: str, seed: object) -> None:
        return None

    def summary(self) -> Dict[str, object]:
        return {"enabled": False}

    def report(self) -> str:
        return "simsan: disabled"


NULL_SANITIZER = NullSimSanitizer()

_sanitizer: object = NULL_SANITIZER


def get_sanitizer() -> Any:
    """The process-global sanitizer (the disabled null until installed)."""
    return _sanitizer


def set_sanitizer(sanitizer: Optional[SimSanitizer]) -> None:
    """Install a live sanitizer, or ``None`` to restore the no-op default."""
    global _sanitizer
    _sanitizer = sanitizer if sanitizer is not None else NULL_SANITIZER


def env_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """True when ``REPRO_SIMSAN`` requests the sanitizer (1/true/yes/on)."""
    env = environ if environ is not None else dict(os.environ)
    return env.get("REPRO_SIMSAN", "").strip().lower() in ("1", "true", "yes", "on")


@dataclass
class installed:
    """Context manager installing a sanitizer and restoring the previous one.

    ::

        with installed(SimSanitizer(strict=True)) as san:
            simulator.run()
        print(san.report())

    ``hook_rng=True`` (default) also wraps numpy's RNG entry points for the
    duration, restoring the originals on exit.
    """

    sanitizer: SimSanitizer
    hook_rng: bool = True
    _previous: object = field(default=None, repr=False)

    def __enter__(self) -> SimSanitizer:
        self._previous = get_sanitizer()
        set_sanitizer(self.sanitizer)
        if self.hook_rng:
            self.sanitizer.install_rng_hooks()
        return self.sanitizer

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self.hook_rng:
            self.sanitizer.uninstall_rng_hooks()
        set_sanitizer(self._previous if isinstance(self._previous, SimSanitizer) else None)
        self._previous = None
