"""The simulator-specific lint rules (the "determinism contract").

Each rule targets one bug class that silently breaks the discrete-event
simulator's bit-for-bit reproducibility guarantee (DESIGN.md, "Determinism
contract"):

* ``no-wall-clock`` — wall-clock reads in sim paths make timings run-dependent.
* ``seeded-rng-only`` — module-level / unseeded RNG makes workloads
  run-dependent; the repo's idiom is ``np.random.default_rng((seed, salt, i))``.
* ``sim-time-no-float-eq`` — ``==``/``!=`` between simulated-time expressions
  and float literals is FP-rounding roulette; compare with tolerances or
  ordering instead.
* ``raw-duration-literal`` — bare numeric durations at scheduling call sites
  hide their unit; :mod:`repro.units` helpers (``us``/``ms``/``ns``) exist.
* ``closure-capture-in-schedule`` — lambdas/inner defs passed to
  ``schedule``/``push`` that capture a loop variable fire with its *final*
  value (Python late binding); bind via default args instead.
* ``unordered-iteration`` — iterating a ``set``/``frozenset`` feeds
  hash-order-dependent sequences into scheduling/placement/channel selection.
* ``exception-hygiene`` — bare ``except`` / blanket ``except Exception``
  swallow :class:`repro.errors.SimulationError` and friends, hiding broken
  simulation state.

Rules resolve names through each file's import table, so ``import numpy as
np; np.random.rand()`` and ``from time import perf_counter`` are both caught
while an unrelated local ``def perf_counter()`` is not.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from .engine import FileContext, Rule
from .findings import Finding, Severity

#: Shipped packages/modules deliberately OUTSIDE the determinism-lint scope.
#: Every exclusion must say why — ``tests/test_lint.py`` asserts that every
#: package :func:`discover_sim_packages` can see is either in scope or listed
#: here with a justification, so a new module can never silently escape lint.
EXCLUDED_PACKAGES: Dict[str, str] = {
    "repro.lint": (
        "the linter itself must name banned wall-clock/RNG symbols to detect "
        "them, and the simsan runtime guard wraps numpy.random by design"
    ),
    "repro.obs": (
        "scoping the obs package root would prefix-match every telemetry "
        "submodule; the sim-contract obs submodules are listed individually "
        "and the __init__ is recorder/session/logging wiring only"
    ),
    "repro.obs.metrics": (
        "the metrics registry measures wall time by design (the telemetry "
        "exemption pinned bit-identical-when-disabled by tests/test_obs.py)"
    ),
    "repro.obs.tracing": (
        "the span recorder pairs sim time with wall time by design (same "
        "telemetry exemption as repro.obs.metrics)"
    ),
    "repro.obs.export": (
        "exporters serialize already-recorded spans/metrics to files; they "
        "run after the simulation and never feed state back into it"
    ),
}


def discover_sim_packages(root: Optional[Path] = None) -> Tuple[str, ...]:
    """Walk ``src/repro`` and return every lintable package/module in scope.

    Top-level packages (``repro.ssd``, ``repro.serve``, ...) and top-level
    modules (``repro.config``, ``repro.cli``, ...) are one scope unit each;
    ``repro.obs`` is enumerated per submodule because its telemetry half is
    exempt while its analysis half (profile/health/perfdiff/digest/runs/
    streaming: sim-clock-only, seeded, pure functions of config+seed) lives
    under the same contract as the simulator proper.  Subtract
    :data:`EXCLUDED_PACKAGES` and sort, so the scope is deterministic and
    new modules are in scope by default.
    """
    base = root if root is not None else Path(__file__).resolve().parent.parent
    units: Set[str] = set()
    for entry in sorted(base.iterdir()):
        if entry.name == "__pycache__":
            continue
        if entry.is_dir() and (entry / "__init__.py").is_file():
            if entry.name == "obs":
                units.add("repro.obs")
                for sub in sorted(entry.glob("*.py")):
                    if sub.name != "__init__.py":
                        units.add(f"repro.obs.{sub.stem}")
            else:
                units.add(f"repro.{entry.name}")
        elif entry.suffix == ".py" and entry.name != "__init__.py":
            units.add(f"repro.{entry.stem}")
    return tuple(sorted(units - set(EXCLUDED_PACKAGES)))


#: Packages whose behavior feeds simulated timings, placement, or results.
#: Auto-discovered from the shipped tree (see :func:`discover_sim_packages`)
#: rather than hand-maintained, so a new package cannot dodge the contract.
SIM_PACKAGES: Tuple[str, ...] = discover_sim_packages()

#: Modules allowed to read the wall clock (the span recorder and metrics
#: registry measure real time by design) or that must talk about banned
#: names (this linter).  Deliberately narrower than ``repro.obs``: the
#: profiler/health/perf-diff analyses are sim-clock-only and stay in scope.
WALL_CLOCK_EXEMPT: Tuple[str, ...] = (
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.lint",
)


# --------------------------------------------------------------------------
# Import resolution
# --------------------------------------------------------------------------


def build_import_table(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted path they were imported as.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``.
    Relative imports resolve inside this package and are irrelevant to the
    stdlib/numpy bans, so they are skipped.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def resolve_dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Fully-qualified dotted name of ``node``, or ``None`` if unresolvable."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name / Attribute / Call expression."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _callee_name(node: ast.Call) -> Optional[str]:
    return _terminal_identifier(node.func)


def _numeric_literal(node: ast.AST) -> Optional[float]:
    """Value of a numeric literal (including unary +/-), else ``None``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _numeric_literal(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and type(node.value) in (int, float):
        return float(node.value)
    return None


# --------------------------------------------------------------------------
# no-wall-clock
# --------------------------------------------------------------------------


class NoWallClock(Rule):
    name = "no-wall-clock"
    severity = Severity.ERROR
    description = "forbid wall-clock reads in simulation-path packages"
    rationale = (
        "simulated time must come from Simulator.now; wall-clock reads make "
        "timings vary run to run (repro.obs measures real time by design and "
        "is exempt)"
    )
    packages = SIM_PACKAGES
    exempt_packages = WALL_CLOCK_EXEMPT

    BANNED: Set[str] = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, context: FileContext) -> Iterable[Finding]:
        imports = build_import_table(context.tree)
        for node in ast.walk(context.tree):
            dotted: Optional[str] = None
            if isinstance(node, (ast.Attribute, ast.Name)):
                if isinstance(getattr(node, "ctx", None), ast.Load):
                    dotted = resolve_dotted(node, imports)
                    # only report the outermost attribute chain once
                    if isinstance(node, ast.Name) and imports.get(node.id) == node.id:
                        dotted = None  # a bare module reference, not a read
            elif isinstance(node, ast.ImportFrom) and not node.level:
                for alias in node.names:
                    candidate = f"{node.module}.{alias.name}"
                    if candidate in self.BANNED:
                        yield self.finding(
                            context,
                            node,
                            f"importing wall-clock source {candidate}; "
                            "simulation code must use Simulator.now",
                        )
                continue
            if dotted in self.BANNED:
                yield self.finding(
                    context,
                    node,
                    f"wall-clock read {dotted} in a simulation path; "
                    "use Simulator.now (repro.obs is the telemetry exemption)",
                )


# --------------------------------------------------------------------------
# seeded-rng-only
# --------------------------------------------------------------------------


class SeededRngOnly(Rule):
    name = "seeded-rng-only"
    severity = Severity.ERROR
    description = "require seeded, injected RNG streams (no global RNG state)"
    rationale = (
        "module-level numpy.random / random calls share hidden global state; "
        "the repo idiom is np.random.default_rng((seed, salt, index)) per "
        "stream, passed down explicitly"
    )

    #: numpy.random attributes that are constructors of explicit streams.
    SEEDABLE_CONSTRUCTORS: Set[str] = {
        "default_rng",
        "RandomState",
        "SeedSequence",
        "Generator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "BitGenerator",
    }

    def check(self, context: FileContext) -> Iterable[Finding]:
        imports = build_import_table(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted is None:
                continue
            if dotted.startswith("numpy.random."):
                leaf = dotted.rsplit(".", 1)[1]
                if leaf in self.SEEDABLE_CONSTRUCTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            context,
                            node,
                            f"{leaf}() without a seed is nondeterministic; "
                            "pass an explicit seed tuple like "
                            "default_rng((seed, salt, index))",
                        )
                else:
                    yield self.finding(
                        context,
                        node,
                        f"module-level numpy.random.{leaf} uses hidden global "
                        "state; use a seeded default_rng(...) Generator "
                        "injected by the caller",
                    )
            elif dotted.startswith("random.") and dotted.count(".") == 1:
                leaf = dotted.rsplit(".", 1)[1]
                if leaf == "Random" and (node.args or node.keywords):
                    continue
                yield self.finding(
                    context,
                    node,
                    f"stdlib random.{leaf} draws from global or OS entropy; "
                    "use a seeded numpy Generator injected by the caller",
                )


# --------------------------------------------------------------------------
# sim-time-no-float-eq
# --------------------------------------------------------------------------

#: Identifier fragments that mark an expression as simulated-time-valued.
TIME_WORDS: Set[str] = {
    "now",
    "time",
    "start",
    "end",
    "delay",
    "latency",
    "deadline",
    "makespan",
    "elapsed",
    "duration",
    "timestamp",
    "when",
}


def _is_time_expression(node: ast.AST) -> bool:
    identifier = _terminal_identifier(node)
    if identifier is None:
        return False
    words = identifier.lower().split("_")
    return any(word in TIME_WORDS for word in words)


class SimTimeNoFloatEq(Rule):
    name = "sim-time-no-float-eq"
    severity = Severity.ERROR
    description = "forbid ==/!= between simulated-time expressions and float literals"
    rationale = (
        "simulated timestamps are sums of float durations; exact equality "
        "against a float literal depends on rounding, so order with <=/>= or "
        "compare with math.isclose"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for literal, other in ((left, right), (right, left)):
                    if (
                        isinstance(literal, ast.Constant)
                        and type(literal.value) is float
                        and _is_time_expression(other)
                    ):
                        yield self.finding(
                            context,
                            node,
                            f"exact float comparison of simulated time "
                            f"'{_terminal_identifier(other)}' against "
                            f"{literal.value!r}; use ordering or math.isclose",
                        )
                        break


# --------------------------------------------------------------------------
# raw-duration-literal
# --------------------------------------------------------------------------

#: callee name -> positional indexes that carry a time/duration in seconds.
TIMING_CALLEES: Dict[str, Tuple[int, ...]] = {
    "schedule": (0,),
    "schedule_at": (0,),
    "push": (0,),
    "acquire": (0, 1),
    "submit": (0,),
}

TIMING_KEYWORDS: Set[str] = {"delay", "time", "duration", "at", "deadline"}


class RawDurationLiteral(Rule):
    name = "raw-duration-literal"
    severity = Severity.WARNING
    description = "flag bare numeric durations at scheduling call sites"
    rationale = (
        "a bare literal hides its unit; repro.units helpers (us/ms/ns, "
        "transfer_time) or a named config constant say what the number means"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node)
            if callee not in TIMING_CALLEES:
                continue
            if not isinstance(node.func, ast.Attribute):
                continue  # bare push()/submit() is unlikely to be scheduling
            for index in TIMING_CALLEES[callee]:
                if index >= len(node.args):
                    continue
                value = _numeric_literal(node.args[index])
                if value is not None and value != 0:
                    yield self.finding(
                        context,
                        node.args[index],
                        f"bare duration literal {value:g} passed to "
                        f"{callee}(); use repro.units helpers (us/ms/ns) or "
                        "a named constant",
                    )
            for keyword in node.keywords:
                if keyword.arg in TIMING_KEYWORDS:
                    value = _numeric_literal(keyword.value)
                    if value is not None and value != 0:
                        yield self.finding(
                            context,
                            keyword.value,
                            f"bare duration literal {value:g} for "
                            f"{callee}({keyword.arg}=...); use repro.units "
                            "helpers (us/ms/ns) or a named constant",
                        )


# --------------------------------------------------------------------------
# closure-capture-in-schedule
# --------------------------------------------------------------------------

SCHEDULE_CALLEES: Set[str] = {"schedule", "schedule_at", "push", "call_later"}


def _bound_names(func: ast.AST) -> Set[str]:
    """Parameter names of a function/lambda (bound at call time, safe)."""
    args = getattr(func, "args", None)
    if args is None:
        return set()
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _free_loads(func: ast.AST) -> Set[str]:
    """Names a function/lambda body reads but never binds itself.

    Default-argument expressions are excluded: they evaluate at definition
    time, which is exactly the safe ``lambda n=name: ...`` binding idiom.
    """
    bound = _bound_names(func)
    loads: Set[str] = set()
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
                else:
                    bound.add(node.id)
    return loads - bound


class _ScheduleClosureVisitor(ast.NodeVisitor):
    """Tracks enclosing loop variables and inspects scheduling call sites."""

    def __init__(self, rule: "ClosureCaptureInSchedule", context: FileContext):
        self.rule = rule
        self.context = context
        self.findings: List[Finding] = []
        self.loop_stack: List[Set[str]] = []
        #: inner defs that capture a loop variable, by name
        self.tainted_defs: Dict[str, Set[str]] = {}

    # -- loops -----------------------------------------------------------
    def _loop_vars(self) -> Set[str]:
        vars_: Set[str] = set()
        for frame in self.loop_stack:
            vars_ |= frame
        return vars_

    def _visit_loop(self, node: ast.AST, targets: Set[str]) -> None:
        self.loop_stack.append(targets)
        for stmt in getattr(node, "body", []):
            self.visit(stmt)
        self.loop_stack.pop()
        for stmt in getattr(node, "orelse", []):
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._visit_loop(node, _target_names(node.target))

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self.visit(node.iter)
        self._visit_loop(node, _target_names(node.target))

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._visit_loop(node, set())

    # -- functions -------------------------------------------------------
    def _visit_function(self, node: ast.AST) -> None:
        name = getattr(node, "name", None)
        if self.loop_stack and name is not None:
            captured = _free_loads(node) & self._loop_vars()
            if captured:
                self.tainted_defs[name] = captured
        saved = self.loop_stack
        self.loop_stack = []
        for stmt in getattr(node, "body", []):
            self.visit(stmt)
        self.loop_stack = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- call sites ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = _callee_name(node)
        if callee in SCHEDULE_CALLEES and self.loop_stack:
            loop_vars = self._loop_vars()
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Lambda):
                    captured = _free_loads(arg) & loop_vars
                    if captured:
                        self._report(arg, callee, captured, "lambda")
                elif isinstance(arg, ast.Name) and arg.id in self.tainted_defs:
                    self._report(
                        arg, callee, self.tainted_defs[arg.id], f"'{arg.id}'"
                    )
        self.generic_visit(node)

    def _report(
        self, node: ast.AST, callee: str, captured: Set[str], what: str
    ) -> None:
        names = ", ".join(sorted(captured))
        self.findings.append(
            self.rule.finding(
                self.context,
                node,
                f"{what} passed to {callee}() captures loop variable(s) "
                f"{names} by reference (late binding): every event sees the "
                f"final value; bind with a default arg "
                f"(lambda {names}={names}: ...)",
            )
        )


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


class ClosureCaptureInSchedule(Rule):
    name = "closure-capture-in-schedule"
    severity = Severity.ERROR
    description = "flag scheduled callbacks that late-bind a loop variable"
    rationale = (
        "a lambda scheduled inside a loop closes over the variable, not its "
        "value; by the time the simulator fires the event the loop has "
        "finished and every callback sees the last iteration's value"
    )

    def check(self, context: FileContext) -> Iterable[Finding]:
        visitor = _ScheduleClosureVisitor(self, context)
        visitor.visit(context.tree)
        return visitor.findings


# --------------------------------------------------------------------------
# unordered-iteration
# --------------------------------------------------------------------------


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class UnorderedIteration(Rule):
    name = "unordered-iteration"
    severity = Severity.ERROR
    description = "flag iteration over set/frozenset in scheduling/placement code"
    rationale = (
        "set iteration order depends on insertion history and hashing; when "
        "the elements feed channel selection, placement, or event scheduling "
        "the simulation stops being reproducible — wrap in sorted(...)"
    )
    packages = ("repro.ssd", "repro.layout", "repro.serve")

    def check(self, context: FileContext) -> Iterable[Finding]:
        set_names: Set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assign) and _is_set_expression(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_set_expression(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    set_names.add(node.target.id)

        def iter_sites() -> Iterator[Tuple[ast.AST, ast.AST]]:
            for node in ast.walk(context.tree):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    yield node, node.iter
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                    for generator in node.generators:
                        yield node, generator.iter
                elif isinstance(node, ast.DictComp):
                    for generator in node.generators:
                        yield node, generator.iter

        for site, iterable in iter_sites():
            if _is_set_expression(iterable):
                yield self.finding(
                    context,
                    iterable,
                    "iterating a set literal/constructor directly; wrap in "
                    "sorted(...) so downstream scheduling and placement stay "
                    "deterministic",
                )
            elif isinstance(iterable, ast.Name) and iterable.id in set_names:
                yield self.finding(
                    context,
                    iterable,
                    f"iterating set '{iterable.id}' directly; wrap in "
                    "sorted(...) so downstream scheduling and placement stay "
                    "deterministic",
                )


# --------------------------------------------------------------------------
# exception-hygiene
# --------------------------------------------------------------------------

BLANKET_EXCEPTIONS: Set[str] = {"Exception", "BaseException"}


class ExceptionHygiene(Rule):
    name = "exception-hygiene"
    severity = Severity.ERROR
    description = "forbid bare except / blanket except Exception in sim code"
    rationale = (
        "blanket handlers swallow SimulationError/ProtocolError and keep a "
        "broken simulation running; catch the specific repro.errors type"
    )
    packages = ("repro.ssd", "repro.core", "repro.serve")

    def _blanket_name(self, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Name) and node.id in BLANKET_EXCEPTIONS:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in BLANKET_EXCEPTIONS:
            return node.attr
        if isinstance(node, ast.Tuple):
            for element in node.elts:
                name = self._blanket_name(element)
                if name:
                    return name
        return None

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    context,
                    node,
                    "bare except catches everything including "
                    "KeyboardInterrupt; catch a specific repro.errors type",
                )
                continue
            blanket = self._blanket_name(node.type)
            if blanket:
                yield self.finding(
                    context,
                    node,
                    f"blanket 'except {blanket}' swallows simulation faults; "
                    "catch a specific repro.errors type (SimulationError, "
                    "ProtocolError, ...)",
                )


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

RULE_CLASSES: Tuple[Type[Rule], ...] = (
    NoWallClock,
    SeededRngOnly,
    SimTimeNoFloatEq,
    RawDurationLiteral,
    ClosureCaptureInSchedule,
    UnorderedIteration,
    ExceptionHygiene,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


def rules_by_name() -> Dict[str, Type[Rule]]:
    return {cls.name: cls for cls in RULE_CLASSES}
