"""Deep pass: interprocedural seed provenance for ``default_rng`` sites.

The determinism contract requires every RNG stream to be rooted in the
experiment seed (``repro.config``), typically as
``np.random.default_rng((seed, SALT, index))``.  The per-file
``seeded-rng-only`` rule already rejects *argless* construction; this pass
goes further and proves the seed expression is actually *rooted*: built from
a seed-named value (parameter, attribute, or module salt constant), not a
constant smuggled in or an arbitrary unrelated variable laundered through a
helper.

Atom classification over the seed expression (recursing through tuples,
arithmetic, and local assignments):

* **rooted** — names/attributes whose identifier contains ``seed``/``salt``/
  ``entropy``/``key``, or module-level ``_SALT_*``-style constants;
* **constant** — numeric/string literals (fine *alongside* a rooted atom —
  that is exactly the ``(seed, SALT)`` idiom — but a seed made only of
  constants is flagged);
* **parameter** — a non-seed-named parameter of the enclosing function: the
  pass follows every project call site of that function and requires each to
  pass a rooted expression (laundering detection);
* **unknown** — anything else (flagged: the seed cannot be proven rooted).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from .findings import Finding
from .project import DeepRule, FunctionInfo, ModuleInfo, ProjectGraph
from .rules import SIM_PACKAGES, resolve_dotted

#: Identifier fragments that mark a value as seed-rooted by convention.
_ROOT_TOKENS = ("seed", "salt", "entropy", "spawn_key", "rng_key")

_MAX_DEPTH = 8


def _name_is_rooted(name: str) -> bool:
    lowered = name.lower()
    return any(token in lowered for token in _ROOT_TOKENS)


@dataclass
class Atoms:
    """Classification of every leaf of a seed expression."""

    rooted: bool = False
    constants: int = 0
    params: List[str] = None  # type: ignore[assignment]
    unknown: List[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.params is None:
            self.params = []
        if self.unknown is None:
            self.unknown = []

    def merge(self, other: "Atoms") -> None:
        self.rooted = self.rooted or other.rooted
        self.constants += other.constants
        self.params.extend(other.params)
        self.unknown.extend(other.unknown)


def _local_assignments(func: Optional[FunctionInfo], tree: ast.AST) -> Dict[str, ast.AST]:
    """Single-target assignments visible to the seed expression."""
    scope: ast.AST = func.node if func is not None else tree
    table: Dict[str, ast.AST] = {}
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                table[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                table[node.target.id] = node.value
    return table


def classify_atoms(
    expr: ast.AST,
    params: Set[str],
    assignments: Dict[str, ast.AST],
    depth: int = 0,
    seen: Optional[Set[str]] = None,
) -> Atoms:
    """Classify the leaves of ``expr`` (see module docstring)."""
    atoms = Atoms()
    if depth > _MAX_DEPTH:
        atoms.unknown.append("<depth limit>")
        return atoms
    if seen is None:
        seen = set()

    if isinstance(expr, ast.Constant):
        if not isinstance(expr.value, (bool, type(None))):
            atoms.constants += 1
        return atoms
    if isinstance(expr, (ast.Tuple, ast.List)):
        for elt in expr.elts:
            atoms.merge(classify_atoms(elt, params, assignments, depth + 1, seen))
        return atoms
    if isinstance(expr, ast.BinOp):
        atoms.merge(classify_atoms(expr.left, params, assignments, depth + 1, seen))
        atoms.merge(classify_atoms(expr.right, params, assignments, depth + 1, seen))
        return atoms
    if isinstance(expr, ast.UnaryOp):
        return classify_atoms(expr.operand, params, assignments, depth + 1, seen)
    if isinstance(expr, ast.Call):
        # hash((seed, ...)), int(seed), seq.spawn(...) — classify the pieces.
        func_name = ""
        if isinstance(expr.func, ast.Name):
            func_name = expr.func.id
        elif isinstance(expr.func, ast.Attribute):
            func_name = expr.func.attr
            atoms.merge(
                classify_atoms(expr.func.value, params, assignments, depth + 1, seen)
            )
        if _name_is_rooted(func_name):
            atoms.rooted = True
        for arg in expr.args:
            atoms.merge(classify_atoms(arg, params, assignments, depth + 1, seen))
        for kw in expr.keywords:
            atoms.merge(classify_atoms(kw.value, params, assignments, depth + 1, seen))
        return atoms
    if isinstance(expr, ast.Attribute):
        if _name_is_rooted(expr.attr):
            atoms.rooted = True
            return atoms
        return classify_atoms(expr.value, params, assignments, depth + 1, seen)
    if isinstance(expr, ast.Name):
        name = expr.id
        if _name_is_rooted(name):
            atoms.rooted = True
            return atoms
        if name in seen:
            atoms.unknown.append(name)
            return atoms
        if name in assignments:
            seen = seen | {name}
            return classify_atoms(assignments[name], params, assignments, depth + 1, seen)
        if name in params:
            atoms.params.append(name)
            return atoms
        atoms.unknown.append(name)
        return atoms
    if isinstance(expr, ast.Subscript):
        return classify_atoms(expr.value, params, assignments, depth + 1, seen)
    if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
        atoms.constants += 1
        return atoms
    atoms.unknown.append(type(expr).__name__)
    return atoms


def _module_in_scope(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in SIM_PACKAGES
    )


class SeedProvenance(DeepRule):
    name = "seed-provenance"
    description = "default_rng seed not provably rooted in the experiment seed"
    rationale = (
        "every RNG stream must derive from the config seed plus a static "
        "salt; a constant or laundered seed silently decouples a subsystem "
        "from the experiment seed, so two runs with different --seed values "
        "share 'random' draws and divergence detection goes blind"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            if not _module_in_scope(info.module):
                continue
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = resolve_dotted(node.func, info.imports)
                if dotted is None or not dotted.endswith("default_rng"):
                    continue
                if not node.args and not node.keywords:
                    continue  # argless: per-file seeded-rng-only owns this
                seed_expr = node.args[0] if node.args else node.keywords[0].value
                for finding in self._check_site(project, info, node, seed_expr):
                    yield finding

    def _check_site(
        self,
        project: ProjectGraph,
        info: ModuleInfo,
        node: ast.Call,
        seed_expr: ast.AST,
    ) -> Iterable[Finding]:
        func = project.enclosing_function(info, node.lineno)
        params = set(func.params) if func is not None else set()
        assignments = _local_assignments(func, info.tree)
        atoms = classify_atoms(seed_expr, params, assignments)

        if atoms.rooted:
            return
        if atoms.unknown:
            yield self.finding(
                info,
                node,
                "seed expression cannot be proven rooted in the experiment "
                f"seed (unresolved: {', '.join(sorted(set(atoms.unknown)))}); "
                "derive it from a seed/salt-named value rooted in "
                "repro.config",
            )
            return
        if atoms.params:
            # Laundering check: every project call site must pass a rooted
            # expression for each non-seed-named parameter feeding the seed.
            if func is None:
                return
            yield from self._check_callers(project, info, node, func, atoms.params)
            return
        if atoms.constants:
            yield self.finding(
                info,
                node,
                "constant seed: this RNG stream is decoupled from the "
                "experiment seed; build the seed as (seed, SALT, ...) from "
                "a value rooted in repro.config",
            )

    def _check_callers(
        self,
        project: ProjectGraph,
        info: ModuleInfo,
        node: ast.Call,
        func: FunctionInfo,
        seed_params: List[str],
    ) -> Iterable[Finding]:
        sites = project.call_sites(func.qualname)
        if not sites:
            yield self.finding(
                info,
                node,
                f"seed flows from parameter(s) {', '.join(sorted(set(seed_params)))} "
                f"of {func.qualname} but no project call site was found; "
                "rename the parameter to include 'seed' to declare the "
                "contract, or root the seed locally",
            )
            return
        for site in sites:
            caller_info = project.modules.get(site.caller_module)
            if caller_info is None:
                continue
            bound = func.bind_args(site.node)
            caller_func = project.enclosing_function(caller_info, site.line)
            caller_params = set(caller_func.params) if caller_func else set()
            caller_assignments = _local_assignments(caller_func, caller_info.tree)
            for param in sorted(set(seed_params)):
                arg = bound.get(param)
                if arg is None:
                    continue  # defaulted or *args — nothing to check
                caller_atoms = classify_atoms(arg, caller_params, caller_assignments)
                rooted = caller_atoms.rooted or (
                    not caller_atoms.unknown
                    and not caller_atoms.params
                    and caller_atoms.constants == 0
                )
                # A caller passing its own seed-named parameter is rooted; a
                # caller passing a literal through a NON-seed-named parameter
                # is exactly the laundering this pass exists to catch.
                if caller_atoms.rooted:
                    continue
                if caller_atoms.constants and not caller_atoms.params:
                    yield self.finding(
                        caller_info,
                        site.node,
                        f"constant passed for parameter '{param}' of "
                        f"{func.qualname}, which feeds a default_rng seed at "
                        f"{info.path}:{node.lineno}; the parameter is not "
                        "seed-named, so this launders a fixed seed — pass a "
                        "value rooted in the experiment seed or rename the "
                        "parameter to include 'seed'",
                    )
                elif not rooted:
                    yield self.finding(
                        caller_info,
                        site.node,
                        f"argument for parameter '{param}' of {func.qualname} "
                        f"(feeds the default_rng seed at {info.path}:"
                        f"{node.lineno}) is not provably rooted in the "
                        "experiment seed",
                    )
