"""reprolint — simulator-aware static analysis for the ECSSD reproduction.

The discrete-event simulator's value rests on bit-for-bit determinism
(``repro.ssd.events`` promises insertion-order tie-breaking and run-to-run
reproducibility).  This package mechanically enforces the bug classes that
quietly break that promise: wall-clock reads, unseeded RNG, float-equality on
simulated time, unit-less duration literals, late-binding closures in
scheduled callbacks, hash-ordered set iteration, and blanket exception
handlers.  See DESIGN.md's "Determinism contract" for the rule-by-rule
rationale.

Beyond the per-file rules, ``--deep`` runs whole-program passes over one
shared project graph (:mod:`repro.lint.project`): interprocedural seed
provenance, unit/dimension flow, and the package layering contract.  The
runtime half lives in :mod:`repro.lint.simsan` — a zero-overhead-when-
disabled sanitizer asserting the same contract on live event loops.

Usage::

    python -m repro.lint src/repro          # standalone
    python -m repro.lint src/repro --deep   # + whole-program passes
    python -m repro lint src/repro          # via the repro CLI
    REPRO_SIMSAN=1 repro serve ...          # runtime sanitizer
    # reprolint: disable=<rule>             # inline suppression
    reprolint-baseline.json                 # justified grandfathered findings
"""

from .baseline import Baseline, BaselineEntry, BaselineError, discover_baseline
from .deep import DEEP_RULE_CLASSES, default_deep_rules, run_deep
from .engine import FileContext, LintEngine, Rule, module_name_for
from .findings import Finding, Severity
from .project import DeepRule, ProjectGraph, package_of
from .rules import (
    EXCLUDED_PACKAGES,
    RULE_CLASSES,
    SIM_PACKAGES,
    default_rules,
    discover_sim_packages,
    rules_by_name,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "DEEP_RULE_CLASSES",
    "DeepRule",
    "EXCLUDED_PACKAGES",
    "FileContext",
    "Finding",
    "LintEngine",
    "ProjectGraph",
    "RULE_CLASSES",
    "Rule",
    "SIM_PACKAGES",
    "Severity",
    "default_deep_rules",
    "default_rules",
    "discover_baseline",
    "discover_sim_packages",
    "module_name_for",
    "package_of",
    "rules_by_name",
    "run_deep",
]
