"""reprolint — simulator-aware static analysis for the ECSSD reproduction.

The discrete-event simulator's value rests on bit-for-bit determinism
(``repro.ssd.events`` promises insertion-order tie-breaking and run-to-run
reproducibility).  This package mechanically enforces the bug classes that
quietly break that promise: wall-clock reads, unseeded RNG, float-equality on
simulated time, unit-less duration literals, late-binding closures in
scheduled callbacks, hash-ordered set iteration, and blanket exception
handlers.  See DESIGN.md's "Determinism contract" for the rule-by-rule
rationale.

Usage::

    python -m repro.lint src/repro          # standalone
    python -m repro lint src/repro          # via the repro CLI
    # reprolint: disable=<rule>             # inline suppression
    reprolint-baseline.json                 # justified grandfathered findings
"""

from .baseline import Baseline, BaselineEntry, BaselineError, discover_baseline
from .engine import FileContext, LintEngine, Rule, module_name_for
from .findings import Finding, Severity
from .rules import RULE_CLASSES, default_rules, rules_by_name

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FileContext",
    "Finding",
    "LintEngine",
    "RULE_CLASSES",
    "Rule",
    "Severity",
    "default_rules",
    "discover_baseline",
    "module_name_for",
    "rules_by_name",
]
