"""Deep pass: unit/dimension flow across the simulator.

Everything in the simulator is a bare ``float``, so nothing stops a
milliseconds value reaching a seconds-typed scheduler or a ``bytes`` count
being added to a ``bytes/s`` rate — the classic silent-corruption bug in
event-driven models.  This pass infers dimensions from the
:mod:`repro.units` vocabulary and propagates them through local assignments
and arithmetic:

* **sources** — ``us()/ms()/ns()`` and ``transfer_time()/compute_time()``
  produce SECONDS; ``gbps()/mbps()`` BYTES_PER_S; ``gflops()/gops()``
  OPS_PER_S; the ``KiB``…``TB`` constants BYTES; ``SECOND``…``NANOSECOND``
  SECONDS.  Parameter names declare dimensions by suffix convention
  (``*_s``/``*_seconds`` → SECONDS, ``*_bytes`` → BYTES, ``*_bps`` →
  BYTES_PER_S, ``*_ops`` → OPS);
* **propagation** — ``+``/``-`` require matching dimensions;
  ``SECONDS * BYTES_PER_S → BYTES``, ``BYTES / BYTES_PER_S → SECONDS``,
  ``OPS / OPS_PER_S → SECONDS``, and so on; multiplying or dividing by a
  dimensionless scalar preserves the dimension;
* **sinks** — scheduler entry points (``schedule``, ``push``, ``acquire``,
  ``block_until``…) demand SECONDS; ``transfer_time(num_bytes,
  bandwidth_bps)`` demands (BYTES, BYTES_PER_S); project functions demand
  whatever their parameter suffixes declare.  Passing a *known different*
  dimension is a finding; UNKNOWN stays silent (the pass is conservative —
  no false positives on un-annotated code).

It also generalizes the per-file ``raw-duration-literal`` rule across module
boundaries: a bare nonzero numeric literal passed to *another module's*
function for a seconds-suffixed parameter is flagged even though the callee
is not one of the hard-coded scheduler names.
"""

from __future__ import annotations

import ast
import enum
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import Finding
from .project import DeepRule, FunctionInfo, ModuleInfo, ProjectGraph
from .rules import SIM_PACKAGES, resolve_dotted


class Dim(enum.Enum):
    SECONDS = "seconds"
    BYTES = "bytes"
    BYTES_PER_S = "bytes/s"
    OPS_PER_S = "ops/s"
    OPS = "ops"
    DIMENSIONLESS = "dimensionless"
    UNKNOWN = "unknown"


#: repro.units callables -> dimension of their return value.
_CALL_SOURCES: Dict[str, Dim] = {
    "us": Dim.SECONDS,
    "ms": Dim.SECONDS,
    "ns": Dim.SECONDS,
    "transfer_time": Dim.SECONDS,
    "compute_time": Dim.SECONDS,
    "gbps": Dim.BYTES_PER_S,
    "mbps": Dim.BYTES_PER_S,
    "gflops": Dim.OPS_PER_S,
    "gops": Dim.OPS_PER_S,
}

#: repro.units module constants -> dimension.
_BYTES_CONSTANTS = ("KiB", "MiB", "GiB", "TiB", "KB", "MB", "GB", "TB")
_SECONDS_CONSTANTS = ("SECOND", "MILLISECOND", "MICROSECOND", "NANOSECOND")

#: Known sinks: callee name -> {arg position: expected dim}.  Mirrors (and
#: extends) TIMING_CALLEES from the per-file rules.
_SINKS: Dict[str, Dict[int, Dim]] = {
    "schedule": {0: Dim.SECONDS},
    "schedule_at": {0: Dim.SECONDS},
    "push": {0: Dim.SECONDS},
    "block_until": {0: Dim.SECONDS},
    "acquire": {0: Dim.SECONDS, 1: Dim.SECONDS},
    "transfer_time": {0: Dim.BYTES, 1: Dim.BYTES_PER_S},
    "compute_time": {1: Dim.OPS_PER_S},
    # Wrapping an already-seconds value doubles the conversion:
    "us": {0: Dim.DIMENSIONLESS},
    "ms": {0: Dim.DIMENSIONLESS},
    "ns": {0: Dim.DIMENSIONLESS},
}

#: Parameter-name suffixes that declare a dimension by convention.
_PARAM_SUFFIXES: Tuple[Tuple[str, Dim], ...] = (
    ("_seconds", Dim.SECONDS),
    ("_s", Dim.SECONDS),
    ("_bytes", Dim.BYTES),
    ("_bps", Dim.BYTES_PER_S),
    ("_ops", Dim.OPS),
)

#: Time-ish parameter names for the cross-module raw-literal check.
_TIME_PARAM_NAMES = ("duration", "delay", "timeout", "deadline", "interval")

_MUL_TABLE: Dict[Tuple[Dim, Dim], Dim] = {
    (Dim.SECONDS, Dim.BYTES_PER_S): Dim.BYTES,
    (Dim.BYTES_PER_S, Dim.SECONDS): Dim.BYTES,
    (Dim.SECONDS, Dim.OPS_PER_S): Dim.OPS,
    (Dim.OPS_PER_S, Dim.SECONDS): Dim.OPS,
}

_DIV_TABLE: Dict[Tuple[Dim, Dim], Dim] = {
    (Dim.BYTES, Dim.SECONDS): Dim.BYTES_PER_S,
    (Dim.BYTES, Dim.BYTES_PER_S): Dim.SECONDS,
    (Dim.OPS, Dim.SECONDS): Dim.OPS_PER_S,
    (Dim.OPS, Dim.OPS_PER_S): Dim.SECONDS,
    (Dim.SECONDS, Dim.SECONDS): Dim.DIMENSIONLESS,
    (Dim.BYTES, Dim.BYTES): Dim.DIMENSIONLESS,
    (Dim.OPS, Dim.OPS): Dim.DIMENSIONLESS,
}


def param_dim(name: str) -> Dim:
    for suffix, dim in _PARAM_SUFFIXES:
        if name.endswith(suffix):
            return dim
    return Dim.UNKNOWN


def _is_units_callee(dotted: Optional[str], name: str) -> bool:
    """True when a call resolves to repro.units (or is a bare units name)."""
    if dotted is None:
        return False
    return dotted == f"repro.units.{name}" or dotted == name


class _DimInferencer:
    """Infers dimensions of expressions within one function scope."""

    def __init__(self, info: ModuleInfo, func: Optional[FunctionInfo]) -> None:
        self.info = info
        self.locals: Dict[str, Dim] = {}
        if func is not None:
            for param in func.params:
                dim = param_dim(param)
                if dim is not Dim.UNKNOWN:
                    self.locals[param] = dim
        self.mixes: Dict[int, Tuple[ast.AST, Dim, Dim]] = {}

    def infer(self, expr: ast.AST, depth: int = 0) -> Dim:
        if depth > 12:
            return Dim.UNKNOWN
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float)) and not isinstance(
                expr.value, bool
            ):
                return Dim.DIMENSIONLESS
            return Dim.UNKNOWN
        if isinstance(expr, ast.Name):
            dim = self.locals.get(expr.id)
            if dim is not None:
                return dim
            if expr.id in _BYTES_CONSTANTS:
                return Dim.BYTES
            if expr.id in _SECONDS_CONSTANTS:
                return Dim.SECONDS
            inferred = param_dim(expr.id)
            return inferred
        if isinstance(expr, ast.Attribute):
            if expr.attr in _BYTES_CONSTANTS:
                return Dim.BYTES
            if expr.attr in _SECONDS_CONSTANTS:
                return Dim.SECONDS
            return param_dim(expr.attr)
        if isinstance(expr, ast.Call):
            name = ""
            if isinstance(expr.func, ast.Name):
                name = expr.func.id
            elif isinstance(expr.func, ast.Attribute):
                name = expr.func.attr
            dotted = resolve_dotted(expr.func, self.info.imports)
            if name in _CALL_SOURCES and (
                _is_units_callee(dotted, name) or dotted is None
            ):
                return _CALL_SOURCES[name]
            return Dim.UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand, depth + 1)
        if isinstance(expr, ast.IfExp):
            then = self.infer(expr.body, depth + 1)
            other = self.infer(expr.orelse, depth + 1)
            return then if then is other else Dim.UNKNOWN
        if isinstance(expr, ast.BinOp):
            left = self.infer(expr.left, depth + 1)
            right = self.infer(expr.right, depth + 1)
            if isinstance(expr.op, (ast.Add, ast.Sub)):
                if (
                    left is not Dim.UNKNOWN
                    and right is not Dim.UNKNOWN
                    and left is not right
                    and Dim.DIMENSIONLESS not in (left, right)
                ):
                    self.mixes.setdefault(id(expr), (expr, left, right))
                    return Dim.UNKNOWN
                if left is right:
                    return left
                for side in (left, right):
                    if side not in (Dim.UNKNOWN, Dim.DIMENSIONLESS):
                        return side
                return Dim.UNKNOWN
            if isinstance(expr.op, ast.Mult):
                if (left, right) in _MUL_TABLE:
                    return _MUL_TABLE[(left, right)]
                if left is Dim.DIMENSIONLESS and right is not Dim.UNKNOWN:
                    return right
                if right is Dim.DIMENSIONLESS and left is not Dim.UNKNOWN:
                    return left
                return Dim.UNKNOWN
            if isinstance(expr.op, ast.Div):
                if (left, right) in _DIV_TABLE:
                    return _DIV_TABLE[(left, right)]
                if right is Dim.DIMENSIONLESS and left is not Dim.UNKNOWN:
                    return left
                return Dim.UNKNOWN
            return Dim.UNKNOWN
        return Dim.UNKNOWN

    def learn(self, node: ast.AST) -> None:
        """Record dims of single-target local assignments, in source order."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                dim = self.infer(node.value)
                if dim is Dim.UNKNOWN:
                    dim = param_dim(target.id)
                if dim is not Dim.UNKNOWN:
                    self.locals[target.id] = dim
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                dim = self.infer(node.value)
                if dim is not Dim.UNKNOWN:
                    self.locals[node.target.id] = dim


def _module_in_scope(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in SIM_PACKAGES
    )


def _nonzero_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        value = node.value
        return isinstance(value, (int, float)) and not isinstance(value, bool) and value != 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _nonzero_literal(node.operand)
    return False


class UnitFlow(DeepRule):
    name = "unit-flow"
    description = "dimension mismatch or raw literal crossing a unit boundary"
    rationale = (
        "sim quantities are bare floats; mixing seconds with bytes/s or "
        "handing a milliseconds literal to a seconds-typed API corrupts "
        "every downstream latency silently — dimensions must flow through "
        "the repro.units vocabulary"
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            if not _module_in_scope(info.module):
                continue
            yield from self._check_module(project, info)

    def _scopes(
        self, project: ProjectGraph, info: ModuleInfo
    ) -> Iterable[Tuple[Optional[FunctionInfo], ast.AST]]:
        funcs = [
            f for f in project.functions().values() if f.module == info.module
        ]
        for func in funcs:
            yield func, func.node
        yield None, info.tree

    def _check_module(
        self, project: ProjectGraph, info: ModuleInfo
    ) -> Iterable[Finding]:
        for func, scope in self._scopes(project, info):
            inferencer = _DimInferencer(info, func)
            for node in _scope_walk(scope):
                inferencer.learn(node)
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    inferencer.infer(node)  # records any dimension mix
                if isinstance(node, ast.Call):
                    yield from self._check_call(project, info, inferencer, node)
            for expr, left, right in inferencer.mixes.values():
                yield self.finding(
                    info,
                    expr,
                    f"mixing dimensions: {left.value} {_op_label(expr)} "
                    f"{right.value}; convert through repro.units first",
                )

    def _check_call(
        self,
        project: ProjectGraph,
        info: ModuleInfo,
        inferencer: _DimInferencer,
        node: ast.Call,
    ) -> Iterable[Finding]:
        name = ""
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr

        # 1. Known sinks (scheduler/units entry points) by callee name.
        expected = _SINKS.get(name)
        if expected is not None:
            for pos, want in expected.items():
                if pos >= len(node.args):
                    continue
                got = inferencer.infer(node.args[pos])
                if want is Dim.DIMENSIONLESS:
                    # us()/ms()/ns() double-wrap: feeding an already-seconds
                    # value through a unit constructor converts twice.
                    if got is Dim.SECONDS:
                        yield self.finding(
                            info,
                            node,
                            f"{name}() applied to a value already in seconds "
                            "— double unit conversion",
                        )
                    continue
                if got in (Dim.UNKNOWN, Dim.DIMENSIONLESS):
                    continue
                if got is not want:
                    yield self.finding(
                        info,
                        node,
                        f"argument {pos} of {name}() has dimension "
                        f"{got.value}, expected {want.value}",
                    )

        # 2. Project functions: parameter suffixes declare dimensions, and a
        #    raw nonzero literal for a seconds parameter across a module
        #    boundary is the interprocedural raw-duration-literal.
        target = project.resolve_call(info, node)
        if target is None:
            return
        bound = target.bind_args(node)
        for param, arg in bound.items():
            want = param_dim(param)
            time_named = want is Dim.SECONDS or any(
                tok in param.lower() for tok in _TIME_PARAM_NAMES
            )
            if want is Dim.UNKNOWN and not time_named:
                continue
            got = inferencer.infer(arg)
            if (
                want is not Dim.UNKNOWN
                and got not in (Dim.UNKNOWN, Dim.DIMENSIONLESS)
                and got is not want
            ):
                yield self.finding(
                    info,
                    node,
                    f"parameter '{param}' of {target.qualname} declares "
                    f"{want.value} but the argument has dimension {got.value}",
                )
            elif (
                want is Dim.SECONDS
                and target.module != info.module
                and _nonzero_literal(arg)
            ):
                yield self.finding(
                    info,
                    node,
                    f"raw numeric literal passed across a module boundary "
                    f"for seconds parameter '{param}' of {target.qualname}; "
                    "wrap it in a repro.units constructor (us/ms/ns)",
                )


def _op_label(expr: ast.BinOp) -> str:
    return "+" if isinstance(expr.op, ast.Add) else "-"


def _scope_walk(root: ast.AST) -> Iterable[ast.AST]:
    """Walk ``root`` without descending into nested function scopes.

    Each function is analyzed exactly once — by its own
    :class:`_DimInferencer` with its own parameter dims — so a nested
    ``def`` must not be re-walked by the enclosing scope.  Breadth-first,
    matching :func:`ast.walk`, so assignments are learned before the deeper
    expressions that use them.
    """
    from collections import deque

    queue: "deque[ast.AST]" = deque([root])
    while queue:
        node = queue.popleft()
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        yield node
        queue.extend(ast.iter_child_nodes(node))
