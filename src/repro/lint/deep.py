"""Registry and driver for the whole-program (``--deep``) passes.

``repro lint --deep`` runs the per-file rules first, then builds one
:class:`~repro.lint.project.ProjectGraph` and feeds it to every registered
:class:`~repro.lint.project.DeepRule`.  Deep findings go through the same
baseline/suppression machinery as per-file findings, so a justified
grandfathered entry silences a deep finding exactly like a shallow one.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Type, Union

from .findings import Finding
from .layering import LayeringContract
from .project import (
    DeepRule,
    ProjectGraph,
    load_cached_findings,
    run_deep_rules,
    save_cached_findings,
    tree_fingerprint,
)
from .provenance import SeedProvenance
from .unitflow import UnitFlow

DEEP_RULE_CLASSES: Sequence[Type[DeepRule]] = (
    LayeringContract,
    SeedProvenance,
    UnitFlow,
)


def default_deep_rules() -> List[DeepRule]:
    return [cls() for cls in DEEP_RULE_CLASSES]


def run_deep(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[DeepRule]] = None,
    cache_path: Optional[Union[str, Path]] = None,
) -> List[Finding]:
    """Deep findings for ``paths``, optionally memoized via ``cache_path``.

    The cache replays findings only when the sha256 of *every* source file
    matches the cached fingerprint, so it can never serve stale results; CI
    uses it to share the expensive graph build between workflow steps.
    """
    if rules is None:
        rules = default_deep_rules()
    fingerprint = tree_fingerprint(paths)
    if cache_path is not None:
        cached = load_cached_findings(cache_path, fingerprint)
        if cached is not None:
            return cached
    project = ProjectGraph.build(paths)
    findings = run_deep_rules(project, rules)
    if cache_path is not None:
        save_cached_findings(cache_path, fingerprint, findings)
    return findings
