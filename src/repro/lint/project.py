"""The whole-program model behind ``repro lint --deep``.

The per-file rule engine (:mod:`repro.lint.engine`) sees one AST at a time,
so it cannot catch a seed laundered through a helper in another module, a
milliseconds value handed to a seconds-typed function, or a serve-layer
import reaching into FTL internals.  :class:`ProjectGraph` parses the whole
package once and derives the three shared structures every deep pass feeds
on:

* **modules** — one :class:`ModuleInfo` per file: AST, import table,
  suppression table, and symbol spans (shared with the per-file engine);
* **import graph** — every import statement resolved to a project module
  where possible (``from .. import obs`` resolves to ``repro.obs``, not the
  package root), at any nesting depth, so lazy function-level imports count;
* **function index + call sites** — every ``def`` under its qualified name,
  plus every call site resolved back to a project function with its
  argument-to-parameter binding, which is what makes interprocedural seed
  provenance possible.

Building the graph is the expensive step, so the deep CLI path memoizes
deep-pass findings keyed on a fingerprint of every source file
(``--graph-cache``): CI builds once and later steps replay instantly.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .engine import (
    FileContext,
    build_symbol_spans,
    extend_suppressions_to_statements,
    iter_python_files,
    module_name_for,
    scan_suppressions,
)
from .findings import Finding, Severity
from .rules import build_import_table


@dataclass
class FunctionInfo:
    """One ``def`` (or method) in the project, addressable by qualname."""

    qualname: str
    module: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    params: List[str]
    lineno: int

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[1]

    def bind_args(self, call: ast.Call) -> Dict[str, ast.AST]:
        """Map this function's parameter names to the call's argument exprs.

        Positional args bind in order (``self``/``cls`` of methods is skipped
        when the call has fewer positionals than parameters would need);
        keywords bind by name; ``*args``/``**kwargs`` are ignored — deep
        passes only reason about what they can see.
        """
        params = list(self.params)
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        bound: Dict[str, ast.AST] = {}
        for param, arg in zip(params, call.args):
            bound[param] = arg
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in self.params:
                bound[keyword.arg] = keyword.value
        return bound


@dataclass
class CallSite:
    """One resolved call to a project function."""

    caller_module: str
    caller_symbol: str
    node: ast.Call
    line: int


@dataclass
class ImportEdge:
    """One import statement, resolved as far as possible."""

    module: str          # importing module (dotted)
    target: str          # imported dotted name (project or external)
    line: int
    node: ast.AST


@dataclass
class ModuleInfo:
    """Everything the deep passes need to know about one parsed file."""

    module: str
    path: str
    tree: ast.Module
    source_lines: List[str] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)
    disabled: Dict[int, Set[str]] = field(default_factory=dict)
    symbol_spans: List[Tuple[int, int, str]] = field(default_factory=list)

    def context(self) -> FileContext:
        """A per-file :class:`FileContext` view (shared finding helpers)."""
        return FileContext(
            path=self.path,
            module=self.module,
            tree=self.tree,
            source_lines=self.source_lines,
            disabled=self.disabled,
            symbol_spans=self.symbol_spans,
        )

    def symbol_for(self, line: int) -> str:
        symbol = self.module
        for start, end, qualname in self.symbol_spans:
            if start <= line <= end:
                symbol = qualname
        return symbol

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""


def package_of(module: str) -> str:
    """The layering unit a module belongs to.

    ``repro.serve.driver`` -> ``repro.serve``; top-level modules
    (``repro.cli``, ``repro.config``) are their own unit; the package root
    ``repro`` (its ``__init__``) is the unit ``repro``.
    """
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else module


class ProjectGraph:
    """Parsed whole-program view; see the module docstring."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self._functions: Optional[Dict[str, FunctionInfo]] = None
        self._call_index: Optional[Dict[str, List[CallSite]]] = None
        self._import_edges: Optional[List[ImportEdge]] = None

    @classmethod
    def build(cls, paths: Sequence[Union[str, Path]]) -> "ProjectGraph":
        """Parse every ``repro``-rooted ``.py`` file under ``paths`` once."""
        modules: Dict[str, ModuleInfo] = {}
        for path in sorted(iter_python_files(paths)):
            module = module_name_for(path)
            if module is None:
                continue  # deep analysis needs a module identity
            try:
                source = Path(path).read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError):
                continue  # the per-file engine reports parse errors
            modules[module] = ModuleInfo(
                module=module,
                path=str(path),
                tree=tree,
                source_lines=source.splitlines(),
                imports=build_import_table(tree),
                disabled=extend_suppressions_to_statements(
                    tree, scan_suppressions(source)
                ),
                symbol_spans=build_symbol_spans(tree, module),
            )
        return cls(modules)

    # -- import graph --------------------------------------------------------
    def import_edges(self) -> List[ImportEdge]:
        """Every import statement, one edge per imported name."""
        if self._import_edges is not None:
            return self._import_edges
        edges: List[ImportEdge] = []
        for info in self.modules.values():
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        edges.append(
                            ImportEdge(
                                module=info.module,
                                target=alias.name,
                                line=node.lineno,
                                node=node,
                            )
                        )
                elif isinstance(node, ast.ImportFrom):
                    base = self._resolve_from_base(info.module, node)
                    if base is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            edges.append(
                                ImportEdge(info.module, base, node.lineno, node)
                            )
                            continue
                        candidate = f"{base}.{alias.name}"
                        # `from X import name` imports module X.name when that
                        # is a project module, otherwise an attribute of X.
                        target = candidate if candidate in self.modules else base
                        edges.append(
                            ImportEdge(info.module, target, node.lineno, node)
                        )
        self._import_edges = edges
        return edges

    def _resolve_from_base(
        self, module: str, node: ast.ImportFrom
    ) -> Optional[str]:
        if not node.level:
            return node.module
        # Relative import: drop `level` trailing components from the importing
        # module's package path.  A module's package path is the module minus
        # its last component, except for package __init__ files (whose module
        # IS the package) — we cannot tell the two apart from the dotted name
        # alone, so resolve against the known module table: prefer the
        # interpretation that lands on a real project module.
        parts = module.split(".")
        for as_package in (False, True):
            base_parts = parts if as_package else parts[:-1]
            if node.level - 1 > len(base_parts):
                continue
            base_parts = (
                base_parts[: len(base_parts) - (node.level - 1)]
                if node.level > 1
                else base_parts
            )
            base = ".".join(base_parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
            if base and (
                base in self.modules
                or any(m.startswith(base + ".") for m in self.modules)
            ):
                return base
        return None

    def package_edges(self) -> Dict[Tuple[str, str], List[ImportEdge]]:
        """Cross-package edges, grouped by (importer unit, imported unit)."""
        grouped: Dict[Tuple[str, str], List[ImportEdge]] = {}
        for edge in self.import_edges():
            if not edge.target.startswith("repro"):
                continue
            src = package_of(edge.module)
            dst = package_of(edge.target)
            if src == dst:
                continue
            grouped.setdefault((src, dst), []).append(edge)
        return grouped

    # -- function index ------------------------------------------------------
    def functions(self) -> Dict[str, FunctionInfo]:
        """Every ``def`` in the project under its fully-qualified name."""
        if self._functions is not None:
            return self._functions
        table: Dict[str, FunctionInfo] = {}
        for info in self.modules.values():

            def walk(node: ast.AST, qualpath: str, info: ModuleInfo = info) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        name = (
                            f"{qualpath}.{child.name}" if qualpath else child.name
                        )
                        args = child.args
                        params = [
                            a.arg
                            for a in args.posonlyargs + args.args + args.kwonlyargs
                        ]
                        table[f"{info.module}.{name}"] = FunctionInfo(
                            qualname=f"{info.module}.{name}",
                            module=info.module,
                            node=child,
                            params=params,
                            lineno=child.lineno,
                        )
                        walk(child, name)
                    elif isinstance(child, ast.ClassDef):
                        name = (
                            f"{qualpath}.{child.name}" if qualpath else child.name
                        )
                        walk(child, name)
                    else:
                        walk(child, qualpath)

            walk(info.tree, "")
        self._functions = table
        return table

    # -- call resolution -----------------------------------------------------
    def resolve_call(
        self, info: ModuleInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """The project function a call refers to, if statically resolvable.

        Handles ``helper(...)`` (same module or imported with
        ``from mod import helper``), ``mod.helper(...)`` via the import
        table, and ``self.method(...)`` / ``cls.method(...)`` by matching the
        method name against classes in the same module.
        """
        functions = self.functions()
        func = call.func
        if isinstance(func, ast.Name):
            dotted = info.imports.get(func.id)
            if dotted is not None and dotted in functions:
                return functions[dotted]
            local = f"{info.module}.{func.id}"
            return functions.get(local)
        if isinstance(func, ast.Attribute):
            # mod.helper(...) via the import table
            parts: List[str] = [func.attr]
            base: ast.AST = func.value
            while isinstance(base, ast.Attribute):
                parts.append(base.attr)
                base = base.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls"):
                    # method call: match <Class>.<attr> inside this module
                    suffix = f".{func.attr}"
                    candidates = [
                        fi
                        for qualname, fi in functions.items()
                        if fi.module == info.module and qualname.endswith(suffix)
                    ]
                    if len(candidates) == 1:
                        return candidates[0]
                    return None
                root = info.imports.get(base.id)
                if root is not None:
                    dotted = ".".join([root] + list(reversed(parts)))
                    return functions.get(dotted)
        return None

    def call_sites(self, qualname: str) -> List[CallSite]:
        """Every resolved call to ``qualname`` across the project."""
        if self._call_index is None:
            index: Dict[str, List[CallSite]] = {}
            for info in self.modules.values():
                for node in ast.walk(info.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    target = self.resolve_call(info, node)
                    if target is None:
                        continue
                    index.setdefault(target.qualname, []).append(
                        CallSite(
                            caller_module=info.module,
                            caller_symbol=info.symbol_for(node.lineno),
                            node=node,
                            line=node.lineno,
                        )
                    )
            self._call_index = index
        return self._call_index.get(qualname, [])

    def enclosing_function(
        self, info: ModuleInfo, line: int
    ) -> Optional[FunctionInfo]:
        """The innermost project function whose span contains ``line``."""
        best: Optional[FunctionInfo] = None
        for qualname, func in self.functions().items():
            if func.module != info.module:
                continue
            end = getattr(func.node, "end_lineno", func.lineno) or func.lineno
            if func.lineno <= line <= end:
                if best is None or func.lineno >= best.lineno:
                    best = func
        return best


# --------------------------------------------------------------------------
# Deep rules
# --------------------------------------------------------------------------


class DeepRule:
    """Base class for one whole-program pass.

    Unlike per-file :class:`~repro.lint.engine.Rule`, a deep rule sees the
    entire :class:`ProjectGraph` at once.  Inline suppressions still apply:
    the driver drops findings whose line carries a matching
    ``# reprolint: disable=`` directive.
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        info: ModuleInfo,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.name,
            path=info.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity if severity is not None else self.severity,
            code=info.line_text(line),
            symbol=info.symbol_for(line),
        )


def run_deep_rules(
    project: ProjectGraph, rules: Sequence[DeepRule]
) -> List[Finding]:
    """Run every deep rule, honoring per-line inline suppressions."""
    by_path = {info.path: info for info in project.modules.values()}
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check_project(project):
            info = by_path.get(finding.path)
            if info is not None:
                rules_disabled = info.disabled.get(finding.line, set())
                if finding.rule in rules_disabled or "all" in rules_disabled:
                    continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# --------------------------------------------------------------------------
# Graph cache (CI reuses deep results between steps)
# --------------------------------------------------------------------------

_CACHE_VERSION = 1


def tree_fingerprint(paths: Sequence[Union[str, Path]]) -> Dict[str, str]:
    """``path -> sha256(source)`` for every python file under ``paths``."""
    fingerprint: Dict[str, str] = {}
    for path in sorted(iter_python_files(paths)):
        try:
            data = Path(path).read_bytes()
        except OSError:
            continue
        fingerprint[str(path)] = hashlib.sha256(data).hexdigest()
    return fingerprint


def load_cached_findings(
    cache_path: Union[str, Path], fingerprint: Dict[str, str]
) -> Optional[List[Finding]]:
    """Cached deep findings, or ``None`` when any source file changed."""
    try:
        payload = json.loads(Path(cache_path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("version") != _CACHE_VERSION:
        return None
    if payload.get("files") != fingerprint:
        return None
    findings = []
    for raw in payload.get("findings", []):
        findings.append(
            Finding(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                line=int(raw["line"]),
                col=int(raw["col"]),
                message=str(raw["message"]),
                severity=(
                    Severity.WARNING
                    if raw.get("severity") == "warning"
                    else Severity.ERROR
                ),
                code=str(raw.get("code", "")),
                symbol=str(raw.get("symbol", "")),
            )
        )
    return findings


def save_cached_findings(
    cache_path: Union[str, Path],
    fingerprint: Dict[str, str],
    findings: Sequence[Finding],
) -> None:
    payload = {
        "version": _CACHE_VERSION,
        "files": fingerprint,
        "findings": [f.to_json() for f in findings],
    }
    Path(cache_path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
