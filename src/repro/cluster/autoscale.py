"""Elastic service-node autoscaling driven by the SLO burn rate.

The autoscaler reuses the exact paging rule the observability layer's
health monitor applies after a run (:class:`~repro.obs.health.BurnRatePolicy`
over an :class:`~repro.obs.health.SloObjective`): the error budget is
``1 - target`` of requests allowed to go *bad* (miss the deadline or get
shed), and the burn rate is the budget-normalized bad fraction over a
rolling sim-time window.  Both the fast window (is it bad right now?) and
the slow window (has it been bad long enough to matter?) must exceed the
threshold to scale **up**; both must sit far below it (a quarter of the
threshold — hysteresis) to scale **down**.  One step per evaluation, so the
evaluation interval doubles as the cooldown.

The controller is a pure function of the completion/shed stream it has
observed — no wall clock, no RNG — so the active-node trajectory is
bit-identical per seed.  Window accounting is incremental (two head
pointers over one append-only event list), so a million-request run pays
O(1) amortized per observation.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigurationError
from ..obs.health import BurnRatePolicy, SloObjective

#: Scale-down hysteresis: both burn windows must sit below ``threshold *
#: SCALE_DOWN_FRACTION`` before a node is released.
SCALE_DOWN_FRACTION = 0.25


class Autoscaler:
    """Burn-rate-driven controller for the active service-node count."""

    def __init__(
        self,
        slo: float,
        min_nodes: int,
        max_nodes: int,
        objective: SloObjective = SloObjective(),
        policy: BurnRatePolicy = BurnRatePolicy(),
    ) -> None:
        if slo <= 0:
            raise ConfigurationError("slo must be positive")
        if not 1 <= min_nodes <= max_nodes:
            raise ConfigurationError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"[{min_nodes}, {max_nodes}]"
            )
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.objective = objective
        self.policy = policy
        self.fast_window, self.slow_window = policy.resolve_windows(slo)
        # (event sim time, was the outcome bad) — sheds and deadline misses
        # are both budget burn.  Append-only; the two head pointers walk
        # forward as windows expire, so nothing is ever re-scanned.
        self._events: List[Tuple[float, bool]] = []
        self._fast_head = 0
        self._slow_head = 0
        self._fast_total = 0
        self._fast_bad = 0
        self._slow_total = 0
        self._slow_bad = 0
        self.peak_burn_fast = 0.0
        self.peak_burn_slow = 0.0

    def observe(self, time: float, bad: bool) -> None:
        """Record one request outcome (completion or shed) at ``time``."""
        self._events.append((time, bad))
        self._fast_total += 1
        self._slow_total += 1
        if bad:
            self._fast_bad += 1
            self._slow_bad += 1

    def _expire(self, now: float) -> None:
        events = self._events
        fast_start = now - self.fast_window
        head = self._fast_head
        while head < len(events) and events[head][0] < fast_start:
            self._fast_total -= 1
            if events[head][1]:
                self._fast_bad -= 1
            head += 1
        self._fast_head = head
        slow_start = now - self.slow_window
        head = self._slow_head
        while head < len(events) and events[head][0] < slow_start:
            self._slow_total -= 1
            if events[head][1]:
                self._slow_bad -= 1
            head += 1
        self._slow_head = head
        # Compact the consumed prefix so a million-request run stays at
        # window-sized memory, not run-sized.
        if self._slow_head > 65536:
            del self._events[: self._slow_head]
            self._fast_head -= self._slow_head
            self._slow_head = 0

    def _burn(self, bad: int, total: int) -> float:
        if total == 0:
            return 0.0
        return (bad / total) / self.objective.budget

    def decide(self, now: float, active: int) -> int:
        """The target active-node count after one evaluation at ``now``."""
        self._expire(now)
        fast = self._burn(self._fast_bad, self._fast_total)
        slow = self._burn(self._slow_bad, self._slow_total)
        self.peak_burn_fast = max(self.peak_burn_fast, fast)
        self.peak_burn_slow = max(self.peak_burn_slow, slow)
        threshold = self.policy.threshold
        if fast > threshold and slow > threshold:
            return min(active + 1, self.max_nodes)
        down_bar = threshold * SCALE_DOWN_FRACTION
        if fast < down_bar and slow < down_bar:
            return max(active - 1, self.min_nodes)
        return active
